"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and dependency-free. Metrics are
created once at module import (``REGISTRY.counter(...)`` is idempotent:
re-registering the same name returns the same object) and updated from
any thread; every update is one short critical section on the metric's
own lock, so instrumented hot paths pay a dict lookup and an add. When
nobody scrapes ``/metrics`` that is the *entire* cost — rendering,
quantile derivation, and snapshots all walk the data lazily on demand.

Exposition follows the Prometheus text format (version 0.0.4): ``HELP``
/ ``TYPE`` comments, one sample per ``name{labels} value`` line, and the
``_bucket``/``_sum``/``_count`` triplet for histograms, so the output of
:meth:`MetricsRegistry.render` can be scraped by a stock Prometheus (or
parsed by the tests) without adapters.

Histogram quantiles are *derived from the buckets* (linear
interpolation inside the bucket that crosses the requested rank — the
same estimate ``histogram_quantile`` computes server-side), which is
what lets the serving layer report p50/p99 from counters instead of
keeping a sliding window of raw samples.
"""

from __future__ import annotations

import math
import re
import sys
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from repro.errors import ObsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "peak_rss_bytes",
    "render_merged",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Request-latency buckets (seconds): sub-millisecond through 30 s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Coarser wall-time buckets (seconds) for pipeline stages and training.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without the trailing .0."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class _Metric:
    """Shared plumbing: name/help/label validation and the series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()) -> None:  # noqa: A002
        if not _NAME_RE.match(name):
            raise ObsError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ObsError(f"invalid label name {label!r} on {name}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ObsError(
                f"{self.name} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def describe(self) -> dict[str, Any]:
        """Name/kind/labels descriptor (docs tooling, snapshots)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
        }


class Counter(_Metric):
    """Monotonically increasing counter (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()) -> None:  # noqa: A002
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to this label set's series."""
        if amount < 0:
            raise ObsError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one label set (0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> dict[tuple[str, ...], float]:
        """Snapshot of every label set's value."""
        with self._lock:
            return dict(self._values)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> list[str]:
        """This metric's exposition lines (without HELP/TYPE)."""
        return [
            f"{self.name}{_format_labels(self.labelnames, key)} "
            f"{_format_value(value)}"
            for key, value in sorted(self.series().items())
        ]


class Gauge(_Metric):
    """A value that can go up and down (queue depths, warm-model counts)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()) -> None:  # noqa: A002
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set this label set's series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (may be negative) to this label set's series."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        """Subtract ``amount`` from this label set's series."""
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        """Current value of one label set (0 if never set)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> dict[tuple[str, ...], float]:
        """Snapshot of every label set's value."""
        with self._lock:
            return dict(self._values)

    def render(self) -> list[str]:
        """This metric's exposition lines (without HELP/TYPE)."""
        return [
            f"{self.name}{_format_labels(self.labelnames, key)} "
            f"{_format_value(value)}"
            for key, value in sorted(self.series().items())
        ]


class Histogram(_Metric):
    """Fixed-bucket histogram with derived quantiles.

    Buckets are cumulative upper bounds (``le``); an implicit ``+Inf``
    bucket catches everything beyond the last edge. Per label set the
    histogram keeps bucket counts plus exact ``sum`` and ``count``, so
    the mean is exact and quantiles are bucket-interpolated estimates.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Iterable[str] = (),
    ) -> None:
        super().__init__(name, help, labelnames)
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ObsError(
                f"histogram {name} needs strictly increasing, non-empty buckets"
            )
        if edges and edges[-1] == math.inf:
            edges = edges[:-1]
        self.buckets = edges
        # Per label set: [counts per finite bucket..., +Inf count]
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Fold one observation into this label set's buckets."""
        key = self._key(labels)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[idx] += 1
            self._sums[key] += value

    # -- derived views ---------------------------------------------------

    def count(self, **labels: Any) -> int:
        """Total observations for one label set."""
        key = self._key(labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: Any) -> float:
        """Exact sum of observations for one label set."""
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def mean(self, **labels: Any) -> float:
        """Exact mean of observations (0.0 when empty)."""
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if not counts:
                return 0.0
            n = sum(counts)
            return self._sums[key] / n if n else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        """Bucket-interpolated quantile estimate (0.0 when empty).

        Walks the cumulative bucket counts to the one containing rank
        ``q * count`` and interpolates linearly inside it; ranks landing
        in the ``+Inf`` bucket return the last finite edge (the highest
        value the histogram can still resolve).
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        key = self._key(labels)
        with self._lock:
            counts = list(self._counts.get(key, ()))
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0.0
        for i, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if i >= len(self.buckets):  # +Inf bucket: clamp
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i else 0.0
                upper = self.buckets[i]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.buckets[-1]

    def series(self) -> dict[tuple[str, ...], dict[str, Any]]:
        """Snapshot: per label set bucket counts, sum, and count."""
        with self._lock:
            return {
                key: {
                    "buckets": list(counts),
                    "sum": self._sums[key],
                    "count": sum(counts),
                }
                for key, counts in self._counts.items()
            }

    def render(self) -> list[str]:
        """The ``_bucket``/``_sum``/``_count`` exposition triplet."""
        lines: list[str] = []
        bucket_names = self.labelnames + ("le",)
        for key, snap in sorted(self.series().items()):
            cumulative = 0
            for edge, bucket_count in zip(self.buckets, snap["buckets"]):
                cumulative += bucket_count
                labels = _format_labels(bucket_names, key + (_format_value(edge),))
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(bucket_names, key + ("+Inf",))
            lines.append(f"{self.name}_bucket{labels} {snap['count']}")
            plain = _format_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(snap['sum'])}")
            lines.append(f"{self.name}_count{plain} {snap['count']}")
        return lines


class MetricsRegistry:
    """Thread-safe collection of named metrics with text exposition.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers, later calls with the same signature return the same
    object (so module-level metric definitions are import-order safe).
    Re-registering a name with a different kind, labels, or buckets is a
    programming error and raises :class:`~repro.errors.ObsError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str, labelnames, **kwargs) -> Any:  # noqa: A002
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ObsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{list(existing.labelnames)}"
                    )
                if kwargs.get("buckets") is not None and tuple(
                    float(b) for b in kwargs["buckets"]
                ) != getattr(existing, "buckets", None):
                    raise ObsError(
                        f"histogram {name!r} already registered with "
                        "different buckets"
                    )
                return existing
            metric = cls(name, help, **kwargs, labelnames=labelnames)
            self._metrics[name] = metric
            return metric

    def counter(  # noqa: A002
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Iterable[str] = ()) -> Gauge:  # noqa: A002
        """Get or create a :class:`Gauge`."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,  # noqa: A002
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Iterable[str] = (),
    ) -> Histogram:
        """Get or create a :class:`Histogram` with the given buckets."""
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Any:
        """The registered metric, or None."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        """Sorted registered metric names."""
        with self._lock:
            return sorted(self._metrics)

    def describe(self) -> list[dict[str, Any]]:
        """Descriptors for every registered metric (the metric catalog)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [m.describe() for m in sorted(metrics, key=lambda m: m.name)]

    def render(self) -> str:
        """Prometheus text exposition (format 0.0.4) of every metric."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, dict[tuple[str, ...], float]]:
        """Flat ``{name: {label-values: value}}`` of counters and gauges.

        Histograms contribute their ``_count`` *and* ``_sum`` series, so
        a :meth:`delta` between two snapshots yields windowed means
        (Δsum / Δcount) — the drift detector's rolling prediction-error
        windows are exactly this. This is also the form the chaos
        auditor diffs before/after a soak, so invariants hold even when
        earlier runs in the same process already moved the process-wide
        counters.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, dict[tuple[str, ...], float]] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                series = metric.series()
                out[metric.name + "_count"] = {
                    key: float(snap["count"]) for key, snap in series.items()
                }
                out[metric.name + "_sum"] = {
                    key: float(snap["sum"]) for key, snap in series.items()
                }
            else:
                out[metric.name] = dict(metric.series())
        return out

    def dump(self) -> dict[str, Any]:
        """JSON-able full state of every metric (cross-process export).

        The multi-process serve front-end uses this: each worker
        periodically dumps its process-local registry to a file, and the
        worker answering ``GET /metrics`` merges every dump with
        :func:`render_merged` into one fleet-wide exposition. Counters
        and gauges export their series values; histograms export bucket
        counts plus exact sum/count. Label keys become lists (JSON has
        no tuples); :func:`render_merged` restores them.
        """
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        out: dict[str, Any] = {}
        for metric in metrics:
            entry: dict[str, Any] = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
                "series": [
                    [list(key), value] for key, value in metric.series().items()
                ],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    @staticmethod
    def delta(
        before: Mapping[str, Mapping[tuple[str, ...], float]],
        after: Mapping[str, Mapping[tuple[str, ...], float]],
    ) -> dict[str, dict[tuple[str, ...], float]]:
        """Per-series ``after - before`` between two :meth:`snapshot` calls."""
        out: dict[str, dict[tuple[str, ...], float]] = {}
        for name, series in after.items():
            base = before.get(name, {})
            diff = {
                key: value - base.get(key, 0.0) for key, value in series.items()
            }
            out[name] = diff
        return out


def render_merged(dumps: Iterable[Mapping[str, Any]]) -> str:
    """Aggregate several :meth:`MetricsRegistry.dump` states into one
    Prometheus text exposition.

    Per metric name and label set: counter and histogram series are
    *summed* across dumps (each worker process counts its own share of
    the fleet's traffic); gauges are summed too — the fleet-wide queue
    depth or warm-model count is the sum of the per-worker values.
    Dumps that disagree on a histogram's bucket edges keep the first
    edges seen and skip the incompatible series rather than producing a
    corrupt exposition.
    """
    merged: dict[str, dict[str, Any]] = {}
    for state in dumps:
        for name, entry in state.items():
            slot = merged.get(name)
            if slot is None:
                slot = {
                    "kind": entry["kind"],
                    "help": entry.get("help", ""),
                    "labels": tuple(entry.get("labels", ())),
                    "buckets": tuple(entry.get("buckets", ())),
                    "series": {},
                }
                merged[name] = slot
            elif slot["kind"] != entry["kind"]:
                continue  # kind clash across processes: keep first
            for raw_key, value in entry.get("series", ()):
                key = tuple(str(v) for v in raw_key)
                if slot["kind"] == "histogram":
                    if tuple(entry.get("buckets", ())) != slot["buckets"]:
                        continue
                    agg = slot["series"].get(key)
                    if agg is None:
                        agg = {
                            "buckets": [0] * (len(slot["buckets"]) + 1),
                            "sum": 0.0,
                            "count": 0,
                        }
                        slot["series"][key] = agg
                    for i, c in enumerate(value["buckets"]):
                        agg["buckets"][i] += c
                    agg["sum"] += value["sum"]
                    agg["count"] += value["count"]
                else:
                    slot["series"][key] = slot["series"].get(key, 0.0) + value
    lines: list[str] = []
    for name in sorted(merged):
        slot = merged[name]
        lines.append(f"# HELP {name} {slot['help']}")
        lines.append(f"# TYPE {name} {slot['kind']}")
        labelnames = slot["labels"]
        if slot["kind"] == "histogram":
            bucket_names = tuple(labelnames) + ("le",)
            for key, agg in sorted(slot["series"].items()):
                cumulative = 0
                for edge, count in zip(slot["buckets"], agg["buckets"]):
                    cumulative += count
                    labels = _format_labels(
                        bucket_names, key + (_format_value(edge),)
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _format_labels(bucket_names, key + ("+Inf",))
                lines.append(f"{name}_bucket{labels} {agg['count']}")
                plain = _format_labels(tuple(labelnames), key)
                lines.append(f"{name}_sum{plain} {_format_value(agg['sum'])}")
                lines.append(f"{name}_count{plain} {agg['count']}")
        else:
            for key, value in sorted(slot["series"].items()):
                labels = _format_labels(tuple(labelnames), key)
                lines.append(f"{name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"


#: The process-wide default registry every instrumented subsystem uses.
REGISTRY = MetricsRegistry()


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process (and reaped children), bytes.

    Reads ``resource.getrusage`` — zero-dependency and always available
    on POSIX; returns 0 where the ``resource`` module is missing. Linux
    reports ``ru_maxrss`` in kilobytes, macOS in bytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024
