"""Structured JSON logging with a shared per-process run id.

Every log line is one JSON object::

    {"ts": 1722870000.123, "level": "info", "logger": "repro.serve",
     "run_id": "f3a9c1d2e4b5", "msg": "model trained", "model": "BDT"}

The ``run_id`` is minted once per process (or taken from
``$REPRO_RUN_ID``, so a driver script can stitch multi-process runs
together) and shared with the tracing layer — grep one id and you get
the logs *and* the spans of that run.

Loggers are cheap, threshold-gated, and write a single line per event,
so interleaved threads cannot shear a record. The default threshold is
``warning`` (quiet in tests and pipelines); raise verbosity with
``$REPRO_LOG_LEVEL=info`` or :func:`configure_logging`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import uuid
from typing import Any, TextIO

from repro.errors import ObsError

__all__ = [
    "JsonLogger",
    "get_logger",
    "configure_logging",
    "run_id",
    "new_request_id",
]

RUN_ID_ENV_VAR = "REPRO_RUN_ID"
LOG_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_RUN_ID: str | None = None
_RUN_ID_LOCK = threading.Lock()

_STREAM: TextIO | None = None  # None -> sys.stderr at emit time
_LEVEL: int | None = None  # None -> $REPRO_LOG_LEVEL or warning
_EMIT_LOCK = threading.Lock()


def run_id() -> str:
    """The process-wide run id (``$REPRO_RUN_ID`` or minted once)."""
    global _RUN_ID
    if _RUN_ID is None:
        with _RUN_ID_LOCK:
            if _RUN_ID is None:
                _RUN_ID = os.environ.get(RUN_ID_ENV_VAR) or uuid.uuid4().hex[:12]
    return _RUN_ID


def new_request_id() -> str:
    """A fresh short id for correlating one request across log lines."""
    return uuid.uuid4().hex[:12]


def _threshold() -> int:
    if _LEVEL is not None:
        return _LEVEL
    name = os.environ.get(LOG_LEVEL_ENV_VAR, "warning").lower()
    return LEVELS.get(name, LEVELS["warning"])


def configure_logging(
    stream: TextIO | None = None, level: str | None = None
) -> None:
    """Override the log sink and/or threshold process-wide.

    ``stream=None`` restores the default (stderr); ``level=None``
    restores the ``$REPRO_LOG_LEVEL`` / ``warning`` default.
    """
    global _STREAM, _LEVEL
    if level is not None and level not in LEVELS:
        raise ObsError(f"unknown log level {level!r}; known: {sorted(LEVELS)}")
    _STREAM = stream
    _LEVEL = LEVELS[level] if level is not None else None


class JsonLogger:
    """One named source of structured JSON log lines."""

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level: str, msg: str, **fields: Any) -> None:
        """Emit one record if ``level`` clears the process threshold."""
        severity = LEVELS.get(level)
        if severity is None:
            raise ObsError(f"unknown log level {level!r}")
        if severity < _threshold():
            return
        record = {
            "ts": round(time.time(), 3),
            "level": level,
            "logger": self.name,
            "run_id": run_id(),
            "msg": msg,
            **fields,
        }
        line = json.dumps(record, sort_keys=True, default=str)
        stream = _STREAM if _STREAM is not None else sys.stderr
        with _EMIT_LOCK:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed sink must never take the caller down

    def debug(self, msg: str, **fields: Any) -> None:
        """Emit at ``debug`` severity."""
        self.log("debug", msg, **fields)

    def info(self, msg: str, **fields: Any) -> None:
        """Emit at ``info`` severity."""
        self.log("info", msg, **fields)

    def warning(self, msg: str, **fields: Any) -> None:
        """Emit at ``warning`` severity."""
        self.log("warning", msg, **fields)

    def error(self, msg: str, **fields: Any) -> None:
        """Emit at ``error`` severity."""
        self.log("error", msg, **fields)


def get_logger(name: str) -> JsonLogger:
    """The structured logger for one subsystem (``repro.serve``, ...)."""
    return JsonLogger(name)
