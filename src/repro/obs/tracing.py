"""Span-based tracing: nested timed sections emitted as JSONL records.

One :func:`trace_span` context manager wraps a timed section::

    from repro.obs import trace_span

    with trace_span("pipeline.shard", label="emmy/s0"):
        with trace_span("stage.schedule", stage="schedule"):
            ...

Spans nest through a :mod:`contextvars` context variable, so each span
records its parent's id (per thread — a worker thread's spans start a
new root, which is the honest answer for work that really does run
concurrently). Records are appended to a per-run JSONL trace file as
each span *closes*:

``{"name", "trace_id", "span_id", "parent_id", "run_id", "start_unix",
"duration_s", "thread", "attrs"}``

Tracing is **off by default**: when no writer is installed
:func:`trace_span` is a single module-global read and a no-op context
manager — production hot paths pay effectively nothing. Install a
writer with :func:`configure_tracing` (the CLI and the chaos harness
do this for ``--trace``/``$REPRO_TRACE_FILE``), and read a finished
file back with :func:`read_spans` / ``repro obs summary``.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ObsError
from repro.obs.logs import run_id

__all__ = [
    "TraceWriter",
    "trace_span",
    "configure_tracing",
    "tracing_to",
    "active_writer",
    "read_spans",
]

TRACE_ENV_VAR = "REPRO_TRACE_FILE"

#: The (span_id, trace_id) pair of the innermost open span in this context.
_CURRENT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

# The process-wide installed writer. trace_span reads this exactly once
# per call; None (the steady state) short-circuits everything.
_WRITER: "TraceWriter | None" = None
_WRITER_LOCK = threading.Lock()


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class TraceWriter:
    """Append-only JSONL span sink bound to one trace file."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = self.path.open("a", encoding="utf-8")
        self.n_spans = 0

    def write(self, record: dict[str, Any]) -> None:
        """Append one span record as a JSON line (thread-safe)."""
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._fh.closed:
                return  # a span outlived the writer; drop, never raise
            self._fh.write(line + "\n")
            self._fh.flush()
            self.n_spans += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


def configure_tracing(path: str | os.PathLike | None) -> TraceWriter | None:
    """Install (or, with ``None``, remove) the process-wide trace writer.

    Returns the new writer. The previous writer, if any, is closed.
    ``$REPRO_TRACE_FILE`` is the environment-variable spelling the CLI
    entry points honor; library code calls this directly.
    """
    global _WRITER
    writer = TraceWriter(path) if path is not None else None
    with _WRITER_LOCK:
        previous, _WRITER = _WRITER, writer
    if previous is not None:
        previous.close()
    return writer


def active_writer() -> TraceWriter | None:
    """The installed trace writer, or None (tracing disabled)."""
    return _WRITER


@contextmanager
def tracing_to(path: str | os.PathLike) -> Iterator[TraceWriter]:
    """Scoped tracing: install a writer, restore the previous on exit."""
    global _WRITER
    writer = TraceWriter(path)
    with _WRITER_LOCK:
        previous, _WRITER = _WRITER, writer
    try:
        yield writer
    finally:
        with _WRITER_LOCK:
            _WRITER = previous
        writer.close()


class _Span:
    """Mutable handle :func:`trace_span` yields; add attrs as you learn them."""

    __slots__ = ("name", "span_id", "trace_id", "parent_id", "attrs", "_t0", "_start")

    def __init__(self, name: str, parent: tuple[str, str] | None, attrs: dict) -> None:
        self.name = name
        self.span_id = _new_id()
        self.trace_id = parent[1] if parent is not None else _new_id()
        self.parent_id = parent[0] if parent is not None else None
        self.attrs = attrs
        self._start = time.time()
        self._t0 = time.perf_counter()

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self.attrs.update(attrs)

    def record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "run_id": run_id(),
            "start_unix": round(self._start, 6),
            "duration_s": round(time.perf_counter() - self._t0, 6),
            "thread": threading.current_thread().name,
            "attrs": self.attrs,
        }


@contextmanager
def trace_span(name: str, **attrs: Any) -> Iterator[_Span | None]:
    """Time a section; emit a JSONL span record when tracing is on.

    Yields the open span (``span.set(key=value)`` adds attributes) or
    ``None`` when no writer is installed — callers never need to check.
    Exceptions propagate; the span is still written, flagged with
    ``attrs["error"]``.
    """
    writer = _WRITER
    if writer is None:
        yield None
        return
    parent = _CURRENT.get()
    span = _Span(name, parent, attrs)
    token = _CURRENT.set((span.span_id, span.trace_id))
    try:
        yield span
    except BaseException as exc:
        span.attrs["error"] = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _CURRENT.reset(token)
        writer.write(span.record())


def read_spans(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse a trace JSONL file back into span records (oldest first).

    Blank lines are skipped; a malformed line raises
    :class:`~repro.errors.ObsError` naming the line number.
    """
    spans: list[dict[str, Any]] = []
    trace_path = Path(path)
    if not trace_path.is_file():
        raise ObsError(f"no trace file at {trace_path}")
    for lineno, line in enumerate(
        trace_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{trace_path}:{lineno}: invalid span JSON: {exc}") from None
        if not isinstance(record, dict) or "span_id" not in record:
            raise ObsError(f"{trace_path}:{lineno}: not a span record")
        spans.append(record)
    spans.sort(key=lambda s: s.get("start_unix", 0.0))
    return spans
