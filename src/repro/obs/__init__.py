"""Observability: metrics, span tracing, and structured logs.

The paper measures a *production* system (RAPL counters sampled across
80k jobs); this subsystem gives the reproduction the same property —
the pipeline, the serving stack, and the fault injector all report into
one zero-dependency observability layer:

* :mod:`repro.obs.metrics` — a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms with Prometheus text exposition (scraped at
  ``GET /metrics`` on the prediction server);
* :mod:`repro.obs.tracing` — :func:`~repro.obs.tracing.trace_span`
  context-manager spans emitting JSONL records to a per-run trace file
  (``repro obs summary`` renders the span tree and critical path);
* :mod:`repro.obs.logs` — structured JSON logging sharing one
  run id with the trace records.

Everything is thread-safe and costs effectively nothing when
unobserved: disarmed tracing is one global read, metrics updates are a
dict update under a per-metric lock, and log lines below the threshold
never format. The metric catalog and quickstarts live in
docs/OBSERVABILITY.md.
"""

from repro.obs.logs import (
    JsonLogger,
    configure_logging,
    get_logger,
    new_request_id,
    run_id,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    peak_rss_bytes,
    render_merged,
)
from repro.obs.summary import SpanNode, TraceSummary, summarize_trace
from repro.obs.tracing import (
    TraceWriter,
    active_writer,
    configure_tracing,
    read_spans,
    trace_span,
    tracing_to,
)

__all__ = [
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "peak_rss_bytes",
    "render_merged",
    "TraceWriter",
    "trace_span",
    "tracing_to",
    "configure_tracing",
    "active_writer",
    "read_spans",
    "SpanNode",
    "TraceSummary",
    "summarize_trace",
    "JsonLogger",
    "get_logger",
    "configure_logging",
    "run_id",
    "new_request_id",
]
