"""Trace-file analysis: span trees, per-name aggregates, critical path.

Backs ``repro obs summary <trace.jsonl>``. A trace file holds a forest
of spans (one tree per root — e.g. one per pipeline run or HTTP
request); this module rebuilds the trees from the recorded parent ids
and renders:

* the span tree with durations and self-time (duration minus the time
  accounted to child spans),
* per-name aggregates (count / total / mean / max), and
* the **critical path** of the longest root: the root-to-leaf chain
  that follows the slowest child at every level — the sequence of
  sections to optimize first.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracing import read_spans

__all__ = ["SpanNode", "TraceSummary", "summarize_trace"]


@dataclass
class SpanNode:
    """One span plus its children, rebuilt from the JSONL records."""

    record: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The span's section name."""
        return str(self.record.get("name", "?"))

    @property
    def duration_s(self) -> float:
        """Wall time the span covered."""
        return float(self.record.get("duration_s", 0.0))

    @property
    def self_s(self) -> float:
        """Duration not accounted to child spans (never below zero)."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))

    def critical_path(self) -> list["SpanNode"]:
        """This node plus, recursively, its slowest child's path."""
        path = [self]
        if self.children:
            slowest = max(self.children, key=lambda c: c.duration_s)
            path.extend(slowest.critical_path())
        return path


@dataclass
class TraceSummary:
    """Everything ``repro obs summary`` reports about one trace file."""

    path: str
    roots: list[SpanNode]
    n_spans: int
    run_ids: list[str]

    @property
    def total_s(self) -> float:
        """Sum of root-span durations (the traced wall time)."""
        return sum(r.duration_s for r in self.roots)

    def aggregates(self) -> list[dict[str, Any]]:
        """Per-name count/total/mean/max rows, slowest total first."""
        rows: dict[str, dict[str, Any]] = {}
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            row = rows.setdefault(
                node.name,
                {"name": node.name, "count": 0, "total_s": 0.0, "max_s": 0.0},
            )
            row["count"] += 1
            row["total_s"] += node.duration_s
            row["max_s"] = max(row["max_s"], node.duration_s)
            stack.extend(node.children)
        out = sorted(rows.values(), key=lambda r: -r["total_s"])
        for row in out:
            row["mean_s"] = row["total_s"] / row["count"]
        return out

    def critical_path(self) -> list[SpanNode]:
        """The slowest root's root-to-leaf chain of slowest children."""
        if not self.roots:
            return []
        slowest = max(self.roots, key=lambda r: r.duration_s)
        return slowest.critical_path()

    def render(self, max_depth: int = 6, max_children: int = 12) -> str:
        """The human-readable report ``repro obs summary`` prints."""
        lines = [
            f"trace {self.path}: {self.n_spans} span(s), "
            f"{len(self.roots)} root(s), {self.total_s:.3f}s traced"
            + (f"  [run {', '.join(self.run_ids)}]" if self.run_ids else "")
        ]
        lines.append("")
        lines.append("span tree (duration | self):")
        for root in self.roots:
            lines.extend(self._render_node(root, 0, max_depth, max_children))
        lines.append("")
        lines.append("by name (total | mean | max | count):")
        for row in self.aggregates():
            lines.append(
                f"  {row['name']:32s} {row['total_s']:9.3f}s "
                f"{row['mean_s']:9.3f}s {row['max_s']:9.3f}s  x{row['count']}"
            )
        path = self.critical_path()
        if path:
            lines.append("")
            lines.append("critical path (slowest child at every level):")
            for depth, node in enumerate(path):
                share = (
                    node.duration_s / path[0].duration_s
                    if path[0].duration_s
                    else 0.0
                )
                lines.append(
                    f"  {'  ' * depth}{node.name}  "
                    f"{node.duration_s:.3f}s  ({share:.0%} of root)"
                )
        return "\n".join(lines)

    def _render_node(
        self, node: SpanNode, depth: int, max_depth: int, max_children: int
    ) -> list[str]:
        label = ", ".join(
            f"{k}={v}" for k, v in sorted(node.record.get("attrs", {}).items())
        )
        lines = [
            f"  {'  ' * depth}{node.name}  "
            f"{node.duration_s:.3f}s | {node.self_s:.3f}s"
            + (f"  [{label}]" if label else "")
        ]
        if depth + 1 >= max_depth and node.children:
            lines.append(f"  {'  ' * (depth + 1)}… {len(node.children)} child span(s)")
            return lines
        shown = sorted(node.children, key=lambda c: -c.duration_s)[:max_children]
        hidden = len(node.children) - len(shown)
        for child in shown:
            lines.extend(self._render_node(child, depth + 1, max_depth, max_children))
        if hidden > 0:
            lines.append(f"  {'  ' * (depth + 1)}… {hidden} more child span(s)")
        return lines


def summarize_trace(path: str | os.PathLike) -> TraceSummary:
    """Rebuild the span forest of one trace JSONL file.

    Spans whose recorded parent never appears in the file (e.g. the
    parent is still open, or a worker thread started its own root)
    become roots, so partial traces still summarize.
    """
    spans = read_spans(path)
    nodes = {s["span_id"]: SpanNode(s) for s in spans}
    roots: list[SpanNode] = []
    for span in spans:
        node = nodes[span["span_id"]]
        parent = nodes.get(span.get("parent_id") or "")
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda c: c.record.get("start_unix", 0.0))
    run_ids = sorted({str(s["run_id"]) for s in spans if s.get("run_id")})
    return TraceSummary(
        path=str(path), roots=roots, n_spans=len(spans), run_ids=run_ids
    )
