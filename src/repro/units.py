"""Unit helpers used throughout the package.

All internal computation uses SI base units — watts, joules, seconds —
and converts at the edges. Functions here are trivially small on purpose:
they give dimension-bearing names to otherwise bare arithmetic, which is
where trace-analysis bugs usually hide.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "watts_to_kilowatts",
    "joules_to_kwh",
    "node_seconds_to_node_hours",
    "seconds",
    "minutes",
    "hours",
    "energy_joules",
]

MINUTE: int = 60
HOUR: int = 3600
DAY: int = 86400


def seconds(x: float) -> float:
    """Identity; marks a literal as seconds at the call site."""
    return float(x)


def minutes(x: float) -> float:
    """Convert minutes to seconds."""
    return float(x) * MINUTE


def hours(x: float) -> float:
    """Convert hours to seconds."""
    return float(x) * HOUR


def watts_to_kilowatts(w):
    """Convert watts to kilowatts (scalar or array)."""
    return np.asarray(w, dtype=float) / 1e3


def joules_to_kwh(j):
    """Convert joules to kilowatt-hours (scalar or array)."""
    return np.asarray(j, dtype=float) / 3.6e6


def node_seconds_to_node_hours(ns):
    """Convert node-seconds to node-hours (scalar or array)."""
    return np.asarray(ns, dtype=float) / HOUR


def energy_joules(power_watts, duration_s: float):
    """Energy in joules of a constant ``power_watts`` draw for ``duration_s``."""
    if duration_s < 0:
        raise ValueError("duration_s must be >= 0")
    return np.asarray(power_watts, dtype=float) * float(duration_s)
