"""The dataset stage's on-disk artifact: a build-once, analyze-many dir.

A cached dataset is stored in the repository's *open-data* formats (the
same schemas ``repro.telemetry.schema`` / ``samples_schema`` document
for the paper's Zenodo-style release), not as an opaque pickle:

========================  ====================================================
file                      contents
========================  ====================================================
``jobs.npz``              job-level table (``JOB_COLUMNS`` schema)
``samples.npz``           flat (job, node, minute) power samples of the
                          instrumented subset (absent when there are none)
``timeline.npz``          per-minute ``active_nodes`` / ``job_power_watts``
``dataset.json``          system spec fields, horizon, trace order, counts
========================  ====================================================

Because every file is written with the byte-deterministic NPZ writer
(:func:`repro.frames.write_npz`), two builds of the same configuration —
serial or parallel, on any worker — commit byte-identical artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.cluster.specs import SystemSpec
from repro.errors import CacheError
from repro.frames import Table, read_npz, write_npz
from repro.telemetry.dataset import JobDataset
from repro.telemetry.samples_schema import (
    load_samples,
    samples_table,
    save_samples,
    traces_from_samples,
)
from repro.telemetry.schema import load_jobs_npz, save_jobs_npz

__all__ = ["DATASET_META_NAME", "save_dataset", "load_dataset"]

DATASET_META_NAME = "dataset.json"

_JOBS_NAME = "jobs.npz"
_SAMPLES_NAME = "samples.npz"
_TIMELINE_NAME = "timeline.npz"


def save_dataset(dataset: JobDataset, out_dir: str | os.PathLike) -> dict:
    """Write ``dataset`` into ``out_dir`` as the open-data artifact.

    Returns the summary dict also stored in ``dataset.json``.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    save_jobs_npz(dataset.jobs, out_dir / _JOBS_NAME)
    if dataset.traces:
        save_samples(samples_table(dataset), out_dir / _SAMPLES_NAME)
    write_npz(
        Table(
            {
                "active_nodes": dataset.active_nodes,
                "job_power_watts": dataset.job_power_watts,
            }
        ),
        out_dir / _TIMELINE_NAME,
    )
    spec_fields = {
        f: getattr(dataset.spec, f) for f in dataset.spec.__dataclass_fields__
    }
    meta = {
        "system": dataset.spec.name,
        "horizon_s": int(dataset.horizon_s),
        "n_jobs": dataset.num_jobs,
        "n_traces": len(dataset.traces),
        "n_minutes": dataset.num_minutes,
        "spec": spec_fields,
        # Traces are keyed by job id; preserve the assembly (start-order)
        # iteration order so a reloaded dataset is indistinguishable.
        "trace_order": [int(k) for k in dataset.traces],
    }
    (out_dir / DATASET_META_NAME).write_text(json.dumps(meta, indent=2, sort_keys=True))
    return meta


def load_dataset(artifact_dir: str | os.PathLike) -> JobDataset:
    """Rebuild a :class:`JobDataset` from a :func:`save_dataset` artifact."""
    artifact_dir = Path(artifact_dir)
    meta_path = artifact_dir / DATASET_META_NAME
    if not meta_path.is_file():
        raise CacheError(f"{artifact_dir} is not a dataset artifact (no dataset.json)")
    meta = json.loads(meta_path.read_text())
    spec_fields = dict(meta["spec"])
    spec_fields["inflow_temperature_c"] = tuple(spec_fields["inflow_temperature_c"])
    spec = SystemSpec(**spec_fields)

    jobs = load_jobs_npz(artifact_dir / _JOBS_NAME)
    timeline = read_npz(artifact_dir / _TIMELINE_NAME)

    traces: dict[int, np.ndarray] = {}
    allocations: dict[int, np.ndarray] = {}
    samples_path = artifact_dir / _SAMPLES_NAME
    if samples_path.is_file():
        rebuilt, allocations = traces_from_samples(load_samples(samples_path), jobs)
        traces = {jid: rebuilt[jid] for jid in meta["trace_order"]}

    return JobDataset(
        spec=spec,
        jobs=jobs,
        traces=traces,
        horizon_s=int(meta["horizon_s"]),
        active_nodes=timeline["active_nodes"],
        job_power_watts=timeline["job_power_watts"],
        trace_allocations=allocations,
    )
