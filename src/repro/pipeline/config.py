"""Stage graph, shard configuration, cache keys, and timing records.

This module is deliberately light — it imports neither numpy nor any
simulation layer — so the CLI's bookkeeping subcommands
(``pipeline status`` / ``pipeline clean``) and the PEP 562 lazy package
surface can load it without paying for scipy or the engine.

The pipeline runs four stages per (system, seed) shard::

    workload ──▶ schedule ──▶ telemetry ──▶ dataset
    (job stream) (placements)  (RAPL samples) (joined artifact)

Each stage's cache key is a SHA-256 over the *subset* of the shard
configuration that can change its output (``STAGE_FIELDS``) plus the
stage-version counters of it and every upstream stage
(``STAGE_VERSIONS`` — bump one when changing a stage's semantics to
invalidate stale artifacts). Consequences:

* changing ``max_traces`` re-runs only telemetry + dataset (the job
  stream and placements are cache hits);
* changing ``backfill_depth`` keeps the workload stage cached;
* changing ``seed``, scale, or any workload knob misses everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

from repro.errors import PipelineError
from repro.pipeline.cache import content_key

__all__ = [
    "STAGES",
    "STAGE_FIELDS",
    "STAGE_VERSIONS",
    "PLAN_STAGE",
    "CHUNK_STAGE",
    "DEFAULT_CHUNK_JOBS",
    "ShardConfig",
    "StageTiming",
    "ShardReport",
    "stage_key",
    "plan_key",
    "chunk_key",
]

STAGES: tuple[str, ...] = ("workload", "schedule", "telemetry", "dataset")

# Streaming-mode cache stages (docs/PIPELINE.md "Streaming mode"). The
# plan stage holds the columnar workload plan; the chunk stage holds the
# spilled per-chunk shards (jobs + power sums + samples + a resume
# checkpoint). Both are addressed *through* the monolithic stage keys,
# so any knob that would invalidate the dataset invalidates them too.
PLAN_STAGE = "plan"
CHUNK_STAGE = "chunk"

#: Default jobs per streaming chunk; ~32 MB of live state per chunk.
DEFAULT_CHUNK_JOBS = 100_000

_PLAN_VERSION = 1
_CHUNK_VERSION = 1

# Bump a stage's version when its semantics change; every downstream key
# incorporates the versions of its upstream stages too.
STAGE_VERSIONS: dict[str, int] = {
    "workload": 1,
    "schedule": 1,
    "telemetry": 1,
    "dataset": 1,
}

_WORKLOAD_FIELDS = (
    "system", "seed", "num_nodes", "num_users", "horizon_s", "params_overrides",
)
_SCHEDULE_FIELDS = _WORKLOAD_FIELDS + ("backfill_depth",)
_TELEMETRY_FIELDS = _SCHEDULE_FIELDS + ("variability_sigma", "max_traces")

# Which ShardConfig fields feed each stage's cache key.
STAGE_FIELDS: dict[str, tuple[str, ...]] = {
    "workload": _WORKLOAD_FIELDS,
    "schedule": _SCHEDULE_FIELDS,
    "telemetry": _TELEMETRY_FIELDS,
    "dataset": _TELEMETRY_FIELDS,
}

_CACHE_FORMAT = 1


@dataclass(frozen=True)
class ShardConfig:
    """One (system, seed, scale) unit of pipeline work.

    Mirrors the signature of
    :func:`repro.telemetry.generate_dataset`; a shard built through the
    pipeline is byte-identical to a dataset generated directly with the
    same arguments.
    """

    system: str
    seed: int = 0
    num_nodes: int | None = None
    num_users: int | None = None
    horizon_s: int | None = None
    max_traces: int = 2000
    backfill_depth: int = 100
    variability_sigma: float | None = None
    # Workload ablation knobs; normalized to a sorted tuple of pairs so
    # the config stays hashable and order-independent.
    params_overrides: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.system:
            raise PipelineError("shard needs a system name")
        overrides = self.params_overrides
        if isinstance(overrides, dict):
            overrides = overrides.items()
        normalized = tuple(sorted((str(k), v) for k, v in overrides))
        object.__setattr__(self, "params_overrides", normalized)

    @property
    def overrides_dict(self) -> dict[str, Any]:
        """``params_overrides`` as the dict ``generate_dataset`` expects."""
        return dict(self.params_overrides)

    @property
    def label(self) -> str:
        """Short human-readable shard name, e.g. ``emmy/seed1``."""
        return f"{self.system}/seed{self.seed}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (used for hashing, manifests, and workers)."""
        out: dict[str, Any] = {f.name: getattr(self, f.name) for f in fields(self)}
        out["params_overrides"] = [list(pair) for pair in self.params_overrides]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardConfig":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        data["params_overrides"] = tuple(
            (k, v) for k, v in data.get("params_overrides", [])
        )
        return cls(**data)

    @classmethod
    def from_scenario(cls, scenario, **extra: Any) -> "ShardConfig":
        """Build from the canonical :class:`~repro.spec.ScenarioSpec`.

        ``scenario`` may be a ``ScenarioSpec``, a mapping, or the legacy
        keyword style (anything :func:`repro.spec.as_scenario` accepts);
        ``extra`` carries the pipeline-only knobs (``backfill_depth``,
        ``params_overrides``, ``variability_sigma``).
        """
        from repro.spec import as_scenario

        return as_scenario(scenario).to_shard_config(**extra)


def stage_key(shard: ShardConfig, stage: str) -> str:
    """Content-address of one stage's output for one shard."""
    if stage not in STAGES:
        raise PipelineError(f"unknown stage {stage!r}; known: {list(STAGES)}")
    upstream = STAGES[: STAGES.index(stage) + 1]
    config = shard.to_dict()
    return content_key(
        {
            "format": _CACHE_FORMAT,
            "stage": stage,
            "versions": {s: STAGE_VERSIONS[s] for s in upstream},
            "config": {f: config[f] for f in STAGE_FIELDS[stage]},
        }
    )


def plan_key(shard: ShardConfig) -> str:
    """Content-address of the columnar workload plan for one shard.

    Derived from the workload stage key: the plan is just the columnar
    form of the same job stream, so everything that invalidates the
    workload invalidates the plan.
    """
    return content_key(
        {
            "stage": PLAN_STAGE,
            "version": _PLAN_VERSION,
            "workload": stage_key(shard, "workload"),
        }
    )


def chunk_key(shard: ShardConfig, chunk_jobs: int, index: int) -> str:
    """Content-address of one spilled chunk shard of a streaming build.

    Keyed on the dataset stage key plus the chunk geometry: a chunk is
    only reusable by a run that would produce the identical dataset with
    the identical chunk boundaries.
    """
    return content_key(
        {
            "stage": CHUNK_STAGE,
            "version": _CHUNK_VERSION,
            "dataset": stage_key(shard, "dataset"),
            "chunk_jobs": chunk_jobs,
            "index": index,
        }
    )


@dataclass(frozen=True)
class StageTiming:
    """Wall time and throughput of one stage execution (or cache load)."""

    stage: str
    key: str
    seconds: float
    cached: bool
    n_items: int  # jobs the stage produced/sampled/joined
    n_traces: int = 0  # instrumented traces (telemetry/dataset stages)
    n_gaps: int = 0  # dropped-then-gap-filled samples (telemetry stage)

    @property
    def items_per_second(self) -> float:
        """Job throughput counter recorded in the run manifest."""
        return self.n_items / self.seconds if self.seconds > 0 else float("inf")

    @property
    def traces_per_second(self) -> float:
        """Trace throughput; 0.0 for stages that produce no traces."""
        if self.n_traces == 0:
            return 0.0
        return self.n_traces / self.seconds if self.seconds > 0 else float("inf")

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "key": self.key,
            "seconds": self.seconds,
            "cached": self.cached,
            "n_items": self.n_items,
            "n_traces": self.n_traces,
            "n_gaps": self.n_gaps,
            "items_per_second": round(self.items_per_second, 3),
            "traces_per_second": round(self.traces_per_second, 3),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StageTiming":
        # .get keeps manifests written before the throughput fields loadable.
        return cls(
            stage=data["stage"], key=data["key"], seconds=data["seconds"],
            cached=data["cached"], n_items=data["n_items"],
            n_traces=data.get("n_traces", 0),
            n_gaps=data.get("n_gaps", 0),
        )


@dataclass
class ShardReport:
    """Per-stage outcome of one shard for the run manifest."""

    config: ShardConfig
    stages: list[StageTiming] = field(default_factory=list)
    n_jobs: int = 0
    n_traces: int = 0
    dataset_key: str = ""

    @property
    def n_gaps(self) -> int:
        """Dropped-then-gap-filled telemetry samples in this shard.

        The telemetry and dataset stages both report the same artifact's
        gap count (so a dataset cache hit still surfaces it); ``max``
        reads whichever stage ran without double counting.
        """
        return max((t.n_gaps for t in self.stages), default=0)

    @property
    def seconds(self) -> float:
        """Total wall time across this shard's stages."""
        return sum(t.seconds for t in self.stages)

    @property
    def jobs_per_second(self) -> float:
        """End-to-end shard throughput (jobs over total stage wall time)."""
        secs = self.seconds
        return self.n_jobs / secs if secs > 0 else float("inf")

    @property
    def fully_cached(self) -> bool:
        """True when every stage was served from the cache."""
        return bool(self.stages) and all(t.cached for t in self.stages)

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "label": self.config.label,
            "stages": [t.to_dict() for t in self.stages],
            "n_jobs": self.n_jobs,
            "n_traces": self.n_traces,
            "n_gaps": self.n_gaps,
            "dataset_key": self.dataset_key,
            "seconds": round(self.seconds, 4),
            "jobs_per_second": round(self.jobs_per_second, 3),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardReport":
        return cls(
            config=ShardConfig.from_dict(data["config"]),
            stages=[StageTiming.from_dict(t) for t in data["stages"]],
            n_jobs=data["n_jobs"],
            n_traces=data["n_traces"],
            dataset_key=data["dataset_key"],
        )
