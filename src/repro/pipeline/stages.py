"""Stage execution: run one shard through the staged artifact cache.

The stage graph, shard configuration, cache keys, and timing records
live in :mod:`repro.pipeline.config` (kept import-light for the CLI's
bookkeeping subcommands); this module owns the heavy part — actually
running the ``workload -> schedule -> telemetry -> dataset`` stages,
which pulls in the workload generator, the scheduler engine, and the
telemetry samplers.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.metrics import DEFAULT_SECONDS_BUCKETS, REGISTRY, peak_rss_bytes
from repro.obs.tracing import trace_span
from repro.pipeline.artifacts import load_dataset, save_dataset
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.config import (
    STAGE_FIELDS,
    STAGE_VERSIONS,
    STAGES,
    ShardConfig,
    ShardReport,
    StageTiming,
    stage_key,
)
from repro.scheduler import simulate
from repro.telemetry.dataset import (
    JobDataset,
    build_inputs,
    join_dataset,
    sample_telemetry,
)
from repro.workload.generator import WorkloadGenerator

__all__ = [
    "STAGES",
    "STAGE_FIELDS",
    "STAGE_VERSIONS",
    "ShardConfig",
    "StageTiming",
    "ShardReport",
    "stage_key",
    "run_shard",
]

# Pipeline observability (docs/OBSERVABILITY.md): per-stage wall time
# and execution counts, split by whether the stage was a cache hit.
_STAGE_SECONDS = REGISTRY.histogram(
    "repro_pipeline_stage_seconds",
    "Wall time of one pipeline stage execution (hit or build).",
    buckets=DEFAULT_SECONDS_BUCKETS,
    labelnames=("stage", "cached"),
)
_STAGE_RUNS = REGISTRY.counter(
    "repro_pipeline_stage_runs_total",
    "Pipeline stage executions by stage and cache outcome.",
    labelnames=("stage", "cached"),
)

def run_shard(
    shard: ShardConfig,
    cache: ArtifactCache,
    want_dataset: bool = True,
    force: bool = False,
) -> tuple[ShardReport, JobDataset | None]:
    """Run one shard through the staged cache.

    Resumes from the deepest cached stage: a warm dataset entry returns
    immediately (loading it only if ``want_dataset``); otherwise cached
    intermediates (pickled stage payloads) seed the remaining stages,
    which are computed and committed. ``force`` recomputes everything,
    overwriting nothing (identical keys re-commit identical bytes).
    """
    with trace_span("pipeline.shard", label=shard.label, force=force) as span:
        report, dataset = _run_shard_stages(shard, cache, want_dataset, force)
        if span is not None:
            span.set(n_jobs=report.n_jobs, fully_cached=report.fully_cached)
        return report, dataset


def _run_shard_stages(
    shard: ShardConfig,
    cache: ArtifactCache,
    want_dataset: bool,
    force: bool,
) -> tuple[ShardReport, JobDataset | None]:
    keys = {s: stage_key(shard, s) for s in STAGES}
    report = ShardReport(config=shard, dataset_key=keys["dataset"])
    meta_common = {"config": shard.to_dict(), "label": shard.label}

    def staged(stage: str, cached: bool):
        """One stage's trace span (a child of the shard span)."""
        return trace_span(
            "pipeline.stage", stage=stage, cached=cached, shard=shard.label
        )

    def timed(
        stage: str, cached: bool, n_items: int, t0: float,
        n_traces: int = 0, n_gaps: int = 0,
    ) -> None:
        seconds = time.perf_counter() - t0
        _STAGE_SECONDS.observe(seconds, stage=stage, cached=str(cached).lower())
        _STAGE_RUNS.inc(stage=stage, cached=str(cached).lower())
        report.stages.append(
            StageTiming(
                stage=stage, key=keys[stage],
                seconds=seconds, cached=cached,
                n_items=n_items, n_traces=n_traces, n_gaps=n_gaps,
            )
        )

    # Fast path: final artifact already committed.
    if not force and cache.has("dataset", keys["dataset"]):
        with staged("dataset", True):
            t0 = time.perf_counter()
            meta = cache.load_meta("dataset", keys["dataset"])
            dataset = (
                load_dataset(cache.entry_dir("dataset", keys["dataset"]))
                if want_dataset
                else None
            )
            timed("dataset", True, meta.get("n_jobs", 0), t0,
                  meta.get("n_traces", 0), meta.get("n_gaps", 0))
        report.n_jobs = meta.get("n_jobs", 0)
        report.n_traces = meta.get("n_traces", 0)
        return report, dataset

    # Resume from the deepest cached intermediate.
    specs = scheduled = sample = None
    if not force and cache.has("telemetry", keys["telemetry"]):
        with staged("telemetry", True):
            t0 = time.perf_counter()
            sample = cache.load_pickle("telemetry", keys["telemetry"])
            timed(
                "telemetry", True, sample.num_jobs, t0, len(sample.traces),
                # Pickles cached before gap accounting lack the field.
                getattr(sample, "n_gaps", 0),
            )
    if not force and cache.has("schedule", keys["schedule"]):
        with staged("schedule", True):
            t0 = time.perf_counter()
            scheduled = cache.load_pickle("schedule", keys["schedule"])
            timed("schedule", True, len(scheduled), t0)
    elif not force and cache.has("workload", keys["workload"]):
        with staged("workload", True):
            t0 = time.perf_counter()
            specs = cache.load_pickle("workload", keys["workload"])
            timed("workload", True, len(specs), t0)

    cluster, params = build_inputs(
        shard.system, seed=shard.seed, num_nodes=shard.num_nodes,
        num_users=shard.num_users, horizon_s=shard.horizon_s,
        params_overrides=shard.overrides_dict or None,
        variability_sigma=shard.variability_sigma,
    )

    if scheduled is None:
        if specs is None:
            with staged("workload", False):
                t0 = time.perf_counter()
                generator = WorkloadGenerator(
                    params, cluster.num_nodes, seed=shard.seed
                )
                specs = generator.generate()
                cache.store_pickle(
                    "workload", keys["workload"], specs,
                    {**meta_common, "n_items": len(specs),
                     "seconds": round(time.perf_counter() - t0, 4),
                 "peak_rss_bytes": peak_rss_bytes()},
                )
                timed("workload", False, len(specs), t0)
        with staged("schedule", False):
            t0 = time.perf_counter()
            scheduled = simulate(
                specs, cluster.num_nodes, backfill_depth=shard.backfill_depth
            )
            cache.store_pickle(
                "schedule", keys["schedule"], scheduled,
                {**meta_common, "n_items": len(scheduled),
                 "seconds": round(time.perf_counter() - t0, 4),
                 "peak_rss_bytes": peak_rss_bytes()},
            )
            timed("schedule", False, len(scheduled), t0)

    if sample is None:
        with staged("telemetry", False):
            t0 = time.perf_counter()
            sample = sample_telemetry(
                cluster, scheduled, params.horizon_s,
                seed=shard.seed, max_traces=shard.max_traces,
            )
            cache.store_pickle(
                "telemetry", keys["telemetry"], sample,
                {**meta_common, "n_items": sample.num_jobs,
                 "n_traces": len(sample.traces),
                 "n_gaps": sample.n_gaps,
                 "seconds": round(time.perf_counter() - t0, 4),
                 "peak_rss_bytes": peak_rss_bytes()},
            )
            timed(
                "telemetry", False, sample.num_jobs, t0,
                len(sample.traces), sample.n_gaps,
            )

    with staged("dataset", False):
        t0 = time.perf_counter()
        dataset = join_dataset(cluster, scheduled, params.horizon_s, sample)
        artifact_meta: dict[str, Any] = {}

        def build(tmp_dir):
            artifact_meta.update(save_dataset(dataset, tmp_dir))
            return {
                "n_jobs": artifact_meta["n_jobs"],
                "n_traces": artifact_meta["n_traces"],
                "n_minutes": artifact_meta["n_minutes"],
            }

        cache.store_tree(
            "dataset", keys["dataset"], build,
            # The gap count rides on the final artifact too, so a later
            # cache-hit load still reports how many samples were filled in.
            {**meta_common, "n_gaps": getattr(sample, "n_gaps", 0),
             "seconds": round(time.perf_counter() - t0, 4),
             "peak_rss_bytes": peak_rss_bytes()},
        )
        timed("dataset", False, dataset.num_jobs, t0, len(dataset.traces),
              getattr(sample, "n_gaps", 0))
    report.n_jobs = dataset.num_jobs
    report.n_traces = len(dataset.traces)
    return report, dataset if want_dataset else None
