"""Streaming (bounded-memory) shard execution: chunk, spill, compact.

The monolithic :func:`repro.pipeline.stages.run_shard` materializes the
whole job stream, schedule, and telemetry sample in memory — fine at the
paper's 41k-job scale, a wall at millions of jobs. This module builds
the *same artifact, byte for byte*, holding only one chunk plus the
scheduler's live frontier at a time:

1. **Plan** — the workload is generated once into a columnar
   :class:`~repro.workload.generator.WorkloadPlan` (~32 bytes/job) and
   cached; job specs are materialized per chunk from plan slices.
2. **Chunk** — a :class:`ChunkPlan` partitions the plan's job indices
   into deterministic, seed-independent chunks. For each chunk the
   incremental :class:`~repro.scheduler.simulator.Simulator` is fed the
   chunk's arrivals (carrying the running set / resume pointer across
   boundaries), the started jobs are harvested, telemetry is sampled by
   a :class:`~repro.telemetry.stream.TelemetryStream` continuing the
   monolithic generator streams, and the joined chunk table is spilled
   as an uncompressed NPZ shard under the artifact cache's ``chunk``
   stage — together with a pickled resume checkpoint (simulator +
   telemetry state), which is what makes an interrupted run restartable
   from its last completed chunk.
3. **Compact** — the shards are merged into the final ``dataset`` stage
   entry. Job tables and sample tables concatenate; the float power
   timeline is *replayed* per job in global start order (float addition
   is not associative — summing per-chunk partial timelines would change
   the bytes), and the integer occupancy timeline is rebuilt exactly
   from bounds + cumsum. The three output files are independent, so
   ``compact_workers > 1`` fans them out over a process pool (the same
   machinery :func:`repro.pipeline.runner.run_pipeline` uses for
   shards).

Byte-identity with the monolithic writer is enforced by
``tests/pipeline/test_stream.py`` (hypothesis, across seeds and chunk
sizes) and by the CI ``stream-smoke`` job.
"""

from __future__ import annotations

import json
import pickle
import shutil
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import PipelineError, TelemetryError
from repro.frames import Table, concat, read_npz, write_npz
from repro.obs.logs import get_logger
from repro.obs.metrics import REGISTRY, peak_rss_bytes
from repro.obs.tracing import trace_span
from repro.pipeline.artifacts import DATASET_META_NAME
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.config import (
    CHUNK_STAGE,
    DEFAULT_CHUNK_JOBS,
    PLAN_STAGE,
    ShardConfig,
    ShardReport,
    StageTiming,
    chunk_key,
    plan_key,
    stage_key,
)
from repro.scheduler.simulator import SchedulerConfig, Simulator
from repro.telemetry.dataset import build_inputs, join_jobs
from repro.telemetry.schema import job_columns, save_jobs_npz
from repro.telemetry.stream import TelemetryStream
from repro.units import MINUTE
from repro.workload.generator import WorkloadGenerator

__all__ = ["ChunkPlan", "stream_shard"]

_LOG = get_logger("repro.pipeline.stream")

# Streaming observability (docs/OBSERVABILITY.md).
_CHUNKS = REGISTRY.counter(
    "repro_stream_chunks_total",
    "Streaming-pipeline chunks processed, by outcome (built/cached).",
    labelnames=("outcome",),
)
_COMPACTED = REGISTRY.counter(
    "repro_stream_shards_compacted_total",
    "Spill shards merged into final dataset artifacts.",
)
_PEAK_RSS = REGISTRY.gauge(
    "repro_peak_rss_bytes",
    "Peak resident set size of this process (bytes).",
)

_JOBS_NAME = "jobs.npz"
_POWER_NAME = "power.npz"
_SAMPLES_NAME = "samples.npz"
_STATE_NAME = "state.pkl"
_TIMELINE_NAME = "timeline.npz"


@dataclass(frozen=True)
class ChunkPlan:
    """Deterministic partition of plan indices ``[0, n_jobs)`` into chunks.

    Purely arithmetic — the boundaries depend only on ``(n_jobs,
    chunk_jobs)``, never on the seed or the schedule, so two runs of the
    same configuration always agree on every chunk's contents.
    """

    n_jobs: int
    chunk_jobs: int

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise PipelineError("chunk plan needs at least one job")
        if self.chunk_jobs < 1:
            raise PipelineError("chunk_jobs must be >= 1")

    @property
    def n_chunks(self) -> int:
        return -(-self.n_jobs // self.chunk_jobs)

    def bounds(self, index: int) -> tuple[int, int]:
        """Half-open plan-index range ``[lo, hi)`` of chunk ``index``."""
        if not 0 <= index < self.n_chunks:
            raise PipelineError(
                f"chunk index {index} out of range [0, {self.n_chunks})"
            )
        lo = index * self.chunk_jobs
        return lo, min(lo + self.chunk_jobs, self.n_jobs)

    def __iter__(self):
        for i in range(self.n_chunks):
            yield (i,) + self.bounds(i)


def stream_shard(
    shard: ShardConfig,
    cache: ArtifactCache,
    chunk_jobs: int = DEFAULT_CHUNK_JOBS,
    force: bool = False,
    compact_workers: int = 1,
    keep_shards: bool = False,
) -> ShardReport:
    """Build one shard's dataset artifact in bounded memory.

    Commits the *same* ``dataset`` cache entry (same key, same bytes) as
    :func:`~repro.pipeline.stages.run_shard`; a warm dataset entry
    returns immediately. Completed spill shards from an interrupted run
    are reused (the run resumes from the checkpoint in the last one);
    after a successful compaction the shards are deleted unless
    ``keep_shards``.
    """
    if chunk_jobs < 1:
        raise PipelineError("chunk_jobs must be >= 1")
    if compact_workers < 1:
        raise PipelineError("compact_workers must be >= 1")
    with trace_span(
        "pipeline.stream", label=shard.label, chunk_jobs=chunk_jobs, force=force
    ) as span:
        report = _stream_shard(
            shard, cache, chunk_jobs, force, compact_workers, keep_shards
        )
        if span is not None:
            span.set(n_jobs=report.n_jobs, fully_cached=report.fully_cached)
        _PEAK_RSS.set(peak_rss_bytes())
        return report


def _stream_shard(
    shard: ShardConfig,
    cache: ArtifactCache,
    chunk_jobs: int,
    force: bool,
    compact_workers: int,
    keep_shards: bool,
) -> ShardReport:
    dataset_key = stage_key(shard, "dataset")
    report = ShardReport(config=shard, dataset_key=dataset_key)
    meta_common = {"config": shard.to_dict(), "label": shard.label}

    # Fast path: final artifact already committed (by either mode).
    if not force and cache.has("dataset", dataset_key):
        t0 = time.perf_counter()
        meta = cache.load_meta("dataset", dataset_key)
        report.stages.append(
            StageTiming(
                stage="dataset", key=dataset_key,
                seconds=time.perf_counter() - t0, cached=True,
                n_items=meta.get("n_jobs", 0), n_traces=meta.get("n_traces", 0),
                n_gaps=meta.get("n_gaps", 0),
            )
        )
        report.n_jobs = meta.get("n_jobs", 0)
        report.n_traces = meta.get("n_traces", 0)
        return report

    cluster, params = build_inputs(
        shard.system, seed=shard.seed, num_nodes=shard.num_nodes,
        num_users=shard.num_users, horizon_s=shard.horizon_s,
        params_overrides=shard.overrides_dict or None,
        variability_sigma=shard.variability_sigma,
    )

    # -- plan: the columnar workload, generated once ---------------------
    pkey = plan_key(shard)
    t0 = time.perf_counter()
    if not force and cache.has(PLAN_STAGE, pkey):
        plan = cache.load_pickle(PLAN_STAGE, pkey)
        plan_cached = True
    else:
        plan = WorkloadGenerator(
            params, cluster.num_nodes, seed=shard.seed
        ).generate_plan()
        cache.store_pickle(
            PLAN_STAGE, pkey, plan,
            {**meta_common, "n_items": plan.n_jobs,
             "seconds": round(time.perf_counter() - t0, 4),
             "peak_rss_bytes": peak_rss_bytes()},
        )
        plan_cached = False
    report.stages.append(
        StageTiming(
            stage=PLAN_STAGE, key=pkey, seconds=time.perf_counter() - t0,
            cached=plan_cached, n_items=plan.n_jobs,
        )
    )
    if plan.n_jobs == 0:
        raise PipelineError(f"{shard.label}: workload plan has no jobs")

    chunks = ChunkPlan(n_jobs=plan.n_jobs, chunk_jobs=chunk_jobs)
    keys = [chunk_key(shard, chunk_jobs, i) for i in range(chunks.n_chunks)]

    # Resume from the longest prefix of committed chunk shards.
    done = 0
    if not force:
        while done < chunks.n_chunks and cache.has(CHUNK_STAGE, keys[done]):
            done += 1
    chunk_metas: list[dict] = []
    for i in range(done):
        meta = cache.load_meta(CHUNK_STAGE, keys[i])
        chunk_metas.append(meta)
        report.stages.append(
            StageTiming(
                stage=CHUNK_STAGE, key=keys[i], seconds=0.0, cached=True,
                n_items=meta.get("n_items", 0),
                n_traces=meta.get("n_traces", 0),
                n_gaps=meta.get("n_gaps", 0),
            )
        )
        _CHUNKS.inc(outcome="cached")

    sim = Simulator(
        SchedulerConfig(
            num_nodes=cluster.num_nodes, backfill_depth=shard.backfill_depth
        )
    )
    tstream = TelemetryStream(
        cluster, params.horizon_s, seed=shard.seed, max_traces=shard.max_traces
    )
    if done:
        if done < chunks.n_chunks:
            state_path = cache.entry_dir(CHUNK_STAGE, keys[done - 1]) / _STATE_NAME
            with state_path.open("rb") as fh:
                state = pickle.load(fh)
            sim = Simulator.restore(state["simulator"])
            tstream.restore_state(state["telemetry"])
        _LOG.info(
            "streaming run resumed", label=shard.label,
            chunks_reused=done, chunks_total=chunks.n_chunks,
        )

    for i in range(done, chunks.n_chunks):
        t0 = time.perf_counter()
        lo, hi = chunks.bounds(i)
        last = i == chunks.n_chunks - 1
        with trace_span(
            "pipeline.chunk", shard=shard.label, index=i, lo=lo, hi=hi
        ) as span:
            sim.feed(plan.materialize(lo, hi))
            if last:
                sim.drain()
            harvest = sim.take_results()
            sample = tstream.sample_chunk(harvest)
            jobs = join_jobs(harvest, sample)
            max_end_s = max((j.end_s for j in harvest), default=0)
            checkpoint = None
            if not last:
                checkpoint = {
                    "simulator": sim.snapshot(),
                    "telemetry": tstream.state(),
                    "next_index": i + 1,
                }

            def build(tmp_dir: Path) -> dict:
                # Spill shards are transient: skip deflate (compress only
                # the final artifact, whose bytes are the contract).
                write_npz(jobs, tmp_dir / _JOBS_NAME, compress=False)
                write_npz(
                    Table({"power_sum": sample.power_sum}),
                    tmp_dir / _POWER_NAME, compress=False,
                )
                if sample.traces:
                    write_npz(
                        _chunk_samples(sample), tmp_dir / _SAMPLES_NAME,
                        compress=False,
                    )
                if checkpoint is not None:
                    with (tmp_dir / _STATE_NAME).open("wb") as fh:
                        pickle.dump(
                            checkpoint, fh, protocol=pickle.HIGHEST_PROTOCOL
                        )
                return {}

            meta = {
                **meta_common,
                "dataset_key": dataset_key,
                "chunk_jobs": chunk_jobs,
                "index": i,
                "n_items": len(harvest),
                "n_traces": len(sample.traces),
                "n_gaps": sample.n_gaps,
                "max_end_s": int(max_end_s),
                "trace_order": [int(k) for k in sample.traces],
                "seconds": round(time.perf_counter() - t0, 4),
                "peak_rss_bytes": peak_rss_bytes(),
            }
            cache.store_tree(CHUNK_STAGE, keys[i], build, meta)
            chunk_metas.append(meta)
            if span is not None:
                span.set(n_items=len(harvest), n_traces=len(sample.traces))
        report.stages.append(
            StageTiming(
                stage=CHUNK_STAGE, key=keys[i],
                seconds=time.perf_counter() - t0, cached=False,
                n_items=len(harvest), n_traces=len(sample.traces),
                n_gaps=sample.n_gaps,
            )
        )
        _CHUNKS.inc(outcome="built")
        _PEAK_RSS.set(peak_rss_bytes())

    # -- compact: merge shards into the final dataset entry --------------
    t0 = time.perf_counter()
    n_jobs = sum(m.get("n_items", 0) for m in chunk_metas)
    n_traces = sum(m.get("n_traces", 0) for m in chunk_metas)
    n_gaps = sum(m.get("n_gaps", 0) for m in chunk_metas)
    trace_order = [jid for m in chunk_metas for jid in m.get("trace_order", [])]
    max_end_s = max(m.get("max_end_s", 0) for m in chunk_metas)
    n_minutes = max(max_end_s // MINUTE + 1, int(np.ceil(params.horizon_s / MINUTE)))
    shard_dirs = [str(cache.entry_dir(CHUNK_STAGE, k)) for k in keys]
    with trace_span(
        "pipeline.compact", shard=shard.label, n_shards=len(keys),
        workers=compact_workers,
    ):

        def build(tmp_dir: Path) -> dict:
            _compact_shards(
                shard_dirs, tmp_dir, n_minutes=n_minutes,
                num_nodes=cluster.num_nodes, workers=compact_workers,
            )
            spec_fields = {
                f: getattr(cluster.spec, f)
                for f in cluster.spec.__dataclass_fields__
            }
            meta = {
                "system": cluster.spec.name,
                "horizon_s": int(params.horizon_s),
                "n_jobs": n_jobs,
                "n_traces": n_traces,
                "n_minutes": n_minutes,
                "spec": spec_fields,
                "trace_order": trace_order,
            }
            (tmp_dir / DATASET_META_NAME).write_text(
                json.dumps(meta, indent=2, sort_keys=True)
            )
            return {"n_jobs": n_jobs, "n_traces": n_traces, "n_minutes": n_minutes}

        cache.store_tree(
            "dataset", dataset_key, build,
            {**meta_common, "n_gaps": n_gaps,
             "seconds": round(time.perf_counter() - t0, 4),
             "streamed": True, "chunk_jobs": chunk_jobs,
             "n_chunks": chunks.n_chunks,
             "peak_rss_bytes": peak_rss_bytes()},
        )
    _COMPACTED.inc(chunks.n_chunks)
    _PEAK_RSS.set(peak_rss_bytes())
    report.stages.append(
        StageTiming(
            stage="dataset", key=dataset_key,
            seconds=time.perf_counter() - t0, cached=False,
            n_items=n_jobs, n_traces=n_traces, n_gaps=n_gaps,
        )
    )
    report.n_jobs = n_jobs
    report.n_traces = n_traces

    if not keep_shards:
        for key in keys:
            entry = cache.entry_dir(CHUNK_STAGE, key)
            if entry.is_dir():
                shutil.rmtree(entry)
        stage_dir = cache.root / CHUNK_STAGE
        if stage_dir.is_dir() and not any(stage_dir.iterdir()):
            stage_dir.rmdir()
    _LOG.info(
        "streaming shard compacted", label=shard.label, n_jobs=n_jobs,
        n_chunks=chunks.n_chunks, chunks_reused=done,
        seconds=round(time.perf_counter() - t0, 3),
        peak_rss_bytes=peak_rss_bytes(),
    )
    return report


def _chunk_samples(sample) -> Table:
    """Flatten one chunk's traces exactly like the monolithic sample table.

    :func:`repro.telemetry.samples_schema.samples_table` iterates the
    dataset's trace dict in insertion (start) order; per-chunk tables in
    chunk order therefore concatenate to the monolithic table.
    """
    job_ids, node_ids, ranks, minutes, power = [], [], [], [], []
    for job_id, trace in sample.traces.items():
        n, m = trace.matrix.shape
        physical = np.asarray(sample.trace_allocations[job_id], dtype=np.int64)
        job_ids.append(np.full(n * m, job_id, dtype=np.int64))
        node_ids.append(np.repeat(physical, m))
        ranks.append(np.repeat(np.arange(n, dtype=np.int64), m))
        minutes.append(np.tile(np.arange(m, dtype=np.int64), n))
        power.append(trace.matrix.ravel())
    return Table(
        {
            "job_id": np.concatenate(job_ids),
            "node_id": np.concatenate(node_ids),
            "node_rank": np.concatenate(ranks),
            "minute": np.concatenate(minutes),
            "power_w": np.concatenate(power),
        }
    )


# -- compaction workers (module-level: picklable for the process pool) ---


def _compact_jobs(payload: tuple[list[str], str]) -> None:
    """Concatenate the chunks' job tables into the final ``jobs.npz``.

    ``np.concatenate`` promotes per-chunk string columns to the widest
    width, which equals the global width the monolithic writer computes.
    """
    shard_dirs, out_path = payload
    tables = [read_npz(Path(d) / _JOBS_NAME) for d in shard_dirs]
    jobs = concat([t for t in tables if len(t)])
    save_jobs_npz(jobs.select(job_columns(jobs)), out_path)


def _compact_samples(payload: tuple[list[str], str]) -> None:
    """Concatenate the chunks' sample tables into the final ``samples.npz``."""
    shard_dirs, out_path = payload
    parts = [
        read_npz(p)
        for p in (Path(d) / _SAMPLES_NAME for d in shard_dirs)
        if p.is_file()
    ]
    if parts:
        write_npz(concat(parts), out_path)


def _compact_timeline(payload: tuple[list[str], str, int, int]) -> None:
    """Rebuild the per-minute timelines exactly as the monolithic join.

    ``active_nodes`` is integer and order-free (bounds + cumsum);
    ``job_power_watts`` replays the per-job ``+=`` loop in global start
    order, because float accumulation order is part of the bytes.
    """
    shard_dirs, out_path, n_minutes, num_nodes = payload
    bounds = np.zeros(n_minutes + 1, dtype=np.int64)
    job_power = np.zeros(n_minutes, dtype=float)
    for d in shard_dirs:
        jobs = read_npz(Path(d) / _JOBS_NAME)
        if not len(jobs):
            continue
        power_sum = read_npz(Path(d) / _POWER_NAME)["power_sum"]
        a_min = jobs["start_s"] // MINUTE
        b_min = np.maximum(a_min + 1, jobs["end_s"] // MINUTE)
        nodes = jobs["nodes"]
        np.add.at(bounds, a_min, nodes)
        np.subtract.at(bounds, b_min, nodes)
        # tolist() up front: indexing numpy scalars one-by-one in a
        # million-iteration loop costs more than the slice adds do.
        for a, b, w in zip(a_min.tolist(), b_min.tolist(), power_sum.tolist()):
            job_power[a:b] += w
    active = np.cumsum(bounds[:-1])
    if np.any(active > num_nodes):
        raise TelemetryError("scheduler over-allocated nodes (timeline check)")
    write_npz(
        Table({"active_nodes": active, "job_power_watts": job_power}), out_path
    )


def _compact_worker(task: tuple[str, Any]) -> str:
    """Process-pool entry point: run one output-file compaction task."""
    kind, payload = task
    {"jobs": _compact_jobs, "samples": _compact_samples,
     "timeline": _compact_timeline}[kind](payload)
    return kind


def _compact_shards(
    shard_dirs: list[str],
    out_dir: Path,
    n_minutes: int,
    num_nodes: int,
    workers: int,
) -> None:
    """Write the final artifact files from the spill shards.

    The three outputs are independent, so with ``workers > 1`` they run
    on a process pool; serial and parallel compaction produce identical
    bytes (each file is written by exactly one deterministic task).
    """
    tasks: list[tuple[str, Any]] = [
        ("jobs", (shard_dirs, str(out_dir / _JOBS_NAME))),
        ("samples", (shard_dirs, str(out_dir / _SAMPLES_NAME))),
        ("timeline", (shard_dirs, str(out_dir / _TIMELINE_NAME), n_minutes, num_nodes)),
    ]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
            list(pool.map(_compact_worker, tasks))
    else:
        for task in tasks:
            _compact_worker(task)
