"""Content-addressed on-disk artifact cache.

Every pipeline stage output is stored under
``<root>/<stage>/<sha256-key>/`` where the key hashes the *complete
configuration the stage depends on* (see
:func:`repro.pipeline.stages.stage_key`). An entry is a directory
holding the payload (``payload.pkl`` for intermediate stages, the
open-data NPZ/JSON artifact files for the final dataset stage) plus a
``meta.json`` sidecar describing what it is and how long it took to
build.

Commits are atomic: payloads are written into a temporary sibling
directory and ``os.rename``-d into place, so concurrent workers racing
on the same key cannot publish a half-written entry — the loser of the
race simply discards its copy (both copies are byte-identical by
construction).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import CacheError
from repro.faults.injector import maybe_fire
from repro.obs.metrics import REGISTRY

# Cache observability (docs/OBSERVABILITY.md). Outcomes: "hit" (entry
# served), "miss" (no entry), "error" (unreadable entry or injected
# fault). The damaged gauge reflects the latest entries() scan.
_CACHE_READS = REGISTRY.counter(
    "repro_cache_reads_total",
    "Artifact-cache reads by stage and outcome (hit/miss/error).",
    labelnames=("stage", "outcome"),
)
_CACHE_WRITES = REGISTRY.counter(
    "repro_cache_writes_total",
    "Artifact-cache entries committed, by stage.",
    labelnames=("stage",),
)
_CACHE_DAMAGED = REGISTRY.gauge(
    "repro_cache_damaged_entries",
    "Damaged cache entries (unreadable meta) found by the latest scan.",
)

__all__ = [
    "CacheError",
    "CacheEntry",
    "ArtifactCache",
    "canonical_json",
    "content_key",
    "default_cache_dir",
]

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
META_NAME = "meta.json"
PAYLOAD_NAME = "payload.pkl"


def default_cache_dir() -> Path:
    """The cache root used when none is given.

    ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-pipeline``.
    """
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pipeline"


def _jsonable(obj: Any) -> Any:
    # numpy scalars carry .item(); anything else unserializable is a bug
    # in the caller's config, so let json raise.
    if hasattr(obj, "item") and not isinstance(obj, (str, bytes)):
        return obj.item()
    raise TypeError(f"not canonically serializable: {type(obj).__name__}")


def canonical_json(obj: Any) -> str:
    """Whitespace-free, key-sorted JSON — the hashable form of a config."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_jsonable)


def content_key(payload: dict) -> str:
    """SHA-256 over the canonical JSON of ``payload`` (hex digest)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One committed cache entry: its address plus the meta sidecar."""

    stage: str
    key: str
    path: Path
    meta: dict

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the entry's files."""
        return sum(p.stat().st_size for p in self.path.iterdir() if p.is_file())

    @property
    def damaged(self) -> bool:
        """True when the entry's meta sidecar was unreadable.

        A crashed or fault-injected writer can leave a truncated
        ``meta.json`` behind; such entries are surfaced (and removable)
        instead of crashing ``pipeline status`` / ``clean``.
        """
        return bool(self.meta.get("damaged"))


class ArtifactCache:
    """Content-addressed store of pipeline stage outputs.

    Parameters
    ----------
    root:
        Cache directory (created lazily). Layout is
        ``<root>/<stage>/<key>/{meta.json, payload...}``.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # -- addressing ------------------------------------------------------

    def entry_dir(self, stage: str, key: str) -> Path:
        """Directory a (stage, key) entry lives in (may not exist yet)."""
        return self.root / stage / key

    def has(self, stage: str, key: str) -> bool:
        """True if a committed entry exists for (stage, key)."""
        return (self.entry_dir(stage, key) / META_NAME).is_file()

    def load_meta(self, stage: str, key: str) -> dict:
        """The meta.json of a committed entry."""
        if maybe_fire("cache.read"):
            _CACHE_READS.inc(stage=stage, outcome="error")
            raise CacheError(f"injected fault: cache.read {stage}/{key[:12]}…")
        path = self.entry_dir(stage, key) / META_NAME
        try:
            meta = json.loads(path.read_text())
        except FileNotFoundError:
            _CACHE_READS.inc(stage=stage, outcome="miss")
            raise CacheError(f"no cache entry for {stage}/{key[:12]}…") from None
        except (OSError, json.JSONDecodeError) as exc:
            _CACHE_READS.inc(stage=stage, outcome="error")
            raise CacheError(
                f"unreadable meta for {stage}/{key[:12]}…: {exc}"
            ) from None
        _CACHE_READS.inc(stage=stage, outcome="hit")
        return meta

    # -- commit / load ---------------------------------------------------

    def _commit(self, stage: str, key: str, tmp: Path) -> Path:
        final = self.entry_dir(stage, key)
        final.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(tmp, final)
        except OSError:
            # Lost a race with another worker building the same key; the
            # published entry is byte-identical, keep it.
            shutil.rmtree(tmp, ignore_errors=True)
        return final

    def _tmp_dir(self) -> Path:
        tmp = self.root / "tmp" / uuid.uuid4().hex
        tmp.mkdir(parents=True)
        return tmp

    def _write_meta(self, where: Path, stage: str, key: str, meta: dict) -> dict:
        full = {"stage": stage, "key": key, "created_unix": time.time(), **meta}
        (where / META_NAME).write_text(json.dumps(full, indent=2, sort_keys=True))
        return full

    def store_pickle(self, stage: str, key: str, obj: Any, meta: dict) -> Path:
        """Commit a pickled payload under (stage, key). Atomic."""
        if maybe_fire("cache.write"):
            raise CacheError(f"injected fault: cache.write {stage}/{key[:12]}…")
        tmp = self._tmp_dir()
        with (tmp / PAYLOAD_NAME).open("wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_meta(tmp, stage, key, meta)
        _CACHE_WRITES.inc(stage=stage)
        return self._commit(stage, key, tmp)

    def load_pickle(self, stage: str, key: str) -> Any:
        """Load a payload committed by :meth:`store_pickle`."""
        if maybe_fire("cache.read"):
            _CACHE_READS.inc(stage=stage, outcome="error")
            raise CacheError(f"injected fault: cache.read {stage}/{key[:12]}…")
        if maybe_fire("cache.corrupt"):
            _CACHE_READS.inc(stage=stage, outcome="error")
            raise pickle.UnpicklingError(
                f"injected fault: cache.corrupt {stage}/{key[:12]}…"
            )
        path = self.entry_dir(stage, key) / PAYLOAD_NAME
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            _CACHE_READS.inc(stage=stage, outcome="miss")
            raise CacheError(f"no cached payload for {stage}/{key[:12]}…") from None
        _CACHE_READS.inc(stage=stage, outcome="hit")
        return payload

    def store_tree(
        self, stage: str, key: str, build: Callable[[Path], dict], meta: dict
    ) -> Path:
        """Commit a multi-file artifact under (stage, key). Atomic.

        ``build(tmp_dir)`` writes the artifact files into ``tmp_dir`` and
        returns extra meta fields to merge into the sidecar.
        """
        if maybe_fire("cache.write"):
            raise CacheError(f"injected fault: cache.write {stage}/{key[:12]}…")
        tmp = self._tmp_dir()
        extra = build(tmp) or {}
        self._write_meta(tmp, stage, key, {**meta, **extra})
        _CACHE_WRITES.inc(stage=stage)
        return self._commit(stage, key, tmp)

    # -- inspection / cleaning -------------------------------------------

    def entries(self, stage: str | None = None) -> list[CacheEntry]:
        """All committed entries, sorted by (stage, key)."""
        found: list[CacheEntry] = []
        if stage is not None:
            stages = [stage]
        elif self.root.is_dir():
            stages = sorted(
                p.name for p in self.root.iterdir() if p.is_dir() and p.name != "tmp"
            )
        else:
            stages = []
        for s in stages:
            stage_dir = self.root / s
            if not stage_dir.is_dir():
                continue
            for entry in sorted(stage_dir.iterdir()):
                if not entry.is_dir():
                    continue
                meta_path = entry / META_NAME
                # A crashed/faulted writer can leave a truncated sidecar
                # (or none at all — which also wedges the key: commits
                # rename onto the occupied directory and give up).
                # Surface such entries as damaged so `status` can report
                # them and `clean` can remove them, instead of raising
                # or skipping them forever.
                if not meta_path.is_file():
                    meta = {"damaged": True, "error": f"missing {META_NAME}"}
                else:
                    try:
                        meta = json.loads(meta_path.read_text())
                    except (OSError, json.JSONDecodeError) as exc:
                        meta = {"damaged": True, "error": str(exc)}
                found.append(CacheEntry(s, entry.name, entry, meta))
        _CACHE_DAMAGED.set(sum(1 for e in found if e.damaged))
        return found

    def remove(
        self,
        stage: str | None = None,
        system: str | None = None,
        seed: int | None = None,
    ) -> int:
        """Delete entries matching *all* given filters; returns the count.

        With no filters, every entry is removed. Filtering on ``system``
        and ``seed`` matches the shard identity recorded in each entry's
        meta sidecar, so e.g. ``remove(system="emmy")`` leaves Meggie's
        artifacts untouched.
        """
        removed = 0
        for entry in self.entries(stage):
            config = entry.meta.get("config", {})
            if system is not None and config.get("system") != system:
                continue
            if seed is not None and config.get("seed") != seed:
                continue
            shutil.rmtree(entry.path)
            removed += 1
        # Drop now-empty stage directories so status output stays clean.
        if self.root.is_dir():
            for stage_dir in self.root.iterdir():
                if stage_dir.is_dir() and not any(stage_dir.iterdir()):
                    stage_dir.rmdir()
        return removed

    def size_bytes(self) -> int:
        """Total on-disk size of all committed entries."""
        return sum(e.size_bytes for e in self.entries())

    def remove_orphan_shards(self, chunk_stage: str = "chunk") -> int:
        """Delete spill shards whose dataset already committed; returns count.

        A streaming run (:mod:`repro.pipeline.stream`) deletes its spill
        shards after compaction, but a crash *between* the dataset commit
        and the cleanup — or a run with ``keep_shards`` — leaves chunk
        entries behind that no future run will ever read (resume checks
        the dataset first). Those, plus damaged chunk entries and stale
        ``tmp/`` staging directories, are the orphans removed here.
        Shards of an *interrupted* run (no dataset entry yet) are kept —
        they are what makes the run resumable.
        """
        removed = 0
        for entry in self.entries(chunk_stage):
            dataset_key = entry.meta.get("dataset_key")
            if entry.damaged or (
                dataset_key is not None and self.has("dataset", dataset_key)
            ):
                shutil.rmtree(entry.path)
                removed += 1
        stage_dir = self.root / chunk_stage
        if stage_dir.is_dir() and not any(stage_dir.iterdir()):
            stage_dir.rmdir()
        tmp_root = self.root / "tmp"
        if tmp_root.is_dir():
            for leftover in tmp_root.iterdir():
                shutil.rmtree(leftover, ignore_errors=True)
                removed += 1
            if not any(tmp_root.iterdir()):
                tmp_root.rmdir()
        return removed
