"""Cached, parallel experiment pipeline runner.

The substrate every figure/table build shares: a staged experiment
runner (``workload → schedule → telemetry → dataset``) with a
content-addressed on-disk artifact cache and multiprocessing fan-out
over independent (system, seed) shards.

* :func:`build_dataset` — cached drop-in for
  :func:`repro.telemetry.generate_dataset` (one shard, returns the
  dataset).
* :func:`run_pipeline` — build many shards, optionally in parallel;
  returns a :class:`RunManifest` with per-stage wall time, throughput,
  and cache-hit records.
* :class:`ArtifactCache` — the content-addressed store
  (``pipeline status`` / ``pipeline clean`` in the CLI).

Only the light bookkeeping surface (the cache and
:mod:`repro.pipeline.config`) is imported eagerly; the execution surface
(:func:`build_dataset`, :func:`run_pipeline`, :func:`run_shard`, the
artifact serializers) loads on first attribute access via PEP 562, so
``python -m repro pipeline status``/``clean`` never import numpy, scipy,
or the simulation layers.

See docs/PIPELINE.md for the stage graph, cache layout, invalidation
keys, parallelism model, and manifest schema; the CLI surface is
``python -m repro pipeline run|run-all|status|clean``.
"""

from repro.pipeline.cache import (
    ArtifactCache,
    CacheEntry,
    CacheError,
    canonical_json,
    content_key,
    default_cache_dir,
)
from repro.pipeline.config import (
    CHUNK_STAGE,
    DEFAULT_CHUNK_JOBS,
    PLAN_STAGE,
    STAGE_FIELDS,
    STAGE_VERSIONS,
    STAGES,
    ShardConfig,
    ShardReport,
    StageTiming,
    chunk_key,
    plan_key,
    stage_key,
)

__all__ = [
    "STAGES",
    "STAGE_FIELDS",
    "STAGE_VERSIONS",
    "CHUNK_STAGE",
    "DEFAULT_CHUNK_JOBS",
    "MANIFEST_NAME",
    "PLAN_STAGE",
    "ArtifactCache",
    "CacheEntry",
    "CacheError",
    "ChunkPlan",
    "RunManifest",
    "ShardConfig",
    "ShardReport",
    "StageTiming",
    "build_dataset",
    "canonical_json",
    "chunk_key",
    "content_key",
    "default_cache_dir",
    "load_dataset",
    "plan_key",
    "run_pipeline",
    "run_shard",
    "save_dataset",
    "stage_key",
    "stream_shard",
]

# Heavy symbols resolved lazily (PEP 562): name -> defining submodule.
_LAZY_ATTRS = {
    "MANIFEST_NAME": "repro.pipeline.runner",
    "RunManifest": "repro.pipeline.runner",
    "build_dataset": "repro.pipeline.runner",
    "run_pipeline": "repro.pipeline.runner",
    "run_shard": "repro.pipeline.stages",
    "load_dataset": "repro.pipeline.artifacts",
    "save_dataset": "repro.pipeline.artifacts",
    "ChunkPlan": "repro.pipeline.stream",
    "stream_shard": "repro.pipeline.stream",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so later lookups skip this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_ATTRS))
