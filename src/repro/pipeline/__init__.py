"""Cached, parallel experiment pipeline runner.

The substrate every figure/table build shares: a staged experiment
runner (``workload → schedule → telemetry → dataset``) with a
content-addressed on-disk artifact cache and multiprocessing fan-out
over independent (system, seed) shards.

* :func:`build_dataset` — cached drop-in for
  :func:`repro.telemetry.generate_dataset` (one shard, returns the
  dataset).
* :func:`run_pipeline` — build many shards, optionally in parallel;
  returns a :class:`RunManifest` with per-stage wall time, throughput,
  and cache-hit records.
* :class:`ArtifactCache` — the content-addressed store
  (``pipeline status`` / ``pipeline clean`` in the CLI).

See docs/PIPELINE.md for the stage graph, cache layout, invalidation
keys, parallelism model, and manifest schema; the CLI surface is
``python -m repro pipeline run|run-all|status|clean``.
"""

from repro.pipeline.artifacts import load_dataset, save_dataset
from repro.pipeline.cache import (
    ArtifactCache,
    CacheEntry,
    CacheError,
    canonical_json,
    content_key,
    default_cache_dir,
)
from repro.pipeline.runner import (
    MANIFEST_NAME,
    RunManifest,
    build_dataset,
    run_pipeline,
)
from repro.pipeline.stages import (
    STAGE_FIELDS,
    STAGE_VERSIONS,
    STAGES,
    ShardConfig,
    ShardReport,
    StageTiming,
    run_shard,
    stage_key,
)

__all__ = [
    "STAGES",
    "STAGE_FIELDS",
    "STAGE_VERSIONS",
    "MANIFEST_NAME",
    "ArtifactCache",
    "CacheEntry",
    "CacheError",
    "RunManifest",
    "ShardConfig",
    "ShardReport",
    "StageTiming",
    "build_dataset",
    "canonical_json",
    "content_key",
    "default_cache_dir",
    "load_dataset",
    "run_pipeline",
    "run_shard",
    "save_dataset",
    "stage_key",
]
