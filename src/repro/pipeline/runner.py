"""Parallel shard execution and the run manifest.

:func:`run_pipeline` fans independent (system, seed) shards out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and merges their
reports deterministically (shards are sorted by configuration before
dispatch and collected in submission order, so the manifest — and the
cache contents — are identical for any worker count). Every run writes a
JSON :class:`RunManifest` recording per-stage wall time, throughput, and
cache hits; the manifest is the bench trajectory the ROADMAP asks for.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.errors import PipelineError
from repro.obs.logs import get_logger
from repro.obs.metrics import DEFAULT_SECONDS_BUCKETS, REGISTRY, peak_rss_bytes
from repro.obs.tracing import trace_span
from repro.pipeline.cache import ArtifactCache, canonical_json, default_cache_dir
from repro.pipeline.config import DEFAULT_CHUNK_JOBS
from repro.pipeline.stages import ShardConfig, ShardReport, run_shard
from repro.pipeline.stream import stream_shard
from repro.telemetry.dataset import JobDataset

__all__ = ["RunManifest", "run_pipeline", "build_dataset", "MANIFEST_NAME"]

_RUNS = REGISTRY.counter(
    "repro_pipeline_runs_total",
    "Completed run_pipeline invocations.",
)
_RUN_SECONDS = REGISTRY.histogram(
    "repro_pipeline_run_seconds",
    "End-to-end wall time of one run_pipeline invocation.",
    buckets=DEFAULT_SECONDS_BUCKETS,
)
_LOG = get_logger("repro.pipeline")

MANIFEST_NAME = "manifest-latest.json"
_MANIFEST_VERSION = 1


@dataclass
class RunManifest:
    """Machine-readable record of one pipeline run.

    Serialized as JSON next to the cache (``manifest-latest.json``) and,
    optionally, to an explicit path. Schema documented in
    docs/PIPELINE.md.
    """

    workers: int
    cache_dir: str
    total_seconds: float
    shards: list[ShardReport] = field(default_factory=list)
    created_unix: float = 0.0
    version: int = _MANIFEST_VERSION
    # Peak resident set size of the run (parent process plus reaped
    # pool workers), captured when the manifest is assembled.
    peak_rss_bytes: int = 0

    @property
    def n_jobs(self) -> int:
        """Total jobs across all shards."""
        return sum(s.n_jobs for s in self.shards)

    @property
    def n_gaps(self) -> int:
        """Total dropped-then-gap-filled telemetry samples across shards."""
        return sum(s.n_gaps for s in self.shards)

    @property
    def stages_cached(self) -> int:
        """How many stage executions were cache hits."""
        return sum(1 for s in self.shards for t in s.stages if t.cached)

    @property
    def stages_total(self) -> int:
        """How many stage executions the run performed (hits + builds)."""
        return sum(len(s.stages) for s in self.shards)

    @property
    def fully_cached(self) -> bool:
        """True when every shard was served entirely from the cache."""
        return all(s.fully_cached for s in self.shards)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "created_unix": self.created_unix,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "total_seconds": round(self.total_seconds, 4),
            "peak_rss_bytes": self.peak_rss_bytes,
            "n_jobs": self.n_jobs,
            "n_gaps": self.n_gaps,
            "stages_cached": self.stages_cached,
            "stages_total": self.stages_total,
            "shards": [s.to_dict() for s in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        return cls(
            workers=data["workers"],
            cache_dir=data["cache_dir"],
            total_seconds=data["total_seconds"],
            shards=[ShardReport.from_dict(s) for s in data["shards"]],
            created_unix=data.get("created_unix", 0.0),
            version=data.get("version", _MANIFEST_VERSION),
            peak_rss_bytes=data.get("peak_rss_bytes", 0),
        )

    def save(self, path: str | os.PathLike) -> Path:
        """Write the manifest as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunManifest":
        """Read a manifest written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _shard_worker(payload: tuple[str, dict, bool, int]) -> dict:
    """Process-pool entry point: run one shard against the shared cache."""
    cache_root, shard_dict, stream, chunk_jobs = payload
    shard = ShardConfig.from_dict(shard_dict)
    cache = ArtifactCache(cache_root)
    if stream:
        report = stream_shard(shard, cache, chunk_jobs=chunk_jobs)
    else:
        report, _ = run_shard(shard, cache, want_dataset=False)
    return report.to_dict()


def _normalize_shards(shards: Iterable[ShardConfig | dict]) -> list[ShardConfig]:
    out: list[ShardConfig] = []
    for s in shards:
        out.append(s if isinstance(s, ShardConfig) else ShardConfig.from_dict(s))
    if not out:
        raise PipelineError("run_pipeline needs at least one shard")
    # Deterministic order + dedupe: identical shards would race on the
    # same keys for no benefit.
    unique = {canonical_json(s.to_dict()): s for s in out}
    return [unique[k] for k in sorted(unique)]


def run_pipeline(
    shards: Sequence[ShardConfig | dict],
    cache_dir: str | os.PathLike | None = None,
    workers: int = 1,
    manifest_path: str | os.PathLike | None = None,
    force: bool = False,
    stream: bool = False,
    chunk_jobs: int = DEFAULT_CHUNK_JOBS,
) -> RunManifest:
    """Build every shard's dataset artifact, in parallel, through the cache.

    Parameters
    ----------
    shards:
        :class:`ShardConfig` instances (or their dict form). Order and
        duplicates are irrelevant — shards are deduplicated and sorted
        before dispatch, so results are independent of worker count.
    cache_dir:
        Artifact cache root (default: :func:`default_cache_dir`).
    workers:
        Process count for the fan-out; ``1`` runs in-process.
    manifest_path:
        Optional explicit path for the run manifest; a copy is always
        written to ``<cache_dir>/manifest-latest.json``.
    force:
        Recompute every stage even on cache hits.
    stream:
        Build each shard through the bounded-memory streaming path
        (:func:`repro.pipeline.stream.stream_shard`) instead of the
        monolithic stages. The committed artifacts are byte-identical.
    chunk_jobs:
        Jobs per streaming chunk (ignored unless ``stream``).

    Returns
    -------
    RunManifest
        Per-shard, per-stage wall time / throughput / cache-hit record.
    """
    if workers < 1:
        raise PipelineError("workers must be >= 1")
    cache = ArtifactCache(Path(cache_dir) if cache_dir is not None else default_cache_dir())
    todo = _normalize_shards(shards)

    t0 = time.perf_counter()
    with trace_span(
        "pipeline.run", workers=workers, n_shards=len(todo), force=force,
        stream=stream,
    ):
        if workers > 1 and len(todo) > 1 and not force:
            payloads = [
                (str(cache.root), s.to_dict(), stream, chunk_jobs) for s in todo
            ]
            with ProcessPoolExecutor(max_workers=min(workers, len(todo))) as pool:
                reports = [
                    ShardReport.from_dict(d)
                    for d in pool.map(_shard_worker, payloads)
                ]
        elif stream:
            reports = [
                stream_shard(s, cache, chunk_jobs=chunk_jobs, force=force)
                for s in todo
            ]
        else:
            reports = [
                run_shard(s, cache, want_dataset=False, force=force)[0]
                for s in todo
            ]
    manifest = RunManifest(
        workers=workers,
        cache_dir=str(cache.root),
        total_seconds=time.perf_counter() - t0,
        shards=reports,
        created_unix=time.time(),
        peak_rss_bytes=peak_rss_bytes(),
    )
    _RUNS.inc()
    _RUN_SECONDS.observe(manifest.total_seconds)
    _LOG.info(
        "pipeline run finished",
        workers=workers,
        n_shards=len(todo),
        seconds=round(manifest.total_seconds, 3),
        stages_cached=manifest.stages_cached,
        stages_total=manifest.stages_total,
    )
    manifest.save(cache.root / MANIFEST_NAME)
    if manifest_path is not None:
        manifest.save(manifest_path)
    return manifest


def build_dataset(
    system: str = "emmy",
    seed: int = 0,
    num_nodes: int | None = None,
    num_users: int | None = None,
    horizon_s: int | None = None,
    max_traces: int = 2000,
    backfill_depth: int = 100,
    params_overrides: dict | None = None,
    variability_sigma: float | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> JobDataset:
    """Cached drop-in for :func:`repro.telemetry.generate_dataset`.

    Same signature and byte-identical output, but every stage is served
    from (and committed to) the on-disk artifact cache, so a repeated
    call with the same configuration loads in milliseconds instead of
    re-running the simulation. ``cache_dir`` defaults to
    :func:`repro.pipeline.default_cache_dir`.
    """
    shard = ShardConfig(
        system=system, seed=seed, num_nodes=num_nodes, num_users=num_users,
        horizon_s=horizon_s, max_traces=max_traces, backfill_depth=backfill_depth,
        variability_sigma=variability_sigma,
        params_overrides=tuple((params_overrides or {}).items()),
    )
    cache = ArtifactCache(Path(cache_dir) if cache_dir is not None else default_cache_dir())
    _, dataset = run_shard(shard, cache, want_dataset=True)
    assert dataset is not None
    return dataset
