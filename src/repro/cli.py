"""Command-line interface: ``repro-power`` / ``python -m repro``.

Subcommands
-----------
``generate``  — run the pipeline for one system and write the job-level
                dataset (CSV or NPZ).
``analyze``   — run every analysis on a generated (or loaded) dataset
                and print paper-style summaries.
``predict``   — run the Fig 14/15 prediction evaluation.
``specs``     — print Table 1.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-power",
        description="HPC power-consumption characterization toolkit "
        "(IPDPS 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--system", choices=("emmy", "meggie"), default="emmy")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--num-nodes", type=int, default=None,
                       help="scale-down node count (default: full system)")
        p.add_argument("--num-users", type=int, default=None)
        p.add_argument("--horizon-days", type=float, default=None,
                       help="trace length in days (default: 152, the paper's 5 months)")
        p.add_argument("--max-traces", type=int, default=2000)

    gen = sub.add_parser("generate", help="generate a dataset and write it out")
    add_scale_args(gen)
    gen.add_argument("--out", type=Path, required=True,
                     help="output path (.csv or .npz)")

    ana = sub.add_parser("analyze", help="run all analyses and print summaries")
    add_scale_args(ana)

    pred = sub.add_parser("predict", help="run the prediction evaluation (Figs 14-15)")
    add_scale_args(pred)
    pred.add_argument("--repeats", type=int, default=10)

    figs = sub.add_parser("figures", help="render every paper figure as SVG")
    add_scale_args(figs)
    figs.add_argument("--out-dir", type=Path, required=True)
    figs.add_argument("--both-systems", action="store_true",
                      help="render emmy AND meggie (enables Fig 4)")
    figs.add_argument("--repeats", type=int, default=3)

    rep = sub.add_parser("report", help="write a full markdown characterization report")
    add_scale_args(rep)
    rep.add_argument("--out", type=Path, required=True, help="output .md path")
    rep.add_argument("--repeats", type=int, default=3)
    rep.add_argument("--no-prediction", action="store_true")

    sub.add_parser("specs", help="print the Table 1 system specifications")
    return parser


def _make_dataset(args: argparse.Namespace):
    from repro.telemetry import generate_dataset

    horizon = int(args.horizon_days * 86400) if args.horizon_days else None
    return generate_dataset(
        system=args.system,
        seed=args.seed,
        num_nodes=args.num_nodes,
        num_users=args.num_users,
        horizon_s=horizon,
        max_traces=args.max_traces,
    )


def _cmd_specs() -> int:
    from repro.analysis.report import format_table
    from repro.cluster import EMMY, MEGGIE
    from repro.frames import Table

    fields = (
        "num_nodes", "node_tdp_watts", "processor", "microarchitecture",
        "process_node_nm", "memory_type", "interconnect", "topology",
        "batch_system", "linpack_tflops", "linpack_power_kw",
    )
    table = Table(
        {
            "field": list(fields),
            "emmy": [str(getattr(EMMY, f)) for f in fields],
            "meggie": [str(getattr(MEGGIE, f)) for f in fields],
        }
    )
    print(format_table(table))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.telemetry.schema import save_jobs_csv, save_jobs_npz

    dataset = _make_dataset(args)
    out: Path = args.out
    if out.suffix == ".csv":
        save_jobs_csv(dataset.jobs, out)
    elif out.suffix == ".npz":
        save_jobs_npz(dataset.jobs, out)
    else:
        print(f"error: unsupported output suffix {out.suffix!r} (use .csv or .npz)",
              file=sys.stderr)
        return 2
    print(f"wrote {dataset.num_jobs} jobs ({dataset.spec.name}) to {out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro import analysis

    ds = _make_dataset(args)
    util = analysis.system_utilization(ds)
    power = analysis.power_utilization(ds)
    dist = analysis.per_node_power_distribution(ds)
    corr = analysis.feature_power_correlations(ds)
    conc = analysis.concentration_analysis(ds)
    var = analysis.user_power_variability(ds)
    clus = analysis.cluster_variability(ds, "nodes")

    print(f"system: {ds.spec.name}  jobs: {ds.num_jobs}  traces: {len(ds.traces)}")
    print(f"system utilization (Fig 1): mean {util.mean:.1%}")
    print(f"power utilization (Fig 2):  mean {power.mean:.1%}  "
          f"(stranded {power.stranded_fraction:.1%})")
    print(f"per-node power (Fig 3): {dist.mean_watts:.0f} W "
          f"({dist.mean_tdp_fraction:.0%} of TDP), sigma/mean {dist.std_over_mean:.0%}")
    print("Table 2 Spearman: "
          f"length {corr['job_length'].statistic:.2f} "
          f"(p={corr['job_length'].pvalue:.2g}), "
          f"size {corr['job_size'].statistic:.2f} "
          f"(p={corr['job_size'].pvalue:.2g})")
    print(f"user concentration (Fig 11): top 20% -> "
          f"{conc.node_hours_share:.0%} node-hours, {conc.energy_share:.0%} energy, "
          f"overlap {conc.top_set_overlap:.0%}")
    print(f"per-user power CoV (Fig 12): mean {var.mean_cov:.0%}")
    print(f"(user, nodes) clusters with sigma<10% (Fig 13): "
          f"{clus.frac_below_10pct:.1%} of {clus.n_clusters}")
    if ds.traces:
        temporal = analysis.temporal_summary(ds)
        spatial = analysis.spatial_summary(ds)
        print(f"temporal (Fig 7): mean overshoot {temporal.mean_peak_overshoot:.0%}, "
              f"mean time>10% {temporal.mean_frac_time_above_10pct:.0%}")
        print(f"spatial (Fig 9): mean spread {spatial.mean_spread_watts:.0f} W "
              f"({spatial.mean_spread_fraction:.0%} of per-node power)")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.analysis import run_prediction

    ds = _make_dataset(args)
    results = run_prediction(ds, n_repeats=args.repeats, seed=args.seed)
    print(f"system: {ds.spec.name}  jobs: {ds.num_jobs}  repeats: {args.repeats}")
    for name, result in results.items():
        s = result.summary
        print(f"{name:5s}  mean {s.mean:6.1%}  <5% err: {s.frac_below_5pct:5.1%}  "
              f"<10% err: {s.frac_below_10pct:5.1%}  (n={s.n})")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz import render_all_figures

    datasets = {args.system: _make_dataset(args)}
    if args.both_systems:
        other = "meggie" if args.system == "emmy" else "emmy"
        args.system = other
        datasets[other] = _make_dataset(args)
    paths = render_all_figures(datasets, args.out_dir, n_repeats=args.repeats)
    print(f"wrote {len(paths)} figures to {args.out_dir}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import full_report

    ds = _make_dataset(args)
    text = full_report(
        ds, include_prediction=not args.no_prediction, n_repeats=args.repeats
    )
    args.out.write_text(text)
    print(f"wrote report for {ds.spec.name} ({ds.num_jobs} jobs) to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "specs":
        return _cmd_specs()
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
