"""Command-line interface: ``repro-power`` / ``python -m repro``.

Subcommands
-----------
``generate``  — run the pipeline for one system and write the job-level
                dataset (CSV or NPZ).
``analyze``   — run every analysis on a generated (or loaded) dataset
                and print paper-style summaries.
``predict``   — run the Fig 14/15 prediction evaluation.
``serve``     — run the micro-batched online prediction service
                (docs/SERVICE.md). ``--lifecycle`` attaches the
                drift-aware model lifecycle (docs/LIFECYCLE.md), and the
                ``serve promote`` / ``serve rollback`` /
                ``serve history`` / ``serve replay`` verbs administer
                the journaled version lineage offline.
``specs``     — print Table 1.
``systems``   — the registered system catalog: ``list`` prints one
                line per system with workload profile, node count, and
                GPU inventory (docs/SCENARIOS.md).
``pipeline``  — the cached, parallel experiment runner
                (``run`` / ``run-all`` / ``status`` / ``clean``); see
                docs/PIPELINE.md.
``obs``       — observability tooling: ``summary`` renders a trace
                JSONL file's span tree, per-name aggregates, and
                critical path (docs/OBSERVABILITY.md).

Setting ``$REPRO_TRACE_FILE`` makes any subcommand append trace spans
to that JSONL file; ``serve --trace-file`` does the same for one serve
run.

Every scale flag maps 1:1 onto a :class:`repro.spec.ScenarioSpec`
field — the CLI, pipeline, facade, and serving layers all consume the
same scenario description.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.errors import IncidentError, ObsError, PipelineError
from repro.spec import ScenarioSpec

__all__ = ["main", "build_parser"]

_SPEC_DEFAULTS = ScenarioSpec()

# Mirrors repro.cluster.known_systems() — spelled out here so building
# the parser never imports the (numpy-heavy) cluster package; a test
# pins the two lists together.
_SYSTEM_CHOICES = ("alex", "emmy", "meggie", "woody")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-power",
        description="HPC power-consumption characterization toolkit "
        "(IPDPS 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale_args(p: argparse.ArgumentParser) -> None:
        # One flag per ScenarioSpec field, defaults taken from the spec
        # itself so the CLI can never drift from the canonical scenario
        # description.
        p.add_argument("--system", choices=_SYSTEM_CHOICES,
                       default=_SPEC_DEFAULTS.system)
        p.add_argument("--seed", type=int, default=_SPEC_DEFAULTS.seed)
        p.add_argument("--num-nodes", type=int, default=_SPEC_DEFAULTS.num_nodes,
                       help="scale-down node count (default: full system)")
        p.add_argument("--num-users", type=int, default=_SPEC_DEFAULTS.num_users)
        p.add_argument("--horizon-days", type=float,
                       default=_SPEC_DEFAULTS.horizon_days,
                       help="trace length in days (default: 152, the paper's 5 months)")
        p.add_argument("--max-traces", type=int, default=_SPEC_DEFAULTS.max_traces)

    gen = sub.add_parser("generate", help="generate a dataset and write it out")
    add_scale_args(gen)
    gen.add_argument("--out", type=Path, required=True,
                     help="output path (.csv or .npz)")

    ana = sub.add_parser("analyze", help="run all analyses and print summaries")
    add_scale_args(ana)

    pred = sub.add_parser("predict", help="run the prediction evaluation (Figs 14-15)")
    add_scale_args(pred)
    pred.add_argument("--repeats", type=int, default=10)

    figs = sub.add_parser("figures", help="render every paper figure as SVG")
    add_scale_args(figs)
    figs.add_argument("--out-dir", type=Path, required=True)
    figs.add_argument("--both-systems", action="store_true",
                      help="render emmy AND meggie (enables Fig 4)")
    figs.add_argument("--repeats", type=int, default=3)

    rep = sub.add_parser("report", help="write a full markdown characterization report")
    add_scale_args(rep)
    rep.add_argument("--out", type=Path, required=True, help="output .md path")
    rep.add_argument("--repeats", type=int, default=3)
    rep.add_argument("--no-prediction", action="store_true")

    srv = sub.add_parser(
        "serve",
        help="run the micro-batched online prediction service (docs/SERVICE.md)",
    )
    add_scale_args(srv)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8321,
                     help="TCP port (0 binds an ephemeral port)")
    srv.add_argument("--workers", type=int, default=1,
                     help="worker processes; >1 runs the pre-forked "
                     "SO_REUSEPORT pool (docs/SERVICE.md)")
    srv.add_argument("--max-batch", type=int, default=64,
                     help="records per vectorized predict call")
    srv.add_argument("--max-wait-ms", type=float, default=2.0,
                     help="how long an open micro-batch waits for stragglers")
    srv.add_argument("--warm", nargs="+", default=["BDT"],
                     metavar="MODEL",
                     help="models to train/load before serving "
                     "(BDT KNN FLDA online)")
    srv.add_argument("--cache-dir", type=Path, default=None,
                     help="artifact cache for datasets and trained models")
    srv.add_argument("--fault-plan", type=Path, default=None,
                     help="arm a FaultPlan JSON (docs/FAULTS.md) for the "
                     "whole serve lifetime — chaos testing only")
    srv.add_argument("--trace-file", type=Path, default=None,
                     help="append trace spans (JSONL) here for the whole "
                     "serve lifetime (docs/OBSERVABILITY.md)")
    srv.add_argument("--lifecycle", action="store_true",
                     help="attach the drift-aware model lifecycle: "
                     "/v1/feedback, shadow evaluation, promote/rollback "
                     "(docs/LIFECYCLE.md)")
    srv.add_argument("--lifecycle-dir", type=Path, default=None,
                     help="journal/feedback root (default: "
                     "<cache>/lifecycle); implies --lifecycle")

    # Lifecycle admin verbs: plain `serve` (no verb) runs the server.
    lsub = srv.add_subparsers(
        dest="serve_command",
        metavar="{promote,rollback,history,replay}",
    )

    def add_lifecycle_args(p: argparse.ArgumentParser) -> None:
        add_scale_args(p)
        p.add_argument("--cache-dir", type=Path, default=None,
                       help="artifact cache holding the model versions")
        p.add_argument("--lifecycle-dir", type=Path, default=None,
                       help="journal/feedback root (default: "
                       "<cache>/lifecycle)")
        p.add_argument("--who", default=None,
                       help="who to record in the audit journal "
                       "(default: $USER)")
        p.add_argument("--why", default="",
                       help="free-text reason recorded in the journal")

    spro = lsub.add_parser(
        "promote", help="flip the active model version (journaled, audited)"
    )
    add_lifecycle_args(spro)
    spro.add_argument("--model", required=True,
                      help="model name (BDT KNN FLDA online)")
    spro.add_argument("--version", type=int, required=True,
                      help="registered lineage version to promote")

    srb = lsub.add_parser(
        "rollback",
        help="restore a previous version (bit-identical predictions)",
    )
    add_lifecycle_args(srb)
    srb.add_argument("--model", required=True)
    srb.add_argument("--to-version", type=int, default=None,
                     help="target version (default: the pre-promote active)")

    shis = lsub.add_parser(
        "history", help="print the lifecycle audit journal (JSONL)"
    )
    add_lifecycle_args(shis)
    shis.add_argument("--model", default=None,
                      help="only this model's events")

    srep = lsub.add_parser(
        "replay",
        help="feed the scenario's jobs through /v1/feedback semantics "
        "in submit order (prequential, deterministic)",
    )
    add_lifecycle_args(srep)
    srep.add_argument("--limit", type=int, default=None,
                      help="at most this many jobs (default: all)")
    srep.add_argument("--batch", type=int, default=256,
                      help="feedback records per batch")

    sub.add_parser("specs", help="print the Table 1 system specifications")

    systems = sub.add_parser(
        "systems",
        help="the registered system catalog (docs/SCENARIOS.md)",
    )
    ssub = systems.add_subparsers(dest="systems_command", required=True)
    slist = ssub.add_parser(
        "list",
        help="one line per system: profile, nodes, GPU inventory",
    )
    slist.add_argument("--json", action="store_true",
                       help="machine-readable catalog instead of the table")

    obs = sub.add_parser(
        "obs",
        help="observability tooling (docs/OBSERVABILITY.md)",
    )
    osub = obs.add_subparsers(dest="obs_command", required=True)
    osum = osub.add_parser(
        "summary",
        help="span tree, per-name aggregates, and critical path of a "
        "trace JSONL file",
    )
    osum.add_argument("trace", type=Path, help="trace JSONL file to summarize")
    osum.add_argument("--max-depth", type=int, default=6,
                      help="deepest span-tree level to print")
    osum.add_argument("--max-children", type=int, default=12,
                      help="children shown per span (slowest first)")

    pipe = sub.add_parser(
        "pipeline",
        help="cached, parallel experiment pipeline (see docs/PIPELINE.md)",
    )
    psub = pipe.add_subparsers(dest="pipeline_command", required=True)

    def add_cache_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", type=Path, default=None,
                       help="artifact cache root (default: $REPRO_CACHE_DIR "
                       "or ~/.cache/repro-pipeline)")

    prun = psub.add_parser("run", help="build dataset artifacts through the cache")
    add_scale_args(prun)
    add_cache_arg(prun)
    prun.add_argument("--seeds", type=int, nargs="+", default=None,
                      help="one shard per seed (default: just --seed)")
    prun.add_argument("--both-systems", action="store_true",
                      help="build emmy AND meggie shards")
    prun.add_argument("--workers", type=int, default=1,
                      help="process count for the shard fan-out")
    prun.add_argument("--manifest", type=Path, default=None,
                      help="also write the run manifest JSON here")
    prun.add_argument("--force", action="store_true",
                      help="recompute every stage even on cache hits")
    prun.add_argument("--stream", action="store_true",
                      help="bounded-memory streaming build (chunk, spill, "
                      "compact); byte-identical artifacts")
    prun.add_argument("--chunk-jobs", type=int, default=None,
                      help="jobs per streaming chunk (default 100000; "
                      "implies --stream)")

    pall = psub.add_parser(
        "run-all",
        help="regenerate every figure and report from cached artifacts",
    )
    add_scale_args(pall)
    add_cache_arg(pall)
    pall.add_argument("--out-dir", type=Path, required=True,
                      help="output directory for figures and reports")
    pall.add_argument("--workers", type=int, default=2)
    pall.add_argument("--repeats", type=int, default=3,
                      help="prediction repeats for figures/reports")
    pall.add_argument("--manifest", type=Path, default=None)

    pstat = psub.add_parser("status", help="list cached artifacts")
    add_cache_arg(pstat)

    pclean = psub.add_parser("clean", help="remove cached artifacts (targeted)")
    add_cache_arg(pclean)
    pclean.add_argument("--stage",
                        choices=("workload", "schedule", "telemetry", "dataset",
                                 "plan", "chunk", "model"),
                        default=None, help="only this stage's entries "
                        "(plan/chunk = streaming-mode artifacts, model = "
                        "the serving layer's trained predictors)")
    pclean.add_argument("--system", default=None, help="only this system's entries")
    pclean.add_argument("--seed", type=int, default=None, help="only this seed's entries")
    pclean.add_argument("--all", action="store_true",
                        help="required to wipe the whole cache (no filters)")
    pclean.add_argument("--orphans", action="store_true",
                        help="remove spill shards left by interrupted "
                        "streaming runs whose dataset already committed, "
                        "plus stale tmp staging dirs")

    inc = sub.add_parser(
        "incidents",
        help="auto-graded chaos incident benchmark (docs/INCIDENTS.md)",
    )
    isub = inc.add_subparsers(dest="incidents_command", required=True)

    ilist = isub.add_parser("list", help="show the registered scenario catalog")
    ilist.add_argument("--json", action="store_true",
                       help="machine-readable catalog instead of the table")

    irun = isub.add_parser(
        "run",
        help="run scenarios against a live served system, writing one "
        "incident bundle per scenario",
    )
    irun.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                      help="scenario names (see `incidents list`)")
    irun.add_argument("--all", action="store_true",
                      help="run every registered scenario")
    irun.add_argument("--out-dir", type=Path, required=True,
                      help="directory receiving one bundle dir per scenario")
    irun.add_argument("--cache-dir", type=Path, default=None,
                      help="scratch artifact cache shared across the run "
                      "(default: a private temp dir per scenario)")
    irun.add_argument("--detector", default="rules",
                      help="baseline detector to grade with afterwards "
                      "(empty string skips grading)")
    irun.add_argument("--scorecard", type=Path, default=None,
                      help="also write the grading scorecard JSON here")

    igrade = isub.add_parser(
        "grade",
        help="score detector answers against recorded incident bundles",
    )
    igrade.add_argument("bundles", nargs="+", type=Path, metavar="BUNDLE",
                        help="incident bundle directories from `incidents run`")
    igrade.add_argument("--answers", type=Path, default=None,
                        help="JSON file with a list of detector answers "
                        "(default: run the --detector baseline instead)")
    igrade.add_argument("--detector", default="rules",
                        help="baseline detector to answer with when no "
                        "--answers file is given")
    igrade.add_argument("--scorecard", type=Path, default=None,
                        help="write the scorecard JSON here")
    return parser


def _make_dataset(args: argparse.Namespace):
    from repro.telemetry import generate_dataset

    spec = ScenarioSpec.from_args(args)
    return generate_dataset(**spec.dataset_kwargs())


def _cmd_specs() -> int:
    from repro.analysis.report import format_table
    from repro.cluster import EMMY, MEGGIE
    from repro.frames import Table

    fields = (
        "num_nodes", "node_tdp_watts", "processor", "microarchitecture",
        "process_node_nm", "memory_type", "interconnect", "topology",
        "batch_system", "linpack_tflops", "linpack_power_kw",
    )
    table = Table(
        {
            "field": list(fields),
            "emmy": [str(getattr(EMMY, f)) for f in fields],
            "meggie": [str(getattr(MEGGIE, f)) for f in fields],
        }
    )
    print(format_table(table))
    return 0


def _cmd_systems(args: argparse.Namespace) -> int:
    if args.systems_command == "list":
        return _cmd_systems_list(args)
    raise AssertionError(f"unhandled systems command {args.systems_command!r}")


def _cmd_systems_list(args: argparse.Namespace) -> int:
    from repro.cluster import get_spec, known_systems

    specs = [get_spec(name) for name in known_systems()]
    if args.json:
        print(json.dumps(
            [
                {
                    "system": s.name,
                    "profile": s.workload_profile,
                    "nodes": s.num_nodes,
                    "node_tdp_watts": s.node_tdp_watts,
                    "gpu_nodes": s.gpu_node_count,
                    "gpus_per_node": s.gpus_per_node,
                    "total_gpus": s.total_gpus,
                    "gpu_model": s.gpu_model,
                    "gpu_tdp_watts": s.gpu_tdp_watts,
                }
                for s in specs
            ],
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"{'system':<8} {'profile':<8} {'nodes':>6} {'gpu nodes':>10} "
          f"{'gpus/node':>10} {'total gpus':>11}  gpu model")
    for s in specs:
        gpu_model = s.gpu_model or "-"
        print(f"{s.name:<8} {s.workload_profile:<8} {s.num_nodes:>6} "
              f"{s.gpu_node_count:>10} {s.gpus_per_node:>10} "
              f"{s.total_gpus:>11}  {gpu_model}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.telemetry.schema import save_jobs_csv, save_jobs_npz

    dataset = _make_dataset(args)
    out: Path = args.out
    if out.suffix == ".csv":
        save_jobs_csv(dataset.jobs, out)
    elif out.suffix == ".npz":
        save_jobs_npz(dataset.jobs, out)
    else:
        print(f"error: unsupported output suffix {out.suffix!r} (use .csv or .npz)",
              file=sys.stderr)
        return 2
    print(f"wrote {dataset.num_jobs} jobs ({dataset.spec.name}) to {out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro import analysis

    ds = _make_dataset(args)
    util = analysis.system_utilization(ds)
    power = analysis.power_utilization(ds)
    dist = analysis.per_node_power_distribution(ds)
    corr = analysis.feature_power_correlations(ds)
    conc = analysis.concentration_analysis(ds)
    var = analysis.user_power_variability(ds)
    clus = analysis.cluster_variability(ds, "nodes")

    print(f"system: {ds.spec.name}  jobs: {ds.num_jobs}  traces: {len(ds.traces)}")
    print(f"system utilization (Fig 1): mean {util.mean:.1%}")
    print(f"power utilization (Fig 2):  mean {power.mean:.1%}  "
          f"(stranded {power.stranded_fraction:.1%})")
    print(f"per-node power (Fig 3): {dist.mean_watts:.0f} W "
          f"({dist.mean_tdp_fraction:.0%} of TDP), sigma/mean {dist.std_over_mean:.0%}")
    print("Table 2 Spearman: "
          f"length {corr['job_length'].statistic:.2f} "
          f"(p={corr['job_length'].pvalue:.2g}), "
          f"size {corr['job_size'].statistic:.2f} "
          f"(p={corr['job_size'].pvalue:.2g})")
    print(f"user concentration (Fig 11): top 20% -> "
          f"{conc.node_hours_share:.0%} node-hours, {conc.energy_share:.0%} energy, "
          f"overlap {conc.top_set_overlap:.0%}")
    print(f"per-user power CoV (Fig 12): mean {var.mean_cov:.0%}")
    print(f"(user, nodes) clusters with sigma<10% (Fig 13): "
          f"{clus.frac_below_10pct:.1%} of {clus.n_clusters}")
    if ds.traces:
        temporal = analysis.temporal_summary(ds)
        spatial = analysis.spatial_summary(ds)
        print(f"temporal (Fig 7): mean overshoot {temporal.mean_peak_overshoot:.0%}, "
              f"mean time>10% {temporal.mean_frac_time_above_10pct:.0%}")
        print(f"spatial (Fig 9): mean spread {spatial.mean_spread_watts:.0f} W "
              f"({spatial.mean_spread_fraction:.0%} of per-node power)")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.analysis import run_prediction

    ds = _make_dataset(args)
    results = run_prediction(ds, n_repeats=args.repeats, seed=args.seed)
    print(f"system: {ds.spec.name}  jobs: {ds.num_jobs}  repeats: {args.repeats}")
    for name, result in results.items():
        s = result.summary
        print(f"{name:5s}  mean {s.mean:6.1%}  <5% err: {s.frac_below_5pct:5.1%}  "
              f"<10% err: {s.frac_below_10pct:5.1%}  (n={s.n})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    if getattr(args, "serve_command", None):
        return _cmd_serve_lifecycle(args)

    from repro.serve import create_server

    if args.trace_file is not None:
        from repro.obs.tracing import configure_tracing

        configure_tracing(args.trace_file)
        print(f"tracing spans to {args.trace_file}")
    injector = nullcontext()
    if args.fault_plan is not None:
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.load(args.fault_plan)
        injector = FaultInjector(plan)
        print(f"armed fault plan {args.fault_plan} "
              f"(seed {plan.seed}, points: {', '.join(plan.points)})")
    spec = ScenarioSpec.from_args(args)
    print(f"scenario {spec.label}: training/loading {', '.join(args.warm)} …")
    if args.workers > 1:
        from repro.serve.forking import ForkingServer

        with injector, ForkingServer(
            spec, workers=args.workers, host=args.host, port=args.port,
            cache_dir=args.cache_dir, max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms, warm=tuple(args.warm),
            lifecycle=args.lifecycle, lifecycle_dir=args.lifecycle_dir,
        ) as pool:
            print(f"serving on http://{pool.address} with {args.workers} "
                  f"workers  (POST /predict, /predict/bulk; Ctrl-C stops)")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                # Repeat Ctrl-C must not abort the pool teardown mid-way
                # (workers would leak); ignore SIGINT from here on.
                import signal

                signal.signal(signal.SIGINT, signal.SIG_IGN)
                print("\nshutting down pool")
        return 0
    with injector:
        server = create_server(
            spec, host=args.host, port=args.port, cache_dir=args.cache_dir,
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            lifecycle=args.lifecycle, lifecycle_dir=args.lifecycle_dir,
        )
        for model, state in server.service.warm(tuple(args.warm)).items():
            if state != "ok":
                # Serve anyway: requests degrade to the mean baseline
                # until the registry recovers (docs/FAULTS.md).
                print(f"warning: warming {model} failed ({state}); "
                      "serving degraded")
        print(f"serving on http://{server.address}  "
              f"(POST /predict, GET /models, GET /healthz; Ctrl-C stops)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            server.close()
    return 0


def _cmd_serve_lifecycle(args: argparse.Namespace) -> int:
    """``serve promote|rollback|history|replay`` — offline lifecycle admin.

    These verbs operate on the shared on-disk journal + artifact cache,
    so a running server pool (same --cache-dir) picks up promotes and
    rollbacks within its journal poll interval; no restart needed.
    """
    import json as _json
    import os

    from repro.serve.lifecycle import ModelLifecycle, replay_feedback
    from repro.serve.registry import ModelRegistry

    spec = ScenarioSpec.from_args(args)
    registry = ModelRegistry(cache_dir=args.cache_dir)
    manager = ModelLifecycle(
        spec, registry=registry, lifecycle_dir=args.lifecycle_dir
    )
    who = args.who or os.environ.get("USER", "cli")
    verb = args.serve_command
    from repro.errors import ServeError

    try:
        if verb == "promote":
            event = manager.promote(
                args.model, args.version, who=who, why=args.why
            )
            print(f"promoted {args.model} "
                  f"v{event['from_version']} -> v{event['version']} "
                  f"(scenario {spec.label})")
        elif verb == "rollback":
            event = manager.rollback(
                args.model, to_version=args.to_version, who=who, why=args.why
            )
            print(f"rolled back {args.model} "
                  f"v{event['from_version']} -> v{event['version']} "
                  f"(scenario {spec.label})")
        elif verb == "history":
            events = manager.history(model=args.model)
            for event in events:
                print(_json.dumps(event, sort_keys=True))
            if not events:
                print(f"(no lifecycle events for scenario {spec.label})",
                      file=sys.stderr)
        elif verb == "replay":
            from repro.pipeline import build_dataset

            ds = build_dataset(
                **spec.dataset_kwargs(), cache_dir=registry.cache.root
            )
            result = replay_feedback(
                manager, ds.jobs, limit=args.limit, batch=args.batch
            )
            print(f"replayed {result['replayed']} jobs "
                  f"(learner has seen {result['learner_jobs']}; "
                  f"drift events: {len(result['drift_events'])})")
        else:  # pragma: no cover - argparse restricts the choices
            raise ServeError(f"unknown serve verb {verb!r}")
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz import render_all_figures

    datasets = {args.system: _make_dataset(args)}
    if args.both_systems:
        other = "meggie" if args.system == "emmy" else "emmy"
        args.system = other
        datasets[other] = _make_dataset(args)
    paths = render_all_figures(datasets, args.out_dir, n_repeats=args.repeats)
    print(f"wrote {len(paths)} figures to {args.out_dir}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import full_report

    ds = _make_dataset(args)
    text = full_report(
        ds, include_prediction=not args.no_prediction, n_repeats=args.repeats
    )
    args.out.write_text(text)
    print(f"wrote report for {ds.spec.name} ({ds.num_jobs} jobs) to {args.out}")
    return 0


def _pipeline_shards(args: argparse.Namespace) -> list:
    from repro.pipeline import ShardConfig

    base = ScenarioSpec.from_args(args)
    systems = [base.system]
    if getattr(args, "both_systems", False):
        systems = ["emmy", "meggie"]
    seeds = getattr(args, "seeds", None) or [base.seed]
    return [
        ShardConfig.from_scenario(base.replace(system=system, seed=seed))
        for system in systems
        for seed in seeds
    ]


def _print_manifest(manifest) -> None:
    for shard in manifest.shards:
        parts = []
        for t in shard.stages:
            if t.cached:
                tag = "hit"
            elif t.seconds > 0:
                tag = f"{t.items_per_second:,.0f} jobs/s"
                if t.n_traces:
                    tag += f", {t.traces_per_second:,.0f} traces/s"
            else:
                tag = "built"
            parts.append(f"{t.stage} {t.seconds:.2f}s ({tag})")
        rate = "" if shard.fully_cached else f"  [{shard.jobs_per_second:,.0f} jobs/s]"
        print(f"  {shard.config.label:16s} {shard.n_jobs:6d} jobs  "
              + "  ".join(parts) + rate)
    hit = manifest.stages_cached
    print(f"total {manifest.total_seconds:.2f}s, {manifest.workers} worker(s), "
          f"{hit}/{manifest.stages_total} stage(s) from cache")


def _cmd_pipeline_run(args: argparse.Namespace) -> int:
    from repro.pipeline import DEFAULT_CHUNK_JOBS, run_pipeline

    stream = args.stream or args.chunk_jobs is not None
    manifest = run_pipeline(
        _pipeline_shards(args), cache_dir=args.cache_dir,
        workers=args.workers, manifest_path=args.manifest, force=args.force,
        stream=stream,
        chunk_jobs=args.chunk_jobs or DEFAULT_CHUNK_JOBS,
    )
    _print_manifest(manifest)
    if manifest.peak_rss_bytes:
        print(f"peak RSS: {manifest.peak_rss_bytes / 1e6:,.0f} MB")
    print(f"manifest: {Path(manifest.cache_dir) / 'manifest-latest.json'}")
    return 0


def _cmd_pipeline_run_all(args: argparse.Namespace) -> int:
    from repro.analysis import full_report
    from repro.pipeline import build_dataset, run_pipeline
    from repro.viz import render_all_figures

    args.both_systems = True
    args.seeds = None
    manifest = run_pipeline(
        _pipeline_shards(args), cache_dir=args.cache_dir,
        workers=args.workers, manifest_path=args.manifest,
    )
    _print_manifest(manifest)

    out_dir: Path = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    base = ScenarioSpec.from_args(args)
    datasets = {
        shard.config.system: build_dataset(
            **base.replace(system=shard.config.system,
                           seed=shard.config.seed).dataset_kwargs(),
            cache_dir=args.cache_dir,
        )
        for shard in manifest.shards
    }
    figures = render_all_figures(datasets, out_dir / "figures", n_repeats=args.repeats)
    print(f"wrote {len(figures)} figures to {out_dir / 'figures'}")
    for system, ds in datasets.items():
        report_path = out_dir / f"report_{system}.md"
        report_path.write_text(full_report(ds, n_repeats=args.repeats))
        print(f"wrote {report_path}")
    return 0


def _cmd_pipeline_status(args: argparse.Namespace) -> int:
    from repro.pipeline import CHUNK_STAGE, STAGES, ArtifactCache, default_cache_dir

    cache = ArtifactCache(args.cache_dir or default_cache_dir())
    entries = cache.entries()
    print(f"cache: {cache.root}")
    if not entries:
        print("  (empty)")
        return 0
    # Core pipeline stages in graph order, then extra stages (e.g. the
    # serving layer's trained-model artifacts) alphabetically.
    extra = sorted({e.stage for e in entries} - set(STAGES))
    for stage in (*STAGES, *extra):
        stage_entries = [e for e in entries if e.stage == stage]
        if not stage_entries:
            continue
        total_mb = sum(e.size_bytes for e in stage_entries) / 1e6
        print(f"{stage}: {len(stage_entries)} entries, {total_mb:.1f} MB")
        if stage == CHUNK_STAGE:
            _print_chunk_groups(cache, stage_entries)
            continue
        for e in stage_entries:
            if e.damaged:
                print(f"  {e.key[:12]}…  DAMAGED (unreadable meta; "
                      f"`pipeline clean --stage {e.stage}` removes it)")
                continue
            label = e.meta.get("label", "?")
            system = (e.meta.get("system")
                      or e.meta.get("config", {}).get("system", "?"))
            n = e.meta.get("n_items", e.meta.get("n_jobs", "?"))
            secs = e.meta.get("seconds")
            rate = ""
            if secs and isinstance(n, (int, float)):
                rate = f"  {n / secs:,.0f} items/s"
            print(f"  {e.key[:12]}…  {label:16s} [{system}] {n} items  "
                  f"{e.size_bytes / 1e6:.1f} MB{rate}")
    print(f"total: {cache.size_bytes() / 1e6:.1f} MB")
    return 0


def _print_chunk_groups(cache, stage_entries) -> None:
    """Spill shards grouped per streaming build: counts and on-disk bytes."""
    groups: dict[str, list] = {}
    for e in stage_entries:
        groups.setdefault(e.meta.get("dataset_key", "?"), []).append(e)
    for dataset_key, group in sorted(groups.items()):
        label = next(
            (e.meta.get("label") for e in group if e.meta.get("label")), "?"
        )
        bytes_mb = sum(e.size_bytes for e in group) / 1e6
        n_jobs = sum(e.meta.get("n_items", 0) for e in group)
        if dataset_key != "?" and cache.has("dataset", dataset_key):
            state = "orphaned (dataset committed; `pipeline clean --orphans`)"
        else:
            state = "resumable (dataset not committed yet)"
        print(f"  {label:16s} {len(group)} shard(s), {n_jobs} jobs, "
              f"{bytes_mb:.1f} MB — {state}")


def _cmd_pipeline_clean(args: argparse.Namespace) -> int:
    from repro.pipeline import ArtifactCache, default_cache_dir

    targeted = args.stage or args.system or args.seed is not None
    if not targeted and not args.all and not args.orphans:
        print("error: pass --stage/--system/--seed to target entries, "
              "--orphans for leftover spill shards, or --all to wipe "
              "the cache", file=sys.stderr)
        return 2
    cache = ArtifactCache(args.cache_dir or default_cache_dir())
    removed = 0
    if args.orphans:
        removed += cache.remove_orphan_shards()
    if targeted or args.all:
        removed += cache.remove(stage=args.stage, system=args.system, seed=args.seed)
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.root}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    if args.pipeline_command == "run":
        return _cmd_pipeline_run(args)
    if args.pipeline_command == "run-all":
        return _cmd_pipeline_run_all(args)
    if args.pipeline_command == "status":
        return _cmd_pipeline_status(args)
    if args.pipeline_command == "clean":
        return _cmd_pipeline_clean(args)
    raise AssertionError(f"unhandled pipeline command {args.pipeline_command!r}")


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.summary import summarize_trace

    if args.obs_command == "summary":
        summary = summarize_trace(args.trace)
        print(
            summary.render(
                max_depth=args.max_depth, max_children=args.max_children
            )
        )
        return 0
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_incidents(args: argparse.Namespace) -> int:
    if args.incidents_command == "list":
        return _cmd_incidents_list(args)
    if args.incidents_command == "run":
        return _cmd_incidents_run(args)
    if args.incidents_command == "grade":
        return _cmd_incidents_grade(args)
    raise AssertionError(
        f"unhandled incidents command {args.incidents_command!r}"
    )


def _cmd_incidents_list(args: argparse.Namespace) -> int:
    from repro.incidents import SCENARIOS

    if args.json:
        print(json.dumps(
            [s.to_dict() for s in SCENARIOS.values()], indent=2, sort_keys=True
        ))
        return 0
    print(f"{'scenario':<24} {'kind':<9} {'faulted points'}")
    for s in SCENARIOS.values():
        points = ", ".join(s.fault_points) or "-"
        print(f"{s.name:<24} {s.kind:<9} {points}")
        print(f"{'':<24} {'':<9} {s.description}")
    return 0


def _resolve_incident_names(args: argparse.Namespace) -> list[str]:
    from repro.incidents import get_scenario, scenario_names

    if args.all:
        if args.scenarios:
            raise IncidentError("pass scenario names or --all, not both")
        return list(scenario_names())
    if not args.scenarios:
        raise IncidentError("pass at least one scenario name, or --all")
    for name in args.scenarios:
        get_scenario(name)  # fail loudly before running anything
    return list(args.scenarios)


def _cmd_incidents_run(args: argparse.Namespace) -> int:
    from repro.incidents import run_scenario

    names = _resolve_incident_names(args)
    bundles = []
    for name in names:
        bundle = run_scenario(
            name, args.out_dir, cache_dir=args.cache_dir, verbose=True
        )
        bundles.append(bundle)
    print(f"wrote {len(bundles)} bundle(s) under {args.out_dir}")
    if not args.detector:
        return 0
    return _grade_bundles(bundles, args.detector, None, args.scorecard)


def _cmd_incidents_grade(args: argparse.Namespace) -> int:
    from repro.incidents import IncidentBundle

    bundles = [IncidentBundle.load(path) for path in args.bundles]
    return _grade_bundles(bundles, args.detector, args.answers, args.scorecard)


def _grade_bundles(bundles, detector_name, answers_path, scorecard_path) -> int:
    from repro.incidents import (
        DetectorAnswer, Scorecard, get_detector, grade_answer,
    )

    if answers_path is not None:
        raw = json.loads(Path(answers_path).read_text())
        if not isinstance(raw, list):
            raise IncidentError("answers file must hold a JSON list")
        answers = {a.scenario: a for a in map(DetectorAnswer.from_dict, raw)}
        detector_label = next(iter(answers.values())).detector if answers else "answers"

        def answer_for(bundle):
            answer = answers.get(bundle.scenario_name)
            if answer is None:
                raise IncidentError(
                    f"answers file has no entry for {bundle.scenario_name!r}"
                )
            return answer
    else:
        detector = get_detector(detector_name)
        detector_label = detector.name
        answer_for = detector.analyze

    card = Scorecard(detector=detector_label)
    for bundle in bundles:
        card.add(grade_answer(bundle, answer_for(bundle)))
    print(card.summary())
    if scorecard_path is not None:
        Path(scorecard_path).write_text(
            json.dumps(card.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"scorecard written to {scorecard_path}")
    return 0 if card.passed else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # $REPRO_TRACE_FILE traces any subcommand without touching its flags
    # (the pipeline tools and the chaos harness use this).
    trace_env = os.environ.get("REPRO_TRACE_FILE")
    if trace_env:
        from repro.obs.tracing import active_writer, configure_tracing

        if active_writer() is None:
            configure_tracing(trace_env)
    try:
        return _dispatch(args)
    except (IncidentError, ObsError, PipelineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. `... status | head`); exit quietly the
        # way a well-behaved unix tool does.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


def _dispatch(args) -> int:
    if args.command == "specs":
        return _cmd_specs()
    if args.command == "systems":
        return _cmd_systems(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "pipeline":
        return _cmd_pipeline(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "incidents":
        return _cmd_incidents(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
