"""Deterministic random-number stream management.

Every stochastic subsystem (workload generation, node variability,
sampling noise, ML splits) draws from its own named child stream spawned
from a single root seed, so that

* the full pipeline is reproducible from one integer seed, and
* changing how many numbers one subsystem consumes does not perturb the
  streams of the others.

This mirrors the independent-stream discipline used in parallel Monte
Carlo codes (one ``SeedSequence`` child per rank).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["RngFactory", "spawn_rngs"]


class RngFactory:
    """Spawns independent, named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed. Two factories built from the same seed hand out
        identical streams for identical names, regardless of the order in
        which the names are requested.

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> a = f.get("workload")
    >>> b = f.get("variability")
    >>> a is not b
    True
    >>> f2 = RngFactory(1234)
    >>> float(f2.get("workload").random()) == float(RngFactory(1234).get("workload").random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for ``name`` (stable across call order)."""
        if not name:
            raise ValueError("stream name must be non-empty")
        # Hash the name into the entropy pool so equal names map to equal
        # streams independent of request order.
        token = [ord(c) for c in name]
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=tuple(token))
        return np.random.default_rng(seq)

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, e.g. one per simulated system."""
        rng = self.get(name)
        return RngFactory(int(rng.integers(0, 2**31 - 1)))


def spawn_rngs(seed: int, n: int) -> Iterator[np.random.Generator]:
    """Yield ``n`` independent generators from one root seed."""
    if n < 0:
        raise ValueError("n must be >= 0")
    root = np.random.SeedSequence(seed)
    for child in root.spawn(n):
        yield np.random.default_rng(child)
