"""Renderers that turn analysis results into the paper's figures.

One function per figure; :func:`render_all_figures` runs every analysis
on one or two datasets and writes the full SVG set to a directory (the
CLI's ``figures`` subcommand).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

from repro.analysis import (
    app_power_comparison,
    cluster_variability,
    concentration_analysis,
    per_node_power_distribution,
    power_utilization,
    run_prediction,
    spatial_summary,
    split_analysis,
    system_utilization,
    temporal_summary,
    user_power_variability,
)
from repro.errors import AnalysisError
from repro.telemetry.dataset import JobDataset
from repro.viz.charts import Chart, pie_chart

__all__ = ["render_all_figures"]


def _utilization_chart(summary, title: str, ylabel: str) -> Chart:
    chart = Chart(title=title, xlabel="day", ylabel=ylabel)
    days = summary.daily_means()
    x = np.arange(len(days), dtype=float)
    if len(x) < 2:
        x = np.asarray([0.0, 1.0])
        days = np.repeat(days, 2)
    chart.area(x, days, label="used", color="#2e8540")
    chart.line(x, np.ones_like(days), label="provisioned", color="#c0392b")
    chart.ylim(0.0, 1.05)
    return chart


def fig1(dataset: JobDataset) -> str:
    util = system_utilization(dataset)
    return _utilization_chart(
        util, f"Fig 1 — system utilization ({dataset.spec.name})",
        "fraction of nodes active",
    ).render()


def fig2(dataset: JobDataset) -> str:
    power = power_utilization(dataset)
    return _utilization_chart(
        power, f"Fig 2 — power utilization ({dataset.spec.name})",
        "fraction of provisioned power",
    ).render()


def fig3(dataset: JobDataset) -> str:
    dist = per_node_power_distribution(dataset)
    chart = Chart(
        title=f"Fig 3 — per-node power PDF ({dataset.spec.name})",
        xlabel="per-node power (W)", ylabel="density",
    )
    chart.histogram(dist.pdf.edges, dist.pdf.density, label=dataset.spec.name)
    chart.vline(dist.mean_watts, label=f"mean {dist.mean_watts:.0f} W")
    chart.vline(dataset.spec.node_tdp_watts, color="#c0392b",
                label=f"TDP {dataset.spec.node_tdp_watts:.0f} W")
    return chart.render()


def fig4(datasets: Mapping[str, JobDataset]) -> str:
    comp = app_power_comparison(datasets)
    chart = Chart(
        title="Fig 4 — key applications across systems",
        xlabel="application", ylabel="mean per-node power (W)",
    )
    chart.grouped_bars(
        list(comp.apps),
        {system: comp.mean_watts[:, j] for j, system in enumerate(comp.systems)},
    )
    return chart.render()


def fig5(dataset: JobDataset) -> str:
    length = split_analysis(dataset, "length")
    size = split_analysis(dataset, "size")
    chart = Chart(
        title=f"Fig 5 — power by job length/size ({dataset.spec.name})",
        xlabel="median split", ylabel="per-node power (fraction of TDP)",
    )
    chart.grouped_bars(
        ["short/long", "small/large"],
        {
            "low half": [length.low.mean_tdp_fraction, size.low.mean_tdp_fraction],
            "high half": [length.high.mean_tdp_fraction, size.high.mean_tdp_fraction],
        },
        errors={
            "low half": [length.low.std_tdp_fraction, size.low.std_tdp_fraction],
            "high half": [length.high.std_tdp_fraction, size.high.std_tdp_fraction],
        },
    )
    return chart.render()


def fig7(dataset: JobDataset) -> str:
    t = temporal_summary(dataset)
    chart = Chart(
        title=f"Fig 7 — temporal variance CDFs ({dataset.spec.name})",
        xlabel="metric value", ylabel="fraction of jobs",
    )
    chart.cdf(t.overshoot_cdf.values, label="peak overshoot")
    chart.cdf(t.frac_time_cdf.values, label="runtime >10% above mean")
    chart.vline(0.10, label="10% threshold")
    chart.ylim(0.0, 1.0)
    return chart.render()


def fig9(dataset: JobDataset) -> str:
    s = spatial_summary(dataset)
    chart = Chart(
        title=f"Fig 9 — spatial spread CDFs ({dataset.spec.name})",
        xlabel="avg spatial spread (fraction of per-node power)",
        ylabel="fraction of jobs",
    )
    chart.cdf(s.spread_fraction_cdf.values, label="spread / power")
    chart.cdf(s.frac_time_cdf.values, label="runtime above avg spread")
    chart.ylim(0.0, 1.0)
    return chart.render()


def fig10(dataset: JobDataset) -> str:
    s = spatial_summary(dataset)
    chart = Chart(
        title=f"Fig 10 — node-energy imbalance ({dataset.spec.name})",
        xlabel="(max-min)/min node energy", ylabel="density",
    )
    chart.histogram(s.energy_imbalance_pdf.edges, s.energy_imbalance_pdf.density)
    chart.vline(0.15, label="15% difference")
    return chart.render()


def fig11(dataset: JobDataset) -> str:
    c = concentration_analysis(dataset)
    chart = Chart(
        title=f"Fig 11 — user concentration ({dataset.spec.name})",
        xlabel="fraction of users (heaviest first)",
        ylabel="cumulative share",
    )
    chart.line(*c.node_hours_curve, label="node-hours")
    chart.line(*c.energy_curve, label="energy")
    chart.vline(0.2, label="top 20%")
    chart.ylim(0.0, 1.0)
    return chart.render()


def fig12(dataset: JobDataset) -> str:
    v = user_power_variability(dataset)
    chart = Chart(
        title=f"Fig 12 — per-user power variability ({dataset.spec.name})",
        xlabel="std/mean of a user's per-node power", ylabel="fraction of users",
    )
    chart.cdf(v.cov_cdf.values, label=f"mean {v.mean_cov:.0%}")
    chart.ylim(0.0, 1.0)
    return chart.render()


def fig13(dataset: JobDataset, cluster_by: str = "nodes") -> str:
    c = cluster_variability(dataset, cluster_by)
    return pie_chart(
        list(c.bucket_labels),
        c.bucket_fractions,
        title=f"Fig 13 — (user, {cluster_by}) cluster σ ({dataset.spec.name})",
    )


def fig14(dataset: JobDataset, n_repeats: int = 3) -> str:
    results = run_prediction(dataset, n_repeats=n_repeats)
    chart = Chart(
        title=f"Fig 14 — prediction error CDFs ({dataset.spec.name})",
        xlabel="absolute prediction error", ylabel="fraction of predictions",
    )
    for name, result in results.items():
        chart.cdf(np.clip(result.errors, 0, 0.5), label=name)
    chart.vline(0.10, label="10% error")
    chart.ylim(0.0, 1.0)
    return chart.render()


def fig15(dataset: JobDataset, n_repeats: int = 3) -> str:
    from repro.analysis.prediction import default_models

    results = run_prediction(
        dataset, models={"BDT": default_models()["BDT"]}, n_repeats=n_repeats
    )
    _, mean_errors = results["BDT"].per_user_mean_error()
    chart = Chart(
        title=f"Fig 15 — per-user BDT error ({dataset.spec.name})",
        xlabel="average absolute prediction error", ylabel="fraction of users",
    )
    chart.cdf(np.clip(mean_errors, 0, 0.5), label="BDT per-user mean")
    chart.vline(0.05, label="5% error")
    chart.ylim(0.0, 1.0)
    return chart.render()


def render_all_figures(
    datasets: Mapping[str, JobDataset], out_dir: str | Path, n_repeats: int = 3
) -> list[Path]:
    """Render every figure for the given dataset(s) into ``out_dir``.

    Single-system figures are rendered per dataset; Fig 4 requires at
    least two systems that each ran every key app, and is skipped
    otherwise (tiny scaled-down workloads may miss an app).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def save(name: str, svg: str) -> None:
        path = out_dir / f"{name}.svg"
        path.write_text(svg)
        written.append(path)

    for system, ds in datasets.items():
        save(f"fig01_utilization_{system}", fig1(ds))
        save(f"fig02_power_{system}", fig2(ds))
        save(f"fig03_pernode_pdf_{system}", fig3(ds))
        save(f"fig05_splits_{system}", fig5(ds))
        if ds.traces:
            save(f"fig07_temporal_{system}", fig7(ds))
            save(f"fig09_spatial_{system}", fig9(ds))
            save(f"fig10_imbalance_{system}", fig10(ds))
        save(f"fig11_concentration_{system}", fig11(ds))
        save(f"fig12_user_variability_{system}", fig12(ds))
        save(f"fig13_clusters_nodes_{system}", fig13(ds, "nodes"))
        save(f"fig13_clusters_walltime_{system}", fig13(ds, "walltime"))
        save(f"fig14_prediction_{system}", fig14(ds, n_repeats))
        save(f"fig15_user_error_{system}", fig15(ds, n_repeats))
    if len(datasets) >= 2:
        try:
            save("fig04_apps_cross_system", fig4(datasets))
        except AnalysisError:
            pass
    return written
