"""Chart composition on top of the SVG builder.

One :class:`Chart` = one cartesian plot area with axes, ticks, labels
and a legend. Mark types cover everything the paper's figures need:
lines, CDF steps, filled areas, histogram bars, grouped bars with error
whiskers, and donut/pie charts (Fig 13).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.viz.scale import LinearScale
from repro.viz.svg import SvgDocument

__all__ = ["Chart", "PALETTE", "pie_chart"]

# Colorblind-safe categorical palette (Okabe–Ito).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00",
           "#56B4E9", "#F0E442", "#000000")

_MARGIN = dict(left=62.0, right=16.0, top=34.0, bottom=46.0)


def _tick_label(value: float) -> str:
    """Compact tick text: integers plain, small floats trimmed."""
    if abs(value) >= 1e4 or (0 < abs(value) < 1e-3):
        return f"{value:.1e}"
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.4g}"


class Chart:
    """A single cartesian plot area.

    Parameters
    ----------
    title, xlabel, ylabel:
        Text furniture.
    width, height:
        Outer SVG dimensions in pixels.
    """

    def __init__(
        self,
        title: str = "",
        xlabel: str = "",
        ylabel: str = "",
        width: float = 520.0,
        height: float = 320.0,
    ) -> None:
        self.title, self.xlabel, self.ylabel = title, xlabel, ylabel
        self.doc = SvgDocument(width, height)
        self._series: list[dict] = []
        self._legend: list[tuple[str, str]] = []
        self._xlim: tuple[float, float] | None = None
        self._ylim: tuple[float, float] | None = None

    # -- data -------------------------------------------------------------

    def _add(self, kind: str, **payload) -> None:
        self._series.append({"kind": kind, **payload})
        label = payload.get("label")
        if label:
            self._legend.append((label, payload["color"]))

    def line(self, x, y, label: str | None = None, color: str | None = None,
             width: float = 1.8, dash: str | None = None) -> None:
        x, y = np.asarray(x, float), np.asarray(y, float)
        if x.shape != y.shape or x.size < 2:
            raise ValueError("line needs matching x/y with >= 2 points")
        self._add("line", x=x, y=y, label=label, color=self._color(color),
                  width=width, dash=dash)

    def cdf(self, sample, label: str | None = None, color: str | None = None) -> None:
        """Empirical CDF as a step curve."""
        xs = np.sort(np.asarray(sample, float).ravel())
        if xs.size == 0:
            raise ValueError("cdf needs a non-empty sample")
        ys = np.arange(1, xs.size + 1) / xs.size
        # Prepend the (x0, 0) corner so the step starts on the axis.
        self._add("step", x=np.concatenate(([xs[0]], xs)),
                  y=np.concatenate(([0.0], ys)), label=label,
                  color=self._color(color), width=1.8, dash=None)

    def area(self, x, y, label: str | None = None, color: str | None = None,
             opacity: float = 0.45) -> None:
        """Filled area from y=0 (Figs 1–2's used/unused bands)."""
        x, y = np.asarray(x, float), np.asarray(y, float)
        self._add("area", x=x, y=y, label=label, color=self._color(color),
                  opacity=opacity)

    def histogram(self, edges, density, label: str | None = None,
                  color: str | None = None) -> None:
        edges = np.asarray(edges, float)
        density = np.asarray(density, float)
        if len(edges) != len(density) + 1:
            raise ValueError("edges must have len(density)+1 entries")
        self._add("hist", edges=edges, density=density, label=label,
                  color=self._color(color))

    def grouped_bars(self, categories: Sequence[str], groups: dict[str, Sequence[float]],
                     errors: dict[str, Sequence[float]] | None = None) -> None:
        """One bar per (category, group); optional symmetric error whiskers."""
        if not categories or not groups:
            raise ValueError("grouped_bars needs categories and groups")
        for values in groups.values():
            if len(values) != len(categories):
                raise ValueError("every group needs one value per category")
        colors = {name: self._color(None) for name in groups}
        for name, color in colors.items():
            self._legend.append((name, color))
        self._add("bars", categories=list(categories),
                  groups={k: np.asarray(v, float) for k, v in groups.items()},
                  errors={k: np.asarray(v, float) for k, v in (errors or {}).items()},
                  colors=colors, label=None, color="#000")

    def vline(self, x: float, color: str = "#888", dash: str = "4 3",
              label: str | None = None) -> None:
        self._add("vline", x=float(x), color=color, dash=dash, label=label)

    def xlim(self, lo: float, hi: float) -> None:
        self._xlim = (float(lo), float(hi))

    def ylim(self, lo: float, hi: float) -> None:
        self._ylim = (float(lo), float(hi))

    def _color(self, color: str | None) -> str:
        if color:
            return color
        used = sum(1 for s in self._series if s.get("color")) + len(self._legend)
        return PALETTE[used % len(PALETTE)]

    # -- rendering --------------------------------------------------------

    def _extent(self) -> tuple[float, float, float, float]:
        xs, ys = [], []
        for s in self._series:
            if s["kind"] in ("line", "step", "area"):
                xs += [s["x"].min(), s["x"].max()]
                ys += [s["y"].min(), s["y"].max()]
            elif s["kind"] == "hist":
                xs += [s["edges"].min(), s["edges"].max()]
                ys += [0.0, s["density"].max()]
            elif s["kind"] == "bars":
                xs += [0.0, float(len(s["categories"]))]
                for name, values in s["groups"].items():
                    err = s["errors"].get(name, np.zeros_like(values))
                    ys += [0.0, float((values + err).max())]
            elif s["kind"] == "vline":
                xs.append(s["x"])
        if not xs:
            raise ValueError("chart has no data")
        x_lo, x_hi = (min(xs), max(xs)) if self._xlim is None else self._xlim
        y_lo, y_hi = (min(ys), max(ys)) if self._ylim is None else self._ylim
        if y_lo > 0 and self._ylim is None:
            y_lo = 0.0
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        doc = self.doc
        x_lo, x_hi, y_lo, y_hi = self._extent()
        px_lo, px_hi = _MARGIN["left"], doc.width - _MARGIN["right"]
        py_lo, py_hi = doc.height - _MARGIN["bottom"], _MARGIN["top"]
        sx = LinearScale(x_lo, x_hi, px_lo, px_hi)
        sy = LinearScale(y_lo, y_hi, py_lo, py_hi)

        doc.rect(0, 0, doc.width, doc.height, fill="#ffffff")
        bars_mode = any(s["kind"] == "bars" for s in self._series)

        # Grid + ticks.
        for tick in sy.ticks():
            doc.line(px_lo, sy(tick), px_hi, sy(tick), stroke="#e6e6e6")
            doc.text(px_lo - 6, sy(tick) + 3.5, _tick_label(tick), anchor="end", size=10)
        if not bars_mode:
            for tick in sx.ticks():
                doc.line(sx(tick), py_lo, sx(tick), py_lo + 4, stroke="#333")
                doc.text(sx(tick), py_lo + 16, _tick_label(tick), anchor="middle", size=10)

        # Marks.
        for s in self._series:
            if s["kind"] == "line":
                doc.polyline(list(zip(sx(s["x"]), sy(s["y"]))), stroke=s["color"],
                             stroke_width=s["width"], opacity=0.95)
            elif s["kind"] == "step":
                pts = []
                px, py = sx(s["x"]), sy(s["y"])
                for i in range(len(px)):
                    if i:
                        pts.append((px[i], py[i - 1]))
                    pts.append((px[i], py[i]))
                doc.polyline(pts, stroke=s["color"], stroke_width=s["width"])
            elif s["kind"] == "area":
                px, py = sx(s["x"]), sy(s["y"])
                base = sy(max(0.0, y_lo))
                points = [(px[0], base), *zip(px, py), (px[-1], base)]
                doc.polygon(points, fill=s["color"], opacity=s["opacity"])
            elif s["kind"] == "hist":
                base = sy(max(0.0, y_lo))
                for i, d in enumerate(s["density"]):
                    x0, x1 = sx(s["edges"][i]), sx(s["edges"][i + 1])
                    doc.rect(x0, sy(d), max(0.5, x1 - x0 - 0.5), base - sy(d),
                             fill=s["color"], opacity=0.75)
            elif s["kind"] == "bars":
                self._render_bars(doc, s, sx, sy)
            elif s["kind"] == "vline":
                doc.line(sx(s["x"]), py_lo, sx(s["x"]), py_hi,
                         stroke=s["color"], dash=s["dash"])

        # Axes, labels, legend.
        doc.line(px_lo, py_lo, px_hi, py_lo, stroke="#333", stroke_width=1.2)
        doc.line(px_lo, py_lo, px_lo, py_hi, stroke="#333", stroke_width=1.2)
        if self.title:
            doc.text(doc.width / 2, 18, self.title, anchor="middle", size=13, bold=True)
        if self.xlabel:
            doc.text((px_lo + px_hi) / 2, doc.height - 10, self.xlabel,
                     anchor="middle", size=11)
        if self.ylabel:
            doc.text(14, (py_lo + py_hi) / 2, self.ylabel, anchor="middle",
                     size=11, rotate=-90)
        for i, (label, color) in enumerate(self._legend):
            lx, ly = px_lo + 10, py_hi + 12 + 15 * i
            doc.rect(lx, ly - 8, 11, 11, fill=color, opacity=0.9)
            doc.text(lx + 16, ly + 1, label, size=10)
        return doc.render()

    def _render_bars(self, doc: SvgDocument, s: dict, sx, sy) -> None:
        categories, groups = s["categories"], s["groups"]
        n_groups = len(groups)
        base = sy(0.0)
        slot = 1.0
        bar_w = slot * 0.7 / n_groups
        for ci, cat in enumerate(categories):
            for gi, (name, values) in enumerate(groups.items()):
                x0 = ci + 0.15 + gi * bar_w
                x_px, x1_px = sx(x0), sx(x0 + bar_w)
                top = sy(values[ci])
                doc.rect(x_px, top, max(0.5, x1_px - x_px - 1), base - top,
                         fill=s["colors"][name], opacity=0.9)
                err = s["errors"].get(name)
                if err is not None:
                    cx = (x_px + x1_px) / 2
                    doc.line(cx, sy(values[ci] - err[ci]), cx,
                             sy(values[ci] + err[ci]), stroke="#333")
            doc.text(sx(ci + 0.5), base + 16, str(cat), anchor="middle", size=10)

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.render())


def pie_chart(
    labels: Sequence[str],
    fractions: Sequence[float],
    title: str = "",
    width: float = 360.0,
    height: float = 300.0,
) -> str:
    """A donut chart (Fig 13's cluster-variability pies)."""
    fractions = np.asarray(fractions, dtype=float)
    if len(labels) != len(fractions) or len(labels) == 0:
        raise ValueError("labels and fractions must align and be non-empty")
    if np.any(fractions < 0):
        raise ValueError("fractions must be non-negative")
    total = fractions.sum()
    if total <= 0:
        raise ValueError("fractions must not all be zero")
    fractions = fractions / total

    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff")
    if title:
        doc.text(width / 2, 18, title, anchor="middle", size=13, bold=True)
    cx, cy, r, r_in = width * 0.38, height * 0.55, min(width, height) * 0.32, 0.0
    angle = -np.pi / 2
    for i, (label, frac) in enumerate(zip(labels, fractions)):
        color = PALETTE[i % len(PALETTE)]
        if frac <= 0:
            continue
        sweep = 2 * np.pi * frac
        x0, y0 = cx + r * np.cos(angle), cy + r * np.sin(angle)
        angle2 = angle + sweep
        x1, y1 = cx + r * np.cos(angle2), cy + r * np.sin(angle2)
        large = 1 if sweep > np.pi else 0
        if frac >= 0.999:  # full circle: two arcs
            doc.circle(cx, cy, r, fill=color, opacity=0.9)
        else:
            doc.path(
                f"M {cx:.2f} {cy:.2f} L {x0:.2f} {y0:.2f} "
                f"A {r:.2f} {r:.2f} 0 {large} 1 {x1:.2f} {y1:.2f} Z",
                fill=color, opacity=0.9,
            )
        angle = angle2
    for i, (label, frac) in enumerate(zip(labels, fractions)):
        color = PALETTE[i % len(PALETTE)]
        lx, ly = width * 0.72, 50 + 18 * i
        doc.rect(lx, ly - 9, 12, 12, fill=color, opacity=0.9)
        doc.text(lx + 17, ly + 1, f"{label}: {100 * frac:.1f}%", size=10)
    return doc.render()
