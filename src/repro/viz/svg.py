"""Minimal SVG document builder.

Produces standalone, valid SVG 1.1 text with no external dependencies.
Only the primitives the charts need are implemented: rect, line,
polyline, path, circle, text, and groups with transforms.
"""

from __future__ import annotations

from typing import Sequence
from xml.sax.saxutils import escape, quoteattr

__all__ = ["SvgDocument"]


def _fmt(value: float) -> str:
    """Compact coordinate formatting (2 decimals, no trailing zeros)."""
    text = f"{float(value):.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


class SvgDocument:
    """An append-only SVG element tree with a fluent API.

    Examples
    --------
    >>> doc = SvgDocument(100, 50)
    >>> doc.rect(0, 0, 100, 50, fill="#fff")
    >>> svg = doc.render()
    >>> svg.startswith('<?xml') and '</svg>' in svg
    True
    """

    def __init__(self, width: float, height: float) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("SVG dimensions must be positive")
        self.width = float(width)
        self.height = float(height)
        self._body: list[str] = []

    # -- primitives ------------------------------------------------------

    def _emit(self, tag: str, self_close: bool = True, **attrs) -> None:
        parts = [f"<{tag}"]
        for key, value in attrs.items():
            if value is None:
                continue
            name = key.replace("_", "-")
            if isinstance(value, float):
                value = _fmt(value)
            parts.append(f" {name}={quoteattr(str(value))}")
        parts.append("/>" if self_close else ">")
        self._body.append("".join(parts))

    def rect(self, x, y, w, h, fill="none", stroke=None, stroke_width=1.0,
             opacity=None, rx=None) -> None:
        self._emit("rect", x=float(x), y=float(y), width=float(w),
                   height=float(h), fill=fill, stroke=stroke,
                   stroke_width=float(stroke_width) if stroke else None,
                   opacity=opacity, rx=rx)

    def line(self, x1, y1, x2, y2, stroke="#000", stroke_width=1.0,
             dash=None, opacity=None) -> None:
        self._emit("line", x1=float(x1), y1=float(y1), x2=float(x2),
                   y2=float(y2), stroke=stroke, stroke_width=float(stroke_width),
                   stroke_dasharray=dash, opacity=opacity)

    def polyline(self, points: Sequence[tuple[float, float]], stroke="#000",
                 stroke_width=1.5, fill="none", opacity=None) -> None:
        if len(points) < 2:
            raise ValueError("polyline needs at least 2 points")
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._emit("polyline", points=coords, stroke=stroke,
                   stroke_width=float(stroke_width), fill=fill, opacity=opacity)

    def polygon(self, points: Sequence[tuple[float, float]], fill="#000",
                stroke=None, opacity=None) -> None:
        if len(points) < 3:
            raise ValueError("polygon needs at least 3 points")
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._emit("polygon", points=coords, fill=fill, stroke=stroke,
                   opacity=opacity)

    def path(self, d: str, fill="none", stroke=None, stroke_width=1.0,
             opacity=None) -> None:
        self._emit("path", d=d, fill=fill, stroke=stroke,
                   stroke_width=float(stroke_width) if stroke else None,
                   opacity=opacity)

    def circle(self, cx, cy, r, fill="#000", stroke=None, opacity=None) -> None:
        self._emit("circle", cx=float(cx), cy=float(cy), r=float(r),
                   fill=fill, stroke=stroke, opacity=opacity)

    def text(self, x, y, content: str, size=11.0, anchor="start",
             fill="#333", rotate=None, bold=False) -> None:
        transform = (
            f"rotate({_fmt(rotate)} {_fmt(float(x))} {_fmt(float(y))})"
            if rotate is not None
            else None
        )
        attrs = [
            f'x="{_fmt(float(x))}"',
            f'y="{_fmt(float(y))}"',
            f'font-size="{_fmt(float(size))}"',
            f'text-anchor="{anchor}"',
            f'fill="{fill}"',
            'font-family="Helvetica, Arial, sans-serif"',
        ]
        if bold:
            attrs.append('font-weight="bold"')
        if transform:
            attrs.append(f'transform="{transform}"')
        self._body.append(f"<text {' '.join(attrs)}>{escape(content)}</text>")

    # -- output -----------------------------------------------------------

    def render(self) -> str:
        header = (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">'
        )
        return "\n".join([header, *self._body, "</svg>"])

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.render())
