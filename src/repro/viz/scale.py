"""Axis scales and tick selection."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["LinearScale", "nice_ticks"]


def nice_ticks(lo: float, hi: float, target: int = 6) -> np.ndarray:
    """Round tick positions covering [lo, hi] at a 1/2/5×10^k step."""
    if not math.isfinite(lo) or not math.isfinite(hi):
        raise ValueError("tick range must be finite")
    if hi < lo:
        lo, hi = hi, lo
    if hi == lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(1, target - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiple * magnitude
        if span / step <= target:
            break
    start = math.floor(lo / step) * step
    ticks = np.arange(start, hi + step / 2, step)
    return ticks[(ticks >= lo - 1e-9 * span) & (ticks <= hi + 1e-9 * span)]


class LinearScale:
    """Maps a data interval onto a pixel interval (possibly inverted).

    Examples
    --------
    >>> s = LinearScale(0.0, 10.0, 0.0, 100.0)
    >>> s(5.0)
    50.0
    """

    def __init__(self, d_lo: float, d_hi: float, p_lo: float, p_hi: float) -> None:
        if d_hi == d_lo:
            d_hi = d_lo + 1.0
        self.d_lo, self.d_hi = float(d_lo), float(d_hi)
        self.p_lo, self.p_hi = float(p_lo), float(p_hi)

    def __call__(self, value):
        value = np.asarray(value, dtype=float)
        frac = (value - self.d_lo) / (self.d_hi - self.d_lo)
        out = self.p_lo + frac * (self.p_hi - self.p_lo)
        return float(out) if out.ndim == 0 else out

    def ticks(self, target: int = 6) -> np.ndarray:
        return nice_ticks(self.d_lo, self.d_hi, target)
