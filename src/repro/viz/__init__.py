"""Dependency-free SVG figure rendering.

matplotlib is not a dependency of this package; :mod:`repro.viz` renders
the paper's figures (utilization areas, PDFs, CDFs, grouped bars, pies)
as standalone SVG documents from the analysis-layer results. The
low-level pieces — :class:`~repro.viz.svg.SvgDocument`,
:class:`~repro.viz.scale.LinearScale`, :class:`~repro.viz.charts.Chart` —
are reusable for new figures.
"""

from repro.viz.charts import Chart
from repro.viz.figures import render_all_figures
from repro.viz.scale import LinearScale, nice_ticks
from repro.viz.svg import SvgDocument

__all__ = ["SvgDocument", "LinearScale", "nice_ticks", "Chart", "render_all_figures"]
