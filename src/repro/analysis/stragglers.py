"""Spatial diagnostics: straggler nodes and fleet-wide variability.

The paper's Section 4 ends asking for "new production tools that focus
on heterogeneous spatial power consumption characteristics". Two such
tools:

* :func:`straggler_nodes` — within one job, flag nodes whose mean power
  deviates from the job's node-median by more than a threshold
  (workload-imbalance victims or hot chips);
* :func:`estimate_node_factors` — across many instrumented jobs, recover
  each *physical* node's manufacturing-variability factor from its
  average relative power residual. On simulated data this estimate can
  be validated against the cluster's ground-truth factors — the test
  suite does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.telemetry.dataset import JobDataset
from repro.telemetry.trace import JobPowerTrace

__all__ = ["StragglerReport", "straggler_nodes", "NodeFactorEstimate",
           "estimate_node_factors"]


@dataclass(frozen=True)
class StragglerReport:
    """Per-job spatial outlier summary."""

    job_id: int
    node_means: np.ndarray  # mean watts per allocated node (job order)
    relative_deviation: np.ndarray  # node mean / node-median − 1
    outlier_mask: np.ndarray  # |deviation| > threshold

    @property
    def num_outliers(self) -> int:
        return int(self.outlier_mask.sum())

    @property
    def worst_deviation(self) -> float:
        return float(np.max(np.abs(self.relative_deviation)))


def straggler_nodes(trace: JobPowerTrace, threshold: float = 0.10) -> StragglerReport:
    """Flag nodes deviating more than ``threshold`` from the node median."""
    if threshold <= 0:
        raise AnalysisError("threshold must be positive")
    means = trace.matrix.mean(axis=1)
    median = float(np.median(means))
    if median <= 0:
        raise AnalysisError(f"job {trace.job_id}: non-positive median node power")
    deviation = means / median - 1.0
    return StragglerReport(
        job_id=trace.job_id,
        node_means=means,
        relative_deviation=deviation,
        outlier_mask=np.abs(deviation) > threshold,
    )


@dataclass(frozen=True)
class NodeFactorEstimate:
    """Fleet-wide per-node power-factor estimates."""

    node_ids: np.ndarray
    factors: np.ndarray  # estimated multiplicative factor (mean ≈ 1)
    observations: np.ndarray  # jobs contributing per node

    def factor_of(self, node_id: int) -> float:
        idx = np.flatnonzero(self.node_ids == node_id)
        if len(idx) == 0:
            raise AnalysisError(f"node {node_id} was never observed")
        return float(self.factors[idx[0]])


def estimate_node_factors(
    dataset: JobDataset, min_observations: int = 3
) -> NodeFactorEstimate:
    """Estimate per-node variability factors from instrumented traces.

    For each instrumented multi-node job, a node's *relative* power
    (node mean / job node-mean) isolates the static node effect from the
    job's own power level; averaging those ratios per physical node over
    many jobs averages away the per-job workload imbalance.

    Requires the dataset's traces to carry node identity — the job table
    does not record allocations, so this uses the scheduler's node ids
    stored alongside each trace.
    """
    if min_observations < 1:
        raise AnalysisError("min_observations must be >= 1")
    if not dataset.traces:
        raise AnalysisError("dataset has no instrumented traces")
    if not dataset.trace_allocations:
        raise AnalysisError(
            "dataset lacks trace allocations (regenerate with this version)"
        )

    num_nodes = dataset.spec.num_nodes
    ratio_sum = np.zeros(num_nodes)
    counts = np.zeros(num_nodes, dtype=np.int64)
    for job_id, trace in dataset.traces.items():
        node_ids = dataset.trace_allocations.get(job_id)
        if node_ids is None or trace.num_nodes < 2:
            continue
        means = trace.matrix.mean(axis=1)
        ratios = means / means.mean()
        ratio_sum[node_ids] += ratios
        counts[node_ids] += 1

    observed = counts >= min_observations
    if not np.any(observed):
        raise AnalysisError(
            f"no node observed >= {min_observations} times; lower the threshold"
        )
    factors = ratio_sum[observed] / counts[observed]
    # Normalize: factors are identifiable only up to a constant.
    factors = factors / factors.mean()
    return NodeFactorEstimate(
        node_ids=np.flatnonzero(observed),
        factors=factors,
        observations=counts[observed],
    )
