"""Phase detection on job power series.

The paper discusses jobs' "intensive phases of compute, memory, network
and I/O activity" and concludes temporal provisioning chases small
gains. This module supplies the missing production tool: a change-point
segmentation of a job's power series (binary segmentation with an SSE
improvement penalty — a lightweight CART-in-time), so operators can
*measure* a job's phase structure instead of assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.telemetry.trace import JobPowerTrace

__all__ = ["Phase", "PhaseAnalysis", "detect_phases", "analyze_phases"]


@dataclass(frozen=True)
class Phase:
    """One detected phase: [start, end) minutes at roughly constant power."""

    start: int
    end: int
    mean_watts: float

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class PhaseAnalysis:
    """Phase structure of one job."""

    phases: tuple[Phase, ...]
    series_mean: float

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def is_flat(self) -> bool:
        return len(self.phases) == 1

    def high_power_fraction(self, rel_threshold: float = 0.10) -> float:
        """Fraction of runtime in phases > (1+threshold) × series mean."""
        total = sum(p.duration for p in self.phases)
        high = sum(
            p.duration
            for p in self.phases
            if p.mean_watts > (1 + rel_threshold) * self.series_mean
        )
        return high / total

    def phase_power_range(self) -> float:
        """(max − min) phase mean, as a fraction of the series mean."""
        means = [p.mean_watts for p in self.phases]
        return (max(means) - min(means)) / self.series_mean


def _sse(prefix: np.ndarray, prefix2: np.ndarray, lo: int, hi: int) -> float:
    """Sum of squared errors of series[lo:hi] around its mean (O(1))."""
    n = hi - lo
    s = prefix[hi] - prefix[lo]
    s2 = prefix2[hi] - prefix2[lo]
    return float(s2 - s * s / n)


def detect_phases(
    series,
    min_length: int = 5,
    penalty: float = 2.0,
    max_phases: int = 32,
    min_jump: float = 0.04,
) -> PhaseAnalysis:
    """Binary-segmentation change-point detection.

    A split is accepted when (a) it reduces the segment SSE by more than
    ``penalty × noise variance × min_length`` *and* (b) the two new
    segment means differ by at least ``min_jump`` of the series mean.
    Criterion (b) is what keeps slow power wander (an AR(1) component
    present in every real trace, which defeats white-noise SSE tests)
    from being shredded into micro-phases: a phase must be an
    operationally meaningful power level change.

    Parameters
    ----------
    series:
        The job's power series (node-mean watts per minute).
    min_length:
        Minimum phase duration in samples.
    penalty:
        Split-acceptance threshold in units of noise variance.
    min_jump:
        Minimum relative mean difference between adjacent phases.
    """
    x = np.asarray(series, dtype=float).ravel()
    if x.size == 0:
        raise AnalysisError("phase detection needs a non-empty series")
    if min_length < 1 or penalty < 0 or max_phases < 1 or min_jump < 0:
        raise AnalysisError("invalid phase-detection parameters")

    prefix = np.concatenate(([0.0], np.cumsum(x)))
    prefix2 = np.concatenate(([0.0], np.cumsum(x * x)))
    # Noise scale from first differences (robust to the phase structure
    # itself): var(diff)/2 estimates the white-noise variance.
    noise_var = float(np.var(np.diff(x)) / 2.0) if x.size > 1 else 0.0
    threshold = penalty * max(noise_var, 1e-12) * min_length
    jump_abs = min_jump * max(abs(float(x.mean())), 1e-12)

    boundaries = [0, x.size]

    def best_split(lo: int, hi: int) -> tuple[int, float] | None:
        if hi - lo < 2 * min_length:
            return None
        total = _sse(prefix, prefix2, lo, hi)
        cuts = np.arange(lo + min_length, hi - min_length + 1)
        if len(cuts) == 0:
            return None
        gains = np.asarray(
            [total - _sse(prefix, prefix2, lo, c) - _sse(prefix, prefix2, c, hi)
             for c in cuts]
        )
        k = int(np.argmax(gains))
        cut = int(cuts[k])
        if gains[k] <= threshold:
            return None
        left_mean = (prefix[cut] - prefix[lo]) / (cut - lo)
        right_mean = (prefix[hi] - prefix[cut]) / (hi - cut)
        if abs(left_mean - right_mean) < jump_abs:
            return None
        return cut, float(gains[k])

    # Greedy: repeatedly split the segment offering the largest gain.
    changed = True
    while changed and len(boundaries) - 1 < max_phases:
        changed = False
        best: tuple[float, int, int] | None = None  # (gain, cut, insert_pos)
        for i in range(len(boundaries) - 1):
            result = best_split(boundaries[i], boundaries[i + 1])
            if result is not None and (best is None or result[1] > best[0]):
                best = (result[1], result[0], i + 1)
        if best is not None:
            boundaries.insert(best[2], best[1])
            boundaries.sort()
            changed = True

    phases = tuple(
        Phase(start=lo, end=hi, mean_watts=float(x[lo:hi].mean()))
        for lo, hi in zip(boundaries[:-1], boundaries[1:])
    )
    return PhaseAnalysis(phases=phases, series_mean=float(x.mean()))


def analyze_phases(trace: JobPowerTrace, **kwargs) -> PhaseAnalysis:
    """Phase structure of one instrumented job's node-mean power."""
    return detect_phases(trace.job_power_series(), **kwargs)
