"""Section 5 — pre-execution power prediction (RQ9; Figs 14–15).

Wires the paper's three models and evaluation protocol onto a dataset's
job table. Features: user id, number of nodes, requested walltime —
everything available *before* the job starts (actual runtime is
deliberately excluded, as in the paper).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import AnalysisError
from repro.ml import (
    DecisionTreeRegressor,
    FLDARegressor,
    KNNRegressor,
    PredictionResult,
    evaluate_models,
)
from repro.telemetry.dataset import JobDataset

__all__ = ["default_models", "run_prediction"]


def default_models() -> dict[str, Callable[[], object]]:
    """The paper's three models (Fig 14), best-performing first.

    * **BDT** — CART with the user as a native categorical feature;
      shallow leaves resolve down to job classes.
    * **KNN** — k=5 with every feature treated numerically (user id
      included), so nearby (nodes, walltime) jobs of *other* users bleed
      in — exactly the failure mode the paper diagnoses for KNN.
    * **FLDA** — 10 power classes, linear boundaries.
    """
    return {
        "BDT": lambda: DecisionTreeRegressor(min_samples_leaf=3),
        "KNN": lambda: KNNRegressor(k=5, use_categorical=False, weighting="uniform"),
        "FLDA": lambda: FLDARegressor(n_bins=10),
    }


def run_prediction(
    dataset: JobDataset,
    models: Mapping[str, Callable[[], object]] | None = None,
    n_repeats: int = 10,
    seed: int = 0,
) -> dict[str, PredictionResult]:
    """Run the full Fig 14/15 evaluation on one dataset."""
    if dataset.num_jobs < 50:
        raise AnalysisError(
            f"prediction evaluation needs a reasonable job count, got {dataset.num_jobs}"
        )
    return evaluate_models(
        dataset.jobs,
        models or default_models(),
        n_repeats=n_repeats,
        seed=seed,
    )
