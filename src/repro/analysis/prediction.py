"""Section 5 — pre-execution power prediction (RQ9; Figs 14–15).

Wires the paper's three models and evaluation protocol onto a dataset's
job table. Features: user id, number of nodes, requested walltime —
everything available *before* the job starts (actual runtime is
deliberately excluded, as in the paper).

The heterogeneous systems add two more tracks on the same protocol
(docs/SCENARIOS.md): :func:`run_gpu_prediction` regresses GPU-job board
power, :func:`run_failure_classification` regresses failure probability
(graded by Brier error, not percentage error).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import AnalysisError
from repro.ml import (
    FAILURE_TRACK,
    GPU_POWER_TRACK,
    DecisionTreeRegressor,
    FLDARegressor,
    KNNRegressor,
    PredictionResult,
    Track,
    evaluate_models,
)
from repro.telemetry.dataset import JobDataset

__all__ = [
    "default_models",
    "failure_models",
    "run_prediction",
    "run_track",
    "run_gpu_prediction",
    "run_failure_classification",
]


def default_models() -> dict[str, Callable[[], object]]:
    """The paper's three models (Fig 14), best-performing first.

    * **BDT** — CART with the user as a native categorical feature;
      shallow leaves resolve down to job classes.
    * **KNN** — k=5 with every feature treated numerically (user id
      included), so nearby (nodes, walltime) jobs of *other* users bleed
      in — exactly the failure mode the paper diagnoses for KNN.
    * **FLDA** — 10 power classes, linear boundaries.
    """
    return {
        "BDT": lambda: DecisionTreeRegressor(min_samples_leaf=3),
        "KNN": lambda: KNNRegressor(k=5, use_categorical=False, weighting="uniform"),
        "FLDA": lambda: FLDARegressor(n_bins=10),
    }


def failure_models() -> dict[str, Callable[[], object]]:
    """Probability models for the failure track.

    The same regressors, pointed at a 0/1 target: BDT leaf means and
    KNN neighbour means are empirical failure rates. FLDA is dropped —
    quantile-binning a two-valued target degenerates.
    """
    return {
        "BDT": lambda: DecisionTreeRegressor(min_samples_leaf=5),
        "KNN": lambda: KNNRegressor(k=15, use_categorical=False, weighting="uniform"),
    }


def run_prediction(
    dataset: JobDataset,
    models: Mapping[str, Callable[[], object]] | None = None,
    n_repeats: int = 10,
    seed: int = 0,
) -> dict[str, PredictionResult]:
    """Run the full Fig 14/15 evaluation on one dataset."""
    if dataset.num_jobs < 50:
        raise AnalysisError(
            f"prediction evaluation needs a reasonable job count, got {dataset.num_jobs}"
        )
    return evaluate_models(
        dataset.jobs,
        models or default_models(),
        n_repeats=n_repeats,
        seed=seed,
    )


def run_track(
    dataset: JobDataset,
    track: Track,
    models: Mapping[str, Callable[[], object]] | None = None,
    n_repeats: int = 10,
    seed: int = 0,
) -> dict[str, PredictionResult]:
    """The paper's repeated-split protocol on one :class:`~repro.ml.Track`.

    Selects the track's rows from the dataset's job table, then runs
    :func:`repro.ml.evaluate_models` with the track's target, feature
    spec, and per-prediction error metric.
    """
    rows = track.select(dataset.jobs)
    if len(rows) < track.min_rows:
        raise AnalysisError(
            f"track {track.name!r} needs >= {track.min_rows} eligible jobs, "
            f"got {len(rows)} (of {dataset.num_jobs})"
        )
    return evaluate_models(
        rows,
        models or default_models(),
        n_repeats=n_repeats,
        seed=seed,
        feature_spec=track.feature_spec(),
        target_column=track.target_column,
        error_fn=track.error_fn,
    )


def run_gpu_prediction(
    dataset: JobDataset,
    models: Mapping[str, Callable[[], object]] | None = None,
    n_repeats: int = 10,
    seed: int = 0,
) -> dict[str, PredictionResult]:
    """GPU-job board-power regression over the jobs holding boards."""
    return run_track(
        dataset, GPU_POWER_TRACK, models=models, n_repeats=n_repeats, seed=seed
    )


def run_failure_classification(
    dataset: JobDataset,
    models: Mapping[str, Callable[[], object]] | None = None,
    n_repeats: int = 10,
    seed: int = 0,
) -> dict[str, PredictionResult]:
    """Failure-probability classification; errors are Brier scores."""
    return run_track(
        dataset, FAILURE_TRACK, models=models or failure_models(),
        n_repeats=n_repeats, seed=seed,
    )
