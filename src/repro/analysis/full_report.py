"""One-call markdown characterization report.

:func:`full_report` runs every analysis on a dataset and renders the
result as a self-contained markdown document — the artifact an operator
would circulate after a characterization campaign. The CLI's ``report``
subcommand writes it to disk.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.job_level import (
    feature_power_correlations,
    per_node_power_distribution,
    split_analysis,
)
from repro.analysis.spatial import spatial_summary
from repro.analysis.system_level import power_utilization, system_utilization
from repro.analysis.temporal import temporal_summary
from repro.analysis.user_level import (
    cluster_variability,
    concentration_analysis,
    user_power_variability,
)
from repro.errors import AnalysisError
from repro.telemetry.dataset import JobDataset

__all__ = ["full_report"]


def _pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def full_report(
    dataset: JobDataset,
    include_prediction: bool = True,
    n_repeats: int = 3,
    run_prediction_fn: Callable | None = None,
) -> str:
    """Render the complete characterization of one dataset as markdown."""
    if dataset.num_jobs == 0:
        raise AnalysisError("cannot report on an empty dataset")
    spec = dataset.spec
    lines: list[str] = []
    add = lines.append

    add(f"# Power characterization — {spec.name}")
    add("")
    add(f"- **System**: {spec.num_nodes} nodes × {spec.processor} "
        f"({spec.microarchitecture}, {spec.process_node_nm} nm), "
        f"{spec.node_tdp_watts:.0f} W node TDP, {spec.batch_system}")
    add(f"- **Window**: {dataset.horizon_s / 86400:.0f} days, "
        f"{dataset.num_jobs} jobs, {len(dataset.traces)} instrumented")
    add("")

    util = system_utilization(dataset)
    power = power_utilization(dataset)
    add("## System level (stranded power)")
    add("")
    add(f"| metric | value |")
    add(f"|---|---|")
    add(f"| mean system utilization | {_pct(util.mean)} |")
    add(f"| mean power utilization | {_pct(power.mean)} |")
    add(f"| peak power utilization | {_pct(power.peak)} |")
    add(f"| stranded power | {_pct(power.stranded_fraction)} of "
        f"{spec.total_tdp_watts / 1e3:.0f} kW provisioned |")
    add("")

    dist = per_node_power_distribution(dataset)
    corr = feature_power_correlations(dataset)
    length = split_analysis(dataset, "length")
    size = split_analysis(dataset, "size")
    add("## Job level")
    add("")
    add(f"Per-node power: **{dist.mean_watts:.0f} W** "
        f"({_pct(dist.mean_tdp_fraction)} of TDP), σ {dist.std_watts:.0f} W "
        f"({_pct(dist.std_over_mean)} of the mean), across {dist.n_jobs} jobs.")
    add("")
    add(f"Spearman correlations with per-node power: runtime "
        f"{corr['job_length'].statistic:+.2f} "
        f"(p={corr['job_length'].pvalue:.1g}), node count "
        f"{corr['job_size'].statistic:+.2f} (p={corr['job_size'].pvalue:.1g}).")
    add("")
    add(f"Median splits (fraction of TDP): short {_pct(length.low.mean_tdp_fraction)} "
        f"→ long {_pct(length.high.mean_tdp_fraction)}; "
        f"small {_pct(size.low.mean_tdp_fraction)} "
        f"→ large {_pct(size.high.mean_tdp_fraction)}.")
    add("")

    if dataset.traces:
        t = temporal_summary(dataset)
        s = spatial_summary(dataset)
        add("## Dynamic behavior (instrumented subset)")
        add("")
        add(f"- Temporal: σ_t/µ {_pct(t.mean_temporal_cov)} on average; peak "
            f"only {_pct(t.mean_peak_overshoot)} above the mean; "
            f"{_pct(t.frac_jobs_never_above)} of jobs never exceed mean+10%.")
        add(f"- Spatial: node spread {s.mean_spread_watts:.0f} W "
            f"({_pct(s.mean_spread_fraction)} of per-node power); "
            f"{_pct(s.frac_jobs_energy_imbalance_over_15pct)} of jobs show "
            f">15% node-energy imbalance.")
        add("")

    conc = concentration_analysis(dataset)
    var = user_power_variability(dataset)
    clusters = cluster_variability(dataset, "nodes")
    add("## Users")
    add("")
    add(f"- Top 20% of {conc.n_users} users: {_pct(conc.node_hours_share)} of "
        f"node-hours, {_pct(conc.energy_share)} of energy "
        f"(top-set overlap {_pct(conc.top_set_overlap)}).")
    add(f"- Per-user power variability: mean σ/µ {_pct(var.mean_cov)}; after "
        f"clustering by (user, nodes) it collapses to "
        f"{_pct(clusters.mean_cov)} — {_pct(clusters.frac_below_10pct)} of "
        f"clusters sit below 10%.")
    add("")

    if include_prediction:
        from repro.analysis.prediction import run_prediction

        runner = run_prediction_fn or run_prediction
        results = runner(dataset, n_repeats=n_repeats)
        add("## Pre-execution power prediction")
        add("")
        add("| model | mean err | <5% err | <10% err |")
        add("|---|---|---|---|")
        for name, result in results.items():
            s = result.summary
            add(f"| {name} | {_pct(s.mean)} | {_pct(s.frac_below_5pct)} | "
                f"{_pct(s.frac_below_10pct)} |")
        add("")
        lines.extend(_track_sections(dataset, n_repeats))

    return "\n".join(lines)


def _track_sections(dataset: JobDataset, n_repeats: int) -> list[str]:
    """Extra evaluation-track tables for systems that model them.

    A CPU-only dataset (emmy/meggie) has neither GPU nor exit-state
    columns, so its report is unchanged; heterogeneous systems
    (docs/SCENARIOS.md) gain one table per applicable track.
    """
    from repro.analysis.prediction import (
        run_failure_classification,
        run_gpu_prediction,
    )

    lines: list[str] = []
    add = lines.append
    jobs = dataset.jobs
    if "gpu_power_w" in jobs:
        try:
            results = run_gpu_prediction(dataset, n_repeats=n_repeats)
        except AnalysisError:
            results = None  # too few GPU jobs to split; skip the table
        if results:
            add("## GPU board-power prediction (gpu_power track)")
            add("")
            n_gpu = int((jobs["gpus"] > 0).sum())
            add(f"Over the {n_gpu} jobs holding boards; features add the "
                "allocated board count.")
            add("")
            add("| model | mean err | <5% err | <10% err |")
            add("|---|---|---|---|")
            for name, result in results.items():
                s = result.summary
                add(f"| {name} | {_pct(s.mean)} | {_pct(s.frac_below_5pct)} "
                    f"| {_pct(s.frac_below_10pct)} |")
            add("")
    if "failed" in jobs:
        try:
            results = run_failure_classification(dataset, n_repeats=n_repeats)
        except AnalysisError:
            results = None
        if results:
            base_rate = float(jobs["failed"].astype(float).mean())
            add("## Failure-probability classification (failures track)")
            add("")
            add(f"Base failure rate {_pct(base_rate)}; errors are Brier "
                "(squared-probability) scores — lower is better, and "
                f"always predicting the base rate scores "
                f"{base_rate * (1 - base_rate):.4f}.")
            add("")
            add("| model | mean Brier |")
            add("|---|---|")
            for name, result in results.items():
                add(f"| {name} | {result.summary.mean:.4f} |")
            add("")
    return lines
