"""The paper's analyses (Sections 3–5), one module per section theme.

Every public function consumes a :class:`~repro.telemetry.dataset.JobDataset`
(or several) and returns plain result dataclasses / tables — the same
rows and series the paper's figures plot. The benchmark harness calls
these and prints paper-vs-measured comparisons.
"""

from repro.analysis.job_level import (
    AppPowerComparison,
    PowerDistribution,
    SplitAnalysis,
    app_power_comparison,
    feature_power_correlations,
    per_node_power_distribution,
    split_analysis,
)
from repro.analysis.full_report import full_report
from repro.analysis.phase_detection import PhaseAnalysis, analyze_phases, detect_phases
from repro.analysis.prediction import (
    default_models,
    failure_models,
    run_failure_classification,
    run_gpu_prediction,
    run_prediction,
    run_track,
)
from repro.analysis.stragglers import (
    NodeFactorEstimate,
    StragglerReport,
    estimate_node_factors,
    straggler_nodes,
)
from repro.analysis.report import comparison_text, format_table
from repro.analysis.spatial import SpatialSummary, spatial_summary
from repro.analysis.system_level import UtilizationSummary, power_utilization, system_utilization
from repro.analysis.temporal import TemporalSummary, temporal_summary
from repro.analysis.user_level import (
    ClusterVariability,
    ConcentrationSummary,
    UserVariability,
    cluster_variability,
    concentration_analysis,
    user_power_variability,
    user_totals,
)

__all__ = [
    "UtilizationSummary",
    "system_utilization",
    "power_utilization",
    "PowerDistribution",
    "per_node_power_distribution",
    "AppPowerComparison",
    "app_power_comparison",
    "feature_power_correlations",
    "SplitAnalysis",
    "split_analysis",
    "TemporalSummary",
    "temporal_summary",
    "SpatialSummary",
    "spatial_summary",
    "ConcentrationSummary",
    "concentration_analysis",
    "user_totals",
    "UserVariability",
    "user_power_variability",
    "ClusterVariability",
    "cluster_variability",
    "default_models",
    "failure_models",
    "run_prediction",
    "run_track",
    "run_gpu_prediction",
    "run_failure_classification",
    "PhaseAnalysis",
    "detect_phases",
    "analyze_phases",
    "StragglerReport",
    "straggler_nodes",
    "NodeFactorEstimate",
    "estimate_node_factors",
    "format_table",
    "comparison_text",
    "full_report",
]
