"""Section 3 — system-level utilization and power trends (RQ1–RQ2).

Fig 1: system utilization = active nodes / total nodes, per minute.
Fig 2: power utilization = total node power / total provisioned TDP.
The gap between the two is the paper's *stranded power*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.telemetry.dataset import JobDataset
from repro.units import MINUTE

__all__ = ["UtilizationSummary", "system_utilization", "power_utilization"]


@dataclass(frozen=True)
class UtilizationSummary:
    """One utilization timeline with its headline statistics."""

    kind: str  # "system" or "power"
    series: np.ndarray  # per-minute fraction of capacity in [0, 1]
    mean: float
    peak: float
    minimum: float

    @property
    def stranded_fraction(self) -> float:
        """1 − mean utilization: the capacity paid for but unused."""
        return 1.0 - self.mean

    def daily_means(self) -> np.ndarray:
        """Day-averaged series (Figs 1–2 plot at this granularity)."""
        per_day = 24 * 60
        n_days = len(self.series) // per_day
        if n_days == 0:
            return np.asarray([self.series.mean()])
        return self.series[: n_days * per_day].reshape(n_days, per_day).mean(axis=1)


def _horizon_slice(dataset: JobDataset) -> slice:
    """Restrict timelines to the observation window."""
    return slice(0, int(np.ceil(dataset.horizon_s / MINUTE)))


def system_utilization(dataset: JobDataset) -> UtilizationSummary:
    """RQ1 / Fig 1: fraction of nodes executing a job, per minute."""
    series = dataset.active_nodes[_horizon_slice(dataset)] / dataset.spec.num_nodes
    if len(series) == 0:
        raise AnalysisError("dataset has an empty timeline")
    return UtilizationSummary(
        kind="system",
        series=series,
        mean=float(series.mean()),
        peak=float(series.max()),
        minimum=float(series.min()),
    )


def power_utilization(dataset: JobDataset, include_idle: bool = True) -> UtilizationSummary:
    """RQ2 / Fig 2: drawn power as a fraction of provisioned (TDP) power.

    ``include_idle`` adds the baseline draw of unallocated nodes — they
    are powered on and their RAPL domains never read zero, which is how
    the real monitoring sees the machine.
    """
    sl = _horizon_slice(dataset)
    power = (
        dataset.total_power_watts()[sl] if include_idle else dataset.job_power_watts[sl]
    )
    series = power / dataset.spec.total_tdp_watts
    if len(series) == 0:
        raise AnalysisError("dataset has an empty timeline")
    return UtilizationSummary(
        kind="power",
        series=series,
        mean=float(series.mean()),
        peak=float(series.max()),
        minimum=float(series.min()),
    )
