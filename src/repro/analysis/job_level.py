"""Section 4 (static part) — job-level power characteristics (RQ3–RQ4).

Fig 3: PDFs of per-node power across all jobs of a system.
Fig 4: per-application cross-system comparison (ranking flip).
Table 2: Spearman correlations of job length/size with per-node power.
Fig 5: median splits (short/long, small/large) with mean ± std as %TDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.frames import Table
from repro.stats.binning import HistogramPDF, histogram_pdf
from repro.stats.correlation import CorrelationResult, spearman
from repro.telemetry.dataset import JobDataset
from repro.workload.applications import KEY_APPS

__all__ = [
    "PowerDistribution",
    "per_node_power_distribution",
    "AppPowerComparison",
    "app_power_comparison",
    "feature_power_correlations",
    "SplitAnalysis",
    "split_analysis",
]


@dataclass(frozen=True)
class PowerDistribution:
    """Fig 3 for one system."""

    system: str
    mean_watts: float
    std_watts: float
    mean_tdp_fraction: float
    std_over_mean: float
    pdf: HistogramPDF
    n_jobs: int


def per_node_power_distribution(dataset: JobDataset, bins: int | None = 60) -> PowerDistribution:
    """Distribution of per-node power over all jobs (RQ3 / Fig 3)."""
    power = dataset.jobs["pernode_power_w"]
    if len(power) == 0:
        raise AnalysisError("dataset has no jobs")
    mean = float(power.mean())
    std = float(power.std())
    return PowerDistribution(
        system=dataset.spec.name,
        mean_watts=mean,
        std_watts=std,
        mean_tdp_fraction=mean / dataset.spec.node_tdp_watts,
        std_over_mean=std / mean,
        pdf=histogram_pdf(power, bins=bins),
        n_jobs=len(power),
    )


@dataclass(frozen=True)
class AppPowerComparison:
    """Fig 4: mean per-node power of key apps on each system."""

    apps: tuple[str, ...]
    systems: tuple[str, ...]
    mean_watts: np.ndarray  # shape (apps, systems)

    def ranking(self, system: str) -> list[str]:
        """App names ordered by descending power on one system."""
        j = self.systems.index(system)
        order = np.argsort(self.mean_watts[:, j], kind="stable")[::-1]
        return [self.apps[i] for i in order]

    def rankings_differ(self) -> bool:
        """The paper's headline: does the power ranking flip across systems?"""
        rankings = [self.ranking(s) for s in self.systems]
        return any(r != rankings[0] for r in rankings[1:])

    def max_relative_drop(self) -> float:
        """Largest per-app relative power difference between systems."""
        lo = self.mean_watts.min(axis=1)
        hi = self.mean_watts.max(axis=1)
        return float(np.max((hi - lo) / hi))

    def as_table(self) -> Table:
        cols: dict[str, object] = {"app": list(self.apps)}
        for j, system in enumerate(self.systems):
            cols[f"{system}_watts"] = self.mean_watts[:, j]
        return Table(cols)


def app_power_comparison(
    datasets: Mapping[str, JobDataset], apps: Sequence[str] = KEY_APPS
) -> AppPowerComparison:
    """RQ4 / Fig 4 across two (or more) systems."""
    if not datasets:
        raise AnalysisError("need at least one dataset")
    systems = tuple(datasets)
    means = np.empty((len(apps), len(systems)))
    for j, system in enumerate(systems):
        jobs = datasets[system].jobs
        for i, app in enumerate(apps):
            mask = jobs["app"] == app
            if not np.any(mask):
                raise AnalysisError(f"system {system!r} ran no {app!r} jobs")
            means[i, j] = jobs["pernode_power_w"][mask].mean()
    return AppPowerComparison(apps=tuple(apps), systems=systems, mean_watts=means)


def feature_power_correlations(dataset: JobDataset) -> dict[str, CorrelationResult]:
    """Table 2: Spearman of runtime and node count vs per-node power."""
    jobs = dataset.jobs
    power = jobs["pernode_power_w"]
    return {
        "job_length": spearman(jobs["runtime_s"], power),
        "job_size": spearman(jobs["nodes"], power),
    }


@dataclass(frozen=True)
class SplitGroup:
    """One half of a median split."""

    label: str
    n_jobs: int
    mean_tdp_fraction: float
    std_tdp_fraction: float


@dataclass(frozen=True)
class SplitAnalysis:
    """Fig 5 for one split dimension on one system."""

    system: str
    dimension: str  # "length" or "size"
    low: SplitGroup  # short / small
    high: SplitGroup  # long / large

    @property
    def high_minus_low(self) -> float:
        return self.high.mean_tdp_fraction - self.low.mean_tdp_fraction


def split_analysis(dataset: JobDataset, dimension: str) -> SplitAnalysis:
    """Median split by runtime ("length") or node count ("size")."""
    jobs = dataset.jobs
    if dimension == "length":
        values = jobs["runtime_s"].astype(float)
        labels = ("short", "long")
    elif dimension == "size":
        values = jobs["nodes"].astype(float)
        labels = ("small", "large")
    else:
        raise AnalysisError(f"dimension must be 'length' or 'size', got {dimension!r}")
    if len(values) < 2:
        raise AnalysisError("need at least 2 jobs for a median split")
    power_frac = jobs["pernode_power_w"] / dataset.spec.node_tdp_watts
    median = float(np.median(values))
    low_mask = values <= median
    high_mask = ~low_mask
    if not np.any(high_mask):  # all values equal: split at the median rank
        order = np.argsort(values, kind="stable")
        low_mask = np.zeros(len(values), dtype=bool)
        low_mask[order[: len(values) // 2]] = True
        high_mask = ~low_mask

    def group(label: str, mask: np.ndarray) -> SplitGroup:
        sel = power_frac[mask]
        return SplitGroup(
            label=label,
            n_jobs=int(mask.sum()),
            mean_tdp_fraction=float(sel.mean()),
            std_tdp_fraction=float(sel.std()),
        )

    return SplitAnalysis(
        system=dataset.spec.name,
        dimension=dimension,
        low=group(labels[0], low_mask),
        high=group(labels[1], high_mask),
    )
