"""Section 4 (dynamic, temporal) — RQ5's temporal half (Figs 6–7).

Fig 7a: CDF of peak power overshoot over the job mean.
Fig 7b: CDF of the fraction of runtime spent >10% above the job mean.
Headline numbers: mean temporal σ/µ ≈ 11%, mean overshoot ≈ 10–12%,
most jobs spend ≈0% of runtime in >10%-above-mean phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.stats.distributions import ECDF
from repro.telemetry.dataset import JobDataset

__all__ = ["TemporalSummary", "temporal_summary"]


@dataclass(frozen=True)
class TemporalSummary:
    """Per-instrumented-job temporal metrics with their CDFs."""

    system: str
    n_jobs: int
    mean_temporal_cov: float
    mean_peak_overshoot: float
    overshoot_cdf: ECDF
    mean_frac_time_above_10pct: float
    frac_time_cdf: ECDF
    # Share of jobs spending (almost) no time >10% above their mean —
    # "more than 70% of jobs" in the paper.
    frac_jobs_never_above: float

    def overshoot_at_percentile(self, q: float) -> float:
        """Overshoot below which ``q`` of jobs fall (Fig 7a reading)."""
        return float(self.overshoot_cdf.quantile(q))


def temporal_summary(
    dataset: JobDataset, never_above_tolerance: float = 0.01
) -> TemporalSummary:
    """Compute Fig 7 from the instrumented traces.

    ``never_above_tolerance``: a job counts as "spends ≈0% of runtime
    above" when its above-threshold fraction is below this value.
    """
    traces = list(dataset.traces.values())
    if not traces:
        raise AnalysisError(
            "dataset has no instrumented traces; raise max_traces when generating"
        )
    covs = np.asarray([t.temporal_cov() for t in traces])
    overshoots = np.asarray([t.peak_overshoot() for t in traces])
    fracs = np.asarray([t.fraction_time_above(0.10) for t in traces])
    return TemporalSummary(
        system=dataset.spec.name,
        n_jobs=len(traces),
        mean_temporal_cov=float(covs.mean()),
        mean_peak_overshoot=float(overshoots.mean()),
        overshoot_cdf=ECDF(overshoots),
        mean_frac_time_above_10pct=float(fracs.mean()),
        frac_time_cdf=ECDF(fracs),
        frac_jobs_never_above=float(np.mean(fracs <= never_above_tolerance)),
    )
