"""Section 5 — user-level analysis (RQ6–RQ8; Figs 11–13).

Fig 11: a small user fraction consumes most node-hours and energy, and
the two top sets overlap heavily.
Fig 12: per-user variability of per-node power is high.
Fig 13: clustering a user's jobs by node count or by requested walltime
collapses that variability — the basis of the prediction result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frames import Table
from repro.stats.concentration import lorenz_curve, overlap_fraction, top_share
from repro.stats.distributions import ECDF
from repro.telemetry.dataset import JobDataset

__all__ = [
    "user_totals",
    "ConcentrationSummary",
    "concentration_analysis",
    "UserVariability",
    "user_power_variability",
    "ClusterVariability",
    "cluster_variability",
]

# Fig 13's standard-deviation buckets (as fraction of the cluster mean).
VARIABILITY_BUCKETS: tuple[tuple[float, float, str], ...] = (
    (0.0, 0.10, "<10%"),
    (0.10, 0.20, "10-20%"),
    (0.20, 0.30, "20-30%"),
    (0.30, 0.40, "30-40%"),
    (0.40, np.inf, ">40%"),
)


def user_totals(dataset: JobDataset) -> Table:
    """Per-user node-hours, energy, and job count."""
    return dataset.jobs.group_by("user").agg(
        node_hours=("node_hours", "sum"),
        energy_j=("energy_j", "sum"),
        n_jobs=("job_id", "count"),
    )


@dataclass(frozen=True)
class ConcentrationSummary:
    """Fig 11 for one system."""

    system: str
    n_users: int
    top_fraction: float
    node_hours_share: float
    energy_share: float
    top_set_overlap: float
    node_hours_curve: tuple[np.ndarray, np.ndarray]
    energy_curve: tuple[np.ndarray, np.ndarray]


def concentration_analysis(
    dataset: JobDataset, top_fraction: float = 0.2
) -> ConcentrationSummary:
    """RQ6 / Fig 11: consumption share of the top ``top_fraction`` users."""
    totals = user_totals(dataset)
    if len(totals) < 2:
        raise AnalysisError("concentration analysis needs at least 2 users")
    node_hours = totals["node_hours"]
    energy = totals["energy_j"]
    users = totals["user"]
    return ConcentrationSummary(
        system=dataset.spec.name,
        n_users=len(totals),
        top_fraction=top_fraction,
        node_hours_share=top_share(node_hours, top_fraction),
        energy_share=top_share(energy, top_fraction),
        top_set_overlap=overlap_fraction(users, node_hours, energy, top_fraction),
        node_hours_curve=lorenz_curve(node_hours),
        energy_curve=lorenz_curve(energy),
    )


@dataclass(frozen=True)
class UserVariability:
    """Fig 12 for one system: per-user σ/µ of per-node power."""

    system: str
    n_users: int
    mean_cov: float
    median_cov: float
    cov_cdf: ECDF


def _group_cov(power: np.ndarray) -> float:
    return float(power.std() / power.mean())


def user_power_variability(dataset: JobDataset, min_jobs: int = 2) -> UserVariability:
    """RQ7 / Fig 12: variability of per-node power among a user's jobs."""
    grouped = dataset.jobs.group_by("user")
    sizes = grouped.sizes()
    covs = grouped.apply("pernode_power_w", _group_cov)
    covs = covs[sizes >= min_jobs]
    if len(covs) == 0:
        raise AnalysisError(f"no users with >= {min_jobs} jobs")
    return UserVariability(
        system=dataset.spec.name,
        n_users=len(covs),
        mean_cov=float(covs.mean()),
        median_cov=float(np.median(covs)),
        cov_cdf=ECDF(covs),
    )


@dataclass(frozen=True)
class ClusterVariability:
    """Fig 13 (one pie): cluster-level σ/µ bucketed into ranges."""

    system: str
    cluster_by: str
    n_clusters: int
    bucket_labels: tuple[str, ...]
    bucket_fractions: np.ndarray
    mean_cov: float

    @property
    def frac_below_10pct(self) -> float:
        """Fig 13's headline share (e.g. 61.7% on Emmy by-nodes)."""
        return float(self.bucket_fractions[0])


def cluster_variability(
    dataset: JobDataset, cluster_by: str = "nodes", min_jobs: int = 2
) -> ClusterVariability:
    """RQ8 / Fig 13: cluster jobs by (user, nodes) or (user, walltime)."""
    if cluster_by == "nodes":
        key = "nodes"
    elif cluster_by == "walltime":
        key = "req_walltime_s"
    else:
        raise AnalysisError(f"cluster_by must be 'nodes' or 'walltime', got {cluster_by!r}")
    grouped = dataset.jobs.group_by("user", key)
    sizes = grouped.sizes()
    covs = grouped.apply("pernode_power_w", _group_cov)
    covs = covs[sizes >= min_jobs]
    if len(covs) == 0:
        raise AnalysisError(f"no clusters with >= {min_jobs} jobs")
    fractions = np.asarray(
        [np.mean((covs >= lo) & (covs < hi)) for lo, hi, _ in VARIABILITY_BUCKETS]
    )
    return ClusterVariability(
        system=dataset.spec.name,
        cluster_by=cluster_by,
        n_clusters=len(covs),
        bucket_labels=tuple(label for _, _, label in VARIABILITY_BUCKETS),
        bucket_fractions=fractions,
        mean_cov=float(covs.mean()),
    )
