"""Plain-text rendering of analysis results.

The benchmark harness prints paper-vs-measured rows through
:func:`comparison_text`; :func:`format_table` renders any
:class:`~repro.frames.table.Table` with aligned columns.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.frames import Table

__all__ = ["format_table", "comparison_text"]


def _render_cell(value) -> str:
    if isinstance(value, (float, np.floating)):
        return f"{float(value):.4g}"
    return str(value)


def format_table(table: Table, max_rows: int = 50) -> str:
    """Monospace rendering with a header rule and aligned columns."""
    names = table.column_names
    if not names:
        return "(empty table)"
    shown = table.head(max_rows)
    rows = [[_render_cell(shown[n][i]) for n in names] for i in range(len(shown))]
    widths = [
        max(len(n), *(len(r[j]) for r in rows)) if rows else len(n)
        for j, n in enumerate(names)
    ]
    header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows)
    suffix = "" if len(table) <= max_rows else f"\n… ({len(table) - max_rows} more rows)"
    return "\n".join(x for x in (header, rule, body) if x) + suffix


def comparison_text(
    title: str, rows: Sequence[tuple[str, object, object]], note: str | None = None
) -> str:
    """Render (label, paper value, measured value) rows for a bench.

    Values may be strings (pre-formatted) or numbers.
    """
    table = Table(
        {
            "metric": [label for label, _, _ in rows],
            "paper": [_render_cell(p) for _, p, _ in rows],
            "measured": [_render_cell(m) for _, _, m in rows],
        }
    )
    text = f"\n== {title} ==\n{format_table(table)}"
    if note:
        text += f"\nnote: {note}"
    return text
