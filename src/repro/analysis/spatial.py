"""Section 4 (dynamic, spatial) — RQ5's spatial half (Figs 8–10).

Fig 9a: CDF of the average spatial spread (W) per job.
Fig 9b: CDF of the spread as a fraction of per-node power.
Fig 9c: CDF of the fraction of runtime the spread exceeds its average.
Fig 10: PDF of the (max−min)/min node-energy difference per job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.stats.binning import HistogramPDF, histogram_pdf
from repro.stats.distributions import ECDF
from repro.telemetry.dataset import JobDataset

__all__ = ["SpatialSummary", "spatial_summary"]


@dataclass(frozen=True)
class SpatialSummary:
    """Per-instrumented-job spatial metrics with their distributions."""

    system: str
    n_jobs: int
    mean_spread_watts: float
    max_spread_watts: float
    spread_cdf: ECDF
    mean_spread_fraction: float
    spread_fraction_cdf: ECDF
    mean_frac_time_above_avg_spread: float
    frac_time_cdf: ECDF
    energy_imbalance_pdf: HistogramPDF
    # Fig 10 headline: share of jobs with >15% node-energy difference.
    frac_jobs_energy_imbalance_over_15pct: float


def spatial_summary(dataset: JobDataset, bins: int | None = 40) -> SpatialSummary:
    """Compute Figs 9–10 from the instrumented traces (multi-node only)."""
    traces = [t for t in dataset.traces.values() if t.num_nodes >= 2]
    if not traces:
        raise AnalysisError(
            "dataset has no multi-node instrumented traces; raise max_traces"
        )
    spreads = np.asarray([t.avg_spatial_spread() for t in traces])
    fractions = np.asarray([t.spatial_spread_fraction() for t in traces])
    time_above = np.asarray([t.fraction_time_spread_above_average() for t in traces])
    imbalance = np.asarray([t.energy_imbalance_fraction() for t in traces])
    return SpatialSummary(
        system=dataset.spec.name,
        n_jobs=len(traces),
        mean_spread_watts=float(spreads.mean()),
        max_spread_watts=float(spreads.max()),
        spread_cdf=ECDF(spreads),
        mean_spread_fraction=float(fractions.mean()),
        spread_fraction_cdf=ECDF(fractions),
        mean_frac_time_above_avg_spread=float(time_above.mean()),
        frac_time_cdf=ECDF(time_above),
        energy_imbalance_pdf=histogram_pdf(imbalance, bins=bins),
        frac_jobs_energy_imbalance_over_15pct=float(np.mean(imbalance > 0.15)),
    )
