"""The canonical scenario description shared across the package.

A :class:`ScenarioSpec` answers "which simulated machine, at what scale,
over what horizon?" once, in one frozen object, instead of every layer
re-declaring the same six keyword arguments. It is consumed by

* the CLI (``--system/--seed/--num-nodes/...`` flags map 1:1 to fields),
* the pipeline (:meth:`repro.pipeline.ShardConfig.from_scenario`),
* the top-level facade (:func:`repro.generate_dataset`,
  :func:`repro.evaluate`, :func:`repro.create_server`), and
* the serving layer, which keys trained models by
  :attr:`ScenarioSpec.dataset_digest` — the same content address the
  pipeline cache uses for the dataset artifact.

The module is deliberately import-light (no numpy, no simulation layer)
so the PEP 562 lazy package surface and the CLI's bookkeeping
subcommands can load it for free.

Legacy call sites that still pass ``system=...``/``horizon_s=...``
keyword arguments go through :func:`as_scenario`, the thin shim that
normalizes either style into a ``ScenarioSpec``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from repro.errors import ScenarioError

__all__ = ["DAY_S", "ScenarioSpec", "as_scenario"]

DAY_S = 86400


@dataclass(frozen=True)
class ScenarioSpec:
    """One simulated-deployment scenario: system, seed, scale, horizon.

    Fields mirror the CLI's scale flags; ``None`` means "the paper's
    full production configuration" (all nodes, calibrated user count,
    the 5-month horizon). The spec is hashable and frozen, so it can key
    caches directly.

    >>> spec = ScenarioSpec("emmy", seed=7, num_nodes=40, horizon_days=2)
    >>> spec.horizon_s
    172800
    >>> spec.label
    'emmy/seed7'
    """

    system: str = "emmy"
    seed: int = 0
    num_nodes: int | None = None
    num_users: int | None = None
    horizon_days: float | None = None
    max_traces: int = 2000

    def __post_init__(self) -> None:
        if not self.system or not isinstance(self.system, str):
            raise ScenarioError("scenario needs a system name")
        if self.num_nodes is not None and self.num_nodes < 1:
            raise ScenarioError("num_nodes must be >= 1")
        if self.num_users is not None and self.num_users < 1:
            raise ScenarioError("num_users must be >= 1")
        if self.horizon_days is not None and self.horizon_days <= 0:
            raise ScenarioError("horizon_days must be positive")
        if self.max_traces < 0:
            raise ScenarioError("max_traces must be >= 0")

    # -- derived views ---------------------------------------------------

    @property
    def horizon_s(self) -> int | None:
        """The horizon in seconds, as the simulation layers expect."""
        if self.horizon_days is None:
            return None
        return round(self.horizon_days * DAY_S)

    @property
    def label(self) -> str:
        """Short human-readable name, e.g. ``emmy/seed7``."""
        return f"{self.system}/seed{self.seed}"

    def dataset_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for ``generate_dataset`` / ``build_dataset``."""
        return {
            "system": self.system,
            "seed": self.seed,
            "num_nodes": self.num_nodes,
            "num_users": self.num_users,
            "horizon_s": self.horizon_s,
            "max_traces": self.max_traces,
        }

    def to_shard_config(self, **extra: Any):
        """The pipeline :class:`~repro.pipeline.ShardConfig` for this scenario.

        ``extra`` passes through pipeline-only knobs (``backfill_depth``,
        ``params_overrides``, ``variability_sigma``).
        """
        from repro.pipeline.config import ShardConfig

        return ShardConfig(**self.dataset_kwargs(), **extra)

    @property
    def dataset_digest(self) -> str:
        """Content address of this scenario's dataset artifact.

        Identical to the pipeline cache key of the ``dataset`` stage, so
        a served model and a cached dataset built from the same scenario
        share one identity.
        """
        from repro.pipeline.config import stage_key

        return stage_key(self.to_shard_config(), "dataset")

    # -- construction / serialization ------------------------------------

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given fields swapped (validation re-runs)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (HTTP payloads, manifests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; accepts the legacy ``horizon_s`` key.

        Unknown keys raise :class:`~repro.errors.ScenarioError` so typos
        in HTTP payloads fail loudly instead of silently running the
        default scenario.
        """
        data = dict(data)
        if "horizon_s" in data:
            horizon_s = data.pop("horizon_s")
            if horizon_s is not None:
                if "horizon_days" in data and data["horizon_days"] is not None:
                    raise ScenarioError("pass horizon_days or horizon_s, not both")
                data["horizon_days"] = horizon_s / DAY_S
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioError(
                f"unknown scenario fields {unknown}; known: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_args(cls, args: Any) -> "ScenarioSpec":
        """Build from an ``argparse`` namespace carrying the scale flags."""
        return cls(
            system=args.system,
            seed=args.seed,
            num_nodes=args.num_nodes,
            num_users=args.num_users,
            horizon_days=args.horizon_days,
            max_traces=args.max_traces,
        )


def as_scenario(
    scenario: "ScenarioSpec | Mapping[str, Any] | str | None" = None,
    **kwargs: Any,
) -> ScenarioSpec:
    """Normalize legacy keyword style into a :class:`ScenarioSpec`.

    The deprecation shim behind every facade entry point. Accepts

    * a ready ``ScenarioSpec`` (extra kwargs override fields),
    * a mapping (e.g. a decoded HTTP payload),
    * the legacy positional system string plus keyword arguments
      (``as_scenario("emmy", seed=7, horizon_s=86400)``), or
    * keyword arguments alone.

    >>> as_scenario("meggie", horizon_s=2 * 86400).horizon_days
    2.0
    >>> spec = ScenarioSpec("emmy", seed=3)
    >>> as_scenario(spec) is spec
    True
    """
    if isinstance(scenario, ScenarioSpec):
        return scenario.replace(**kwargs) if kwargs else scenario
    if isinstance(scenario, Mapping):
        merged = {**dict(scenario), **kwargs}
        return ScenarioSpec.from_dict(merged)
    if scenario is not None:
        if "system" in kwargs:
            raise ScenarioError("system given both positionally and by keyword")
        kwargs["system"] = scenario
    return ScenarioSpec.from_dict(kwargs)
