"""Power-aware pricing analysis.

Section 6: "job execution time and job size cannot be used as a proxy
for fair pricing … longer-running and larger-size jobs tend to consume
higher per-node power and hence have higher energy cost per node and per
time unit." This module quantifies the mispricing: compare each job's
node-hour-proportional charge against its energy-proportional charge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError
from repro.telemetry.dataset import JobDataset

__all__ = ["PricingComparison", "compare_pricing"]


@dataclass(frozen=True)
class PricingComparison:
    """Node-hour vs energy pricing over one dataset."""

    system: str
    n_jobs: int
    # Per-job ratio energy_share / node_hour_share (1 = fair).
    ratio: np.ndarray
    # Fraction of jobs under-charged by node-hours by >10%.
    frac_undercharged_10pct: float
    # Fraction over-charged by >10%.
    frac_overcharged_10pct: float
    # Correlation of the ratio with job size (positive ⇒ big jobs
    # subsidized by small ones under node-hour pricing).
    ratio_vs_nodes_spearman: float

    @property
    def max_mispricing(self) -> float:
        """Largest relative deviation from fair share."""
        return float(np.max(np.abs(self.ratio - 1.0)))


def compare_pricing(dataset: JobDataset) -> PricingComparison:
    """Quantify node-hour mispricing against energy-true charging."""
    from repro.stats.correlation import spearman

    jobs = dataset.jobs
    if len(jobs) < 3:
        raise PolicyError("pricing comparison needs at least 3 jobs")
    node_hours = jobs["node_hours"].astype(float)
    energy = jobs["energy_j"].astype(float)
    if np.any(node_hours <= 0) or np.any(energy <= 0):
        raise PolicyError("jobs must have positive node-hours and energy")
    nh_share = node_hours / node_hours.sum()
    en_share = energy / energy.sum()
    ratio = en_share / nh_share
    rho = spearman(jobs["nodes"].astype(float), ratio).statistic
    return PricingComparison(
        system=dataset.spec.name,
        n_jobs=len(jobs),
        ratio=ratio,
        frac_undercharged_10pct=float(np.mean(ratio > 1.10)),
        frac_overcharged_10pct=float(np.mean(ratio < 0.90)),
        ratio_vs_nodes_spearman=float(rho),
    )
