"""Facility energy and cost accounting.

Turns a dataset into the numbers an operations meeting needs: facility
energy over the window (with PUE), the electricity bill, the bill share
wasted on stranded provisioning, and per-user energy bills under
node-hour vs energy-true charging (the Section 6 pricing discussion in
currency rather than ratios).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError
from repro.frames import Table
from repro.telemetry.dataset import JobDataset
from repro.units import MINUTE, joules_to_kwh

__all__ = ["EnergyAccount", "account_energy", "user_bills"]


@dataclass(frozen=True)
class EnergyAccount:
    """Window-level energy/cost summary of one system."""

    system: str
    window_days: float
    pue: float
    price_per_kwh: float
    # Energy actually drawn by compute nodes (jobs + idle floor), at the
    # facility meter (× PUE).
    facility_kwh: float
    facility_cost: float
    # What the facility would pay if provisioning were fully used (TDP).
    provisioned_kwh: float
    provisioned_cost: float
    # Energy attributable to jobs alone.
    job_kwh: float

    @property
    def stranded_cost(self) -> float:
        """Bill difference between provisioned and drawn power."""
        return self.provisioned_cost - self.facility_cost

    @property
    def idle_overhead_fraction(self) -> float:
        """Share of drawn energy not attributable to jobs."""
        drawn = self.facility_kwh / self.pue
        if drawn <= 0:
            raise PolicyError("no drawn energy in window")
        return 1.0 - self.job_kwh / drawn


def account_energy(
    dataset: JobDataset, price_per_kwh: float = 0.25, pue: float = 1.25
) -> EnergyAccount:
    """Meter the window. ``price_per_kwh`` in your currency; PUE ≥ 1."""
    if price_per_kwh <= 0:
        raise PolicyError("price_per_kwh must be positive")
    if pue < 1.0:
        raise PolicyError("PUE cannot be below 1")
    n_minutes = int(np.ceil(dataset.horizon_s / MINUTE))
    drawn_j = float(dataset.total_power_watts()[:n_minutes].sum() * MINUTE)
    job_j = float(dataset.job_power_watts[:n_minutes].sum() * MINUTE)
    provisioned_j = dataset.spec.total_tdp_watts * n_minutes * MINUTE
    facility_kwh = float(joules_to_kwh(drawn_j)) * pue
    provisioned_kwh = float(joules_to_kwh(provisioned_j)) * pue
    return EnergyAccount(
        system=dataset.spec.name,
        window_days=dataset.horizon_s / 86400.0,
        pue=pue,
        price_per_kwh=price_per_kwh,
        facility_kwh=facility_kwh,
        facility_cost=facility_kwh * price_per_kwh,
        provisioned_kwh=provisioned_kwh,
        provisioned_cost=provisioned_kwh * price_per_kwh,
        job_kwh=float(joules_to_kwh(job_j)),
    )


def user_bills(
    dataset: JobDataset, price_per_kwh: float = 0.25, pue: float = 1.25
) -> Table:
    """Per-user bills under node-hour-proportional vs energy-true charging.

    The total bill (the facility's job-attributable cost) is identical
    under both schemes; what differs is who pays it. The table's
    ``delta`` column is each user's gain (+) or loss (−) when the site
    switches from node-hour to energy-true charging.
    """
    account = account_energy(dataset, price_per_kwh=price_per_kwh, pue=pue)
    pot = account.job_kwh * pue * price_per_kwh
    totals = dataset.jobs.group_by("user").agg(
        node_hours=("node_hours", "sum"),
        energy_j=("energy_j", "sum"),
        n_jobs=("job_id", "count"),
    )
    nh = totals["node_hours"].astype(float)
    en = totals["energy_j"].astype(float)
    bill_nh = pot * nh / nh.sum()
    bill_energy = pot * en / en.sum()
    return (
        totals
        .with_column("bill_node_hours", bill_nh)
        .with_column("bill_energy_true", bill_energy)
        .with_column("delta", bill_nh - bill_energy)
        .sort_by("delta", descending=True)
    )
