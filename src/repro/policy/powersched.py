"""Power-aware scheduling under a system-wide budget.

Sections 3/6 of the paper: instead of provisioning for worst-case TDP,
cap the whole system at a budget near the observed draw and make the
scheduler enforce it — a job starts only if the predicted system power
stays under the cap. :class:`PowerAwareSimulator` extends the
FCFS+backfill engine with that admission rule (using each job's
*predicted* per-node power, i.e. what the Fig 14 models provide), and
:func:`evaluate_power_capped_scheduling` quantifies the cost of a budget
sweep: added wait time and lost utilization versus the uncapped run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import PolicyError, SchedulerError
from repro.scheduler.job import ScheduledJob
from repro.scheduler.simulator import SchedulerConfig, Simulator
from repro.workload.generator import JobSpec

__all__ = ["PowerAwareSimulator", "PowerSchedulingOutcome",
           "evaluate_power_capped_scheduling"]


class PowerAwareSimulator(Simulator):
    """FCFS + EASY backfill with a system-power admission constraint.

    Parameters
    ----------
    config:
        Base engine configuration.
    budget_watts:
        System-wide power budget for *job* power (idle draw of empty
        nodes is constant and excluded from the controlled quantity).
    predictor:
        Maps a :class:`JobSpec` to its predicted per-node watts. The
        admission check charges ``nodes × prediction × (1 + headroom)``
        per job, mirroring the paper's predicted+15% allocation.
    headroom:
        Safety margin on top of the prediction.
    """

    def __init__(
        self,
        config: SchedulerConfig,
        budget_watts: float,
        predictor: Callable[[JobSpec], float],
        headroom: float = 0.15,
    ) -> None:
        super().__init__(config)
        if budget_watts <= 0:
            raise PolicyError("budget_watts must be positive")
        if headroom < 0:
            raise PolicyError("headroom must be >= 0")
        self.budget_watts = float(budget_watts)
        self.predictor = predictor
        self.headroom = headroom
        self._committed_watts = 0.0
        self._commitments: dict[int, float] = {}

    def _charge(self, spec: JobSpec) -> float:
        predicted = float(self.predictor(spec))
        if predicted <= 0:
            raise PolicyError(f"job {spec.job_id}: non-positive power prediction")
        return spec.nodes * predicted * (1.0 + self.headroom)

    def _admissible(self, spec: JobSpec) -> bool:
        charge = self._charge(spec)
        if charge > self.budget_watts:
            raise SchedulerError(
                f"job {spec.job_id} alone exceeds the power budget "
                f"({charge:.0f} W > {self.budget_watts:.0f} W)"
            )
        return self._committed_watts + charge <= self.budget_watts

    def _on_start(self, job: ScheduledJob) -> None:
        charge = self._charge(job.spec)
        self._commitments[job.spec.job_id] = charge
        self._committed_watts += charge

    def _on_finish(self, job: ScheduledJob) -> None:
        self._committed_watts -= self._commitments.pop(job.spec.job_id)

    @property
    def committed_watts(self) -> float:
        return self._committed_watts


@dataclass(frozen=True)
class PowerSchedulingOutcome:
    """Capped-vs-uncapped comparison for one budget level."""

    budget_fraction: float  # of total node TDP
    mean_wait_uncapped_s: float
    mean_wait_capped_s: float
    makespan_uncapped_s: int
    makespan_capped_s: int
    # Highest committed job power as a fraction of the budget.
    peak_commitment_fraction: float

    @property
    def wait_penalty_s(self) -> float:
        return self.mean_wait_capped_s - self.mean_wait_uncapped_s

    @property
    def makespan_penalty(self) -> float:
        return self.makespan_capped_s / max(1, self.makespan_uncapped_s) - 1.0


def evaluate_power_capped_scheduling(
    jobs: Sequence[JobSpec],
    num_nodes: int,
    node_tdp_watts: float,
    budget_fraction: float,
    predictor: Callable[[JobSpec], float] | None = None,
    headroom: float = 0.15,
) -> PowerSchedulingOutcome:
    """Run the same trace uncapped and power-capped; compare the cost.

    ``predictor`` defaults to an oracle using each job's nominal power
    fraction — the upper bound of what a Fig 14 model can deliver.
    """
    if not 0 < budget_fraction <= 1:
        raise PolicyError("budget_fraction must be in (0, 1]")
    jobs = list(jobs)
    if not jobs:
        raise PolicyError("no jobs to schedule")
    predictor = predictor or (lambda spec: spec.power_fraction * node_tdp_watts)

    baseline = Simulator(SchedulerConfig(num_nodes=num_nodes)).run(jobs)
    budget = budget_fraction * num_nodes * node_tdp_watts
    capped_sim = PowerAwareSimulator(
        SchedulerConfig(num_nodes=num_nodes), budget, predictor, headroom
    )
    capped = capped_sim.run(jobs)

    def mean_wait(results: list[ScheduledJob]) -> float:
        return float(np.mean([r.wait_s for r in results]))

    def makespan(results: list[ScheduledJob]) -> int:
        return max(r.end_s for r in results)

    # Reconstruct the peak committed power of the capped run.
    events: list[tuple[int, float]] = []
    for r in capped:
        charge = r.spec.nodes * predictor(r.spec) * (1 + headroom)
        events.append((r.start_s, charge))
        events.append((r.end_s, -charge))
    events.sort()
    level, peak = 0.0, 0.0
    for _, delta in events:
        level += delta
        peak = max(peak, level)

    return PowerSchedulingOutcome(
        budget_fraction=budget_fraction,
        mean_wait_uncapped_s=mean_wait(baseline),
        mean_wait_capped_s=mean_wait(capped),
        makespan_uncapped_s=makespan(baseline),
        makespan_capped_s=makespan(capped),
        peak_commitment_fraction=peak / budget,
    )
