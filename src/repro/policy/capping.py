"""Static per-job power capping at predicted power + headroom.

The paper (Sec. 5, end): "system administrators can apply the power cap
at a level which is higher than 15% of the predicted value of the
per-node power consumption … and minimize the risk of performance
degradation", justified by the low temporal variance.

:func:`evaluate_capping` replays instrumented traces under such a cap
and reports (a) the power the cap reclaims versus TDP provisioning and
(b) how often and how badly jobs would have been throttled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError
from repro.telemetry.dataset import JobDataset

__all__ = ["StaticCapPolicy", "CappingOutcome", "evaluate_capping"]


@dataclass(frozen=True)
class StaticCapPolicy:
    """Cap each job's nodes at ``predicted × (1 + headroom)`` watts."""

    headroom: float = 0.15

    def __post_init__(self) -> None:
        if self.headroom < 0:
            raise PolicyError("headroom must be >= 0")

    def cap_for(self, predicted_watts) -> np.ndarray:
        return np.asarray(predicted_watts, dtype=float) * (1.0 + self.headroom)


@dataclass(frozen=True)
class CappingOutcome:
    """Replay result of a static-cap policy over instrumented traces."""

    system: str
    n_jobs: int
    headroom: float
    # Fraction of node-minutes where the cap bound (throttled) the node.
    throttled_node_minute_fraction: float
    # Share of jobs never throttled at all.
    frac_jobs_unthrottled: float
    # Mean relative energy clipped away from throttled jobs (a proxy for
    # worst-case slowdown under a hard cap).
    mean_energy_clipped_fraction: float
    # Provisioned power saved versus TDP-provisioning every node.
    provisioned_power_saved_fraction: float


def evaluate_capping(
    dataset: JobDataset,
    policy: StaticCapPolicy = StaticCapPolicy(),
    prediction_error: float = 0.0,
) -> CappingOutcome:
    """Replay the instrumented traces under per-job static caps.

    ``prediction_error`` models a systematic under-prediction: the cap is
    computed from ``true_mean × (1 − prediction_error)``. With the
    paper's BDT accuracy (<10% error for 90% of jobs), 0.05–0.10 is the
    realistic range.
    """
    if not 0 <= prediction_error < 1:
        raise PolicyError("prediction_error must be in [0, 1)")
    traces = list(dataset.traces.values())
    if not traces:
        raise PolicyError("dataset has no instrumented traces to replay")

    tdp = dataset.spec.node_tdp_watts
    throttled_minutes = 0
    total_minutes = 0
    unthrottled_jobs = 0
    clipped_fractions = []
    caps = []
    for trace in traces:
        predicted = trace.per_node_power() * (1.0 - prediction_error)
        cap = float(policy.cap_for(predicted))
        caps.append(cap)
        over = trace.matrix > cap
        n_over = int(np.count_nonzero(over))
        throttled_minutes += n_over
        total_minutes += trace.matrix.size
        if n_over == 0:
            unthrottled_jobs += 1
            clipped_fractions.append(0.0)
        else:
            clipped = np.clip(trace.matrix - cap, 0.0, None).sum()
            clipped_fractions.append(float(clipped / trace.matrix.sum()))

    mean_cap = float(np.mean(caps))
    return CappingOutcome(
        system=dataset.spec.name,
        n_jobs=len(traces),
        headroom=policy.headroom,
        throttled_node_minute_fraction=throttled_minutes / total_minutes,
        frac_jobs_unthrottled=unthrottled_jobs / len(traces),
        mean_energy_clipped_fraction=float(np.mean(clipped_fractions)),
        provisioned_power_saved_fraction=float(1.0 - mean_cap / tdp),
    )
