"""Hardware over-provisioning under a fixed facility power budget.

Sections 3/6: because jobs draw well below TDP, a facility provisioned
for ``N × TDP`` watts can host more than ``N`` nodes if it caps system
power at the observed level — turning stranded power into throughput
(the Patki/Sarood line of work the paper cites).

:func:`evaluate_overprovisioning` answers: given this dataset's measured
power profile, how many extra nodes fit in the original budget, and what
throughput gain does that imply at the observed utilization?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError
from repro.telemetry.dataset import JobDataset

__all__ = ["OverprovisionOutcome", "evaluate_overprovisioning"]


@dataclass(frozen=True)
class OverprovisionOutcome:
    """Sizing result for one system."""

    system: str
    original_nodes: int
    budget_watts: float
    # Per-node power level the sizing is based on (a high quantile of
    # observed node draw, not TDP).
    sizing_watts_per_node: float
    supported_nodes: int
    extra_nodes: int
    # Relative node-capacity (≈ throughput) gain.
    throughput_gain: float
    # Probability that the observed historical draw, scaled to the new
    # node count, would have exceeded the budget (requires capping).
    budget_exceedance_fraction: float


def evaluate_overprovisioning(
    dataset: JobDataset, sizing_quantile: float = 0.99, safety_margin: float = 0.05
) -> OverprovisionOutcome:
    """Size an over-provisioned system inside the original power budget.

    The per-node sizing level is the ``sizing_quantile`` of the observed
    per-minute *average node draw* (total power / total nodes), inflated
    by ``safety_margin``. The node count that fits is then
    ``budget / sizing_level``.
    """
    if not 0 < sizing_quantile <= 1:
        raise PolicyError("sizing_quantile must be in (0, 1]")
    if safety_margin < 0:
        raise PolicyError("safety_margin must be >= 0")
    spec = dataset.spec
    budget = spec.total_tdp_watts
    node_draw = dataset.total_power_watts() / spec.num_nodes
    if len(node_draw) == 0:
        raise PolicyError("dataset has an empty power timeline")
    sizing = float(np.quantile(node_draw, sizing_quantile)) * (1.0 + safety_margin)
    if sizing <= 0:
        raise PolicyError("observed node draw is zero; cannot size")
    supported = int(budget / sizing)
    supported = max(supported, spec.num_nodes)
    # If history repeated on the bigger machine (same mix, proportionally
    # more jobs), total draw scales with the node ratio.
    scaled_draw = dataset.total_power_watts() * (supported / spec.num_nodes)
    exceed = float(np.mean(scaled_draw > budget))
    return OverprovisionOutcome(
        system=spec.name,
        original_nodes=spec.num_nodes,
        budget_watts=budget,
        sizing_watts_per_node=sizing,
        supported_nodes=supported,
        extra_nodes=supported - spec.num_nodes,
        throughput_gain=supported / spec.num_nodes - 1.0,
        budget_exceedance_fraction=exceed,
    )
