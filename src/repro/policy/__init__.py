"""Power-management policies derived from the paper's implications.

Section 6 argues that the characterization enables concrete mechanisms:

* **static per-job power capping** at predicted-power + headroom
  (:mod:`~repro.policy.capping`) — safe because temporal variance is low,
* **hardware over-provisioning** under a system-wide power budget
  (:mod:`~repro.policy.overprovision`) — profitable because of stranded
  power, and
* **power-aware pricing** (:mod:`~repro.policy.pricing`) — needed because
  node-hours under-charge long/large (higher-power) jobs.

These back the ablation benches (A1/A2 in DESIGN.md).
"""

from repro.policy.capping import CappingOutcome, StaticCapPolicy, evaluate_capping
from repro.policy.energy import EnergyAccount, account_energy, user_bills
from repro.policy.overprovision import OverprovisionOutcome, evaluate_overprovisioning
from repro.policy.powersched import (
    PowerAwareSimulator,
    PowerSchedulingOutcome,
    evaluate_power_capped_scheduling,
)
from repro.policy.pricing import PricingComparison, compare_pricing

__all__ = [
    "StaticCapPolicy",
    "CappingOutcome",
    "evaluate_capping",
    "OverprovisionOutcome",
    "evaluate_overprovisioning",
    "PricingComparison",
    "compare_pricing",
    "PowerAwareSimulator",
    "PowerSchedulingOutcome",
    "evaluate_power_capped_scheduling",
    "EnergyAccount",
    "account_energy",
    "user_bills",
]
