"""Score detector answers against a bundle's derived ground truth.

The grader never trusts a detector's framing: truth is the injector
ledger baked into the bundle (which points actually fired, when), and
an answer is judged on three axes (docs/INCIDENTS.md):

* **detection** — did the detector's headline verdict match whether any
  fault fired? On the fault-free control any ``detected=True`` is a
  false alarm.
* **localization** — precision / recall / F1 of the predicted point set
  against the fired set.
* **timing** — per correctly-localized point, time-to-detect (onset
  estimate minus the point's first fire time) and whether the estimate
  lands inside ``onset_tolerance_s`` of the truth.

:class:`Scorecard` aggregates one detector's grades over a batch of
bundles and enforces the benchmark's headline gates: perfect recall on
every single-point scenario, zero false positives on the control.
``tools/incidents_bench.py`` commits the scorecard; CI smoke asserts
``scorecard.passed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import IncidentError
from repro.incidents.detectors import DetectorAnswer
from repro.incidents.orchestrator import IncidentBundle

__all__ = ["IncidentGrade", "Scorecard", "grade_answer"]


@dataclass(frozen=True)
class IncidentGrade:
    """One detector answer scored against one bundle."""

    scenario: str
    kind: str
    detector: str
    truth_points: tuple[str, ...]
    predicted_points: tuple[str, ...]
    detection_correct: bool
    false_alarm: bool
    precision: float
    recall: float
    f1: float
    ttd_s: dict[str, float] = field(default_factory=dict)
    onset_hits: int = 0
    onset_scored: int = 0

    @property
    def true_positives(self) -> tuple[str, ...]:
        return tuple(p for p in self.predicted_points if p in self.truth_points)

    @property
    def mean_ttd_s(self) -> float | None:
        """Mean time-to-detect over scored points, None when unscored."""
        if not self.ttd_s:
            return None
        return sum(self.ttd_s.values()) / len(self.ttd_s)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (scorecards)."""
        mean = self.mean_ttd_s
        return {
            "scenario": self.scenario,
            "kind": self.kind,
            "detector": self.detector,
            "truth_points": list(self.truth_points),
            "predicted_points": list(self.predicted_points),
            "detection_correct": self.detection_correct,
            "false_alarm": self.false_alarm,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "ttd_s": {p: round(t, 4) for p, t in sorted(self.ttd_s.items())},
            "mean_ttd_s": None if mean is None else round(mean, 4),
            "onset_hits": self.onset_hits,
            "onset_scored": self.onset_scored,
        }


def _truth_points(truth: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
    fired = truth.get("fired_points", {})
    if not isinstance(fired, Mapping):
        raise IncidentError("malformed ground truth: fired_points")
    return {str(p): dict(info) for p, info in fired.items()}


def grade_answer(
    bundle: IncidentBundle,
    answer: DetectorAnswer,
    onset_tolerance_s: float = 2.0,
) -> IncidentGrade:
    """Score one answer against one bundle (see module docs).

    Precision of an empty prediction on a faulted bundle is 0 by
    convention (the detector offered nothing); on the control an empty
    prediction is perfect — precision, recall, and F1 all read 1.0.
    """
    if answer.scenario != bundle.scenario_name:
        raise IncidentError(
            f"answer is for {answer.scenario!r}, "
            f"bundle is {bundle.scenario_name!r}"
        )
    truth = _truth_points(bundle.ground_truth)
    truth_set = set(truth)
    predicted = set(answer.points)
    tp = predicted & truth_set
    had_incident = bool(truth_set)

    if truth_set or predicted:
        precision = len(tp) / len(predicted) if predicted else 0.0
        recall = len(tp) / len(truth_set) if truth_set else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
    else:
        precision = recall = f1 = 1.0  # clean bundle, clean answer

    ttd: dict[str, float] = {}
    onset_hits = onset_scored = 0
    for point in sorted(tp):
        estimate = answer.points.get(point)
        if estimate is None:
            continue
        first_t = float(truth[point]["first_t"])
        onset_scored += 1
        ttd[point] = float(estimate) - first_t
        if abs(ttd[point]) <= onset_tolerance_s:
            onset_hits += 1

    return IncidentGrade(
        scenario=bundle.scenario_name,
        kind=str(bundle.manifest["scenario"].get("kind", "unknown")),
        detector=answer.detector,
        truth_points=tuple(sorted(truth_set)),
        predicted_points=tuple(sorted(predicted)),
        detection_correct=answer.detected == had_incident,
        false_alarm=answer.detected and not had_incident,
        precision=precision,
        recall=recall,
        f1=f1,
        ttd_s=ttd,
        onset_hits=onset_hits,
        onset_scored=onset_scored,
    )


@dataclass
class Scorecard:
    """One detector's grades over a batch of bundles, plus the gates."""

    detector: str
    grades: list[IncidentGrade] = field(default_factory=list)
    onset_tolerance_s: float = 2.0

    def add(self, grade: IncidentGrade) -> None:
        """Append one scenario's grade."""
        if grade.detector != self.detector:
            raise IncidentError(
                f"grade from {grade.detector!r} on a "
                f"{self.detector!r} scorecard"
            )
        self.grades.append(grade)

    # -- aggregates ------------------------------------------------------

    def _of_kind(self, kind: str) -> list[IncidentGrade]:
        return [g for g in self.grades if g.kind == kind]

    @property
    def mean_precision(self) -> float:
        return (
            sum(g.precision for g in self.grades) / len(self.grades)
            if self.grades
            else 0.0
        )

    @property
    def mean_recall(self) -> float:
        return (
            sum(g.recall for g in self.grades) / len(self.grades)
            if self.grades
            else 0.0
        )

    @property
    def single_point_recall(self) -> float:
        """Worst-case recall across single-point scenarios (1.0 = perfect)."""
        singles = self._of_kind("single")
        return min((g.recall for g in singles), default=1.0)

    @property
    def control_false_positives(self) -> int:
        """Points predicted on fault-free controls (must be zero)."""
        return sum(len(g.predicted_points) for g in self._of_kind("control"))

    def problems(self) -> list[str]:
        """Gate failures, empty when the benchmark's bar is met."""
        out = []
        if not self.grades:
            out.append("no scenarios were graded")
        missed = [
            g.scenario
            for g in self._of_kind("single")
            if g.recall < 1.0
        ]
        if missed:
            out.append(f"single-point scenario(s) missed: {missed}")
        if self.control_false_positives:
            fps = [
                f"{g.scenario}:{list(g.predicted_points)}"
                for g in self._of_kind("control")
                if g.predicted_points
            ]
            out.append(f"false positive(s) on control: {fps}")
        wrong = [g.scenario for g in self.grades if not g.detection_correct]
        if wrong:
            out.append(f"detection verdict wrong on: {wrong}")
        return out

    @property
    def passed(self) -> bool:
        return not self.problems()

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (the committed scorecard)."""
        return {
            "detector": self.detector,
            "onset_tolerance_s": self.onset_tolerance_s,
            "n_scenarios": len(self.grades),
            "mean_precision": round(self.mean_precision, 4),
            "mean_recall": round(self.mean_recall, 4),
            "single_point_recall": round(self.single_point_recall, 4),
            "control_false_positives": self.control_false_positives,
            "passed": self.passed,
            "problems": self.problems(),
            "scenarios": [g.to_dict() for g in self.grades],
        }

    def summary(self) -> str:
        """Human-readable digest for the CLI / bench tools."""
        lines = [
            f"incident benchmark: detector {self.detector!r}, "
            f"{len(self.grades)} scenario(s)",
        ]
        for g in self.grades:
            mean = g.mean_ttd_s
            ttd = "-" if mean is None else f"{mean:+.2f}s"
            lines.append(
                f"  {g.scenario:<24} {g.kind:<8} "
                f"P={g.precision:.2f} R={g.recall:.2f} F1={g.f1:.2f} "
                f"ttd={ttd}  pred={list(g.predicted_points)}"
            )
        lines.append(
            f"aggregate: precision {self.mean_precision:.2f}, "
            f"recall {self.mean_recall:.2f}, single-point recall "
            f"{self.single_point_recall:.2f}, control FPs "
            f"{self.control_false_positives}"
        )
        verdict = (
            "PASS" if self.passed else "FAIL: " + "; ".join(self.problems())
        )
        return "\n".join(lines + [verdict])
