"""Auto-graded incident benchmark over the served prediction system.

Turns the chaos ingredients — seeded
:class:`~repro.faults.plan.FaultPlan` schedules, the
:mod:`repro.obs` metrics/traces, the serving stack — into a graded
detect/localize/root-cause benchmark (the ROADMAP's AIOps scenario
harness, in the orchestrator/observer/grader mold of AIOpsLab-style
suites):

* :class:`~repro.incidents.scenarios.IncidentScenario` /
  :data:`~repro.incidents.scenarios.SCENARIOS` — the frozen catalog:
  ≥8 replayable incidents (single-point faults, compound storms,
  latency-only degradation, a fault-free control), each a seeded plan
  plus a :class:`~repro.incidents.scenarios.LoadProfile`;
* :class:`~repro.incidents.harness.ServedSystem` — the one reusable
  start/drive/observe/stop harness around a served system (ephemeral
  ports with bind retry, JSON client, fault arming, metric-delta
  windows); the pytest suites share it via ``tests/helpers/served.py``;
* :func:`~repro.incidents.orchestrator.run_scenario` /
  :class:`~repro.incidents.orchestrator.IncidentBundle` — runs one
  scenario against a live system while a
  :class:`~repro.incidents.orchestrator.LedgerInjector` timestamps
  every fired fault and an observer snapshots windowed metric deltas;
  everything lands in a self-contained bundle directory whose ground
  truth is *derived* from the ledger (same scenario ⇒ same digest);
* :class:`~repro.incidents.detectors.RuleBasedDetector` /
  :data:`~repro.incidents.detectors.BASELINE_DETECTORS` — the first
  detector family: threshold rules over the observable record (never
  the ledger or fault counters);
* :func:`~repro.incidents.grader.grade_answer` /
  :class:`~repro.incidents.grader.Scorecard` — precision / recall /
  time-to-detect scoring with the benchmark gates (perfect single-point
  recall, zero control false positives).

CLI: ``repro incidents list|run|grade``; ``tools/incidents_bench.py``
commits the baseline scorecard and ``tools/incidents_smoke.py`` gates
CI. See docs/INCIDENTS.md for the catalog, bundle format, and grading
metrics.

Every symbol resolves lazily (PEP 562), matching the sibling packages.
"""

__all__ = [
    "BASELINE_DETECTORS",
    "DetectorAnswer",
    "IncidentBundle",
    "IncidentGrade",
    "IncidentScenario",
    "LedgerInjector",
    "LoadProfile",
    "RuleBasedDetector",
    "SCENARIOS",
    "Scorecard",
    "ServedSystem",
    "get_detector",
    "get_scenario",
    "grade_answer",
    "run_scenario",
    "scenario_names",
]

# Lazy attribute map (PEP 562): name -> defining module.
_LAZY_ATTRS = {
    "IncidentScenario": "repro.incidents.scenarios",
    "LoadProfile": "repro.incidents.scenarios",
    "SCENARIOS": "repro.incidents.scenarios",
    "get_scenario": "repro.incidents.scenarios",
    "scenario_names": "repro.incidents.scenarios",
    "ServedSystem": "repro.incidents.harness",
    "IncidentBundle": "repro.incidents.orchestrator",
    "LedgerInjector": "repro.incidents.orchestrator",
    "run_scenario": "repro.incidents.orchestrator",
    "BASELINE_DETECTORS": "repro.incidents.detectors",
    "DetectorAnswer": "repro.incidents.detectors",
    "RuleBasedDetector": "repro.incidents.detectors",
    "get_detector": "repro.incidents.detectors",
    "IncidentGrade": "repro.incidents.grader",
    "Scorecard": "repro.incidents.grader",
    "grade_answer": "repro.incidents.grader",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so later lookups skip this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_ATTRS))
