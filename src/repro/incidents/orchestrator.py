"""Run one incident scenario against a live served system, fully recorded.

:func:`run_scenario` is the benchmark's engine (``repro incidents run``):

1. **Warmup (unarmed).** A scratch service is built for a small
   :class:`~repro.spec.ScenarioSpec` with the BDT model trained, the
   overlay dataset (a second digest the registry has not trained a
   model for) is pre-built, and a handful of reference requests pin the
   system's healthy latency. Nothing faulty has happened yet.
2. **Armed phase.** The scenario's seeded
   :class:`~repro.faults.plan.FaultPlan` is armed through a
   :class:`LedgerInjector` — a plain injector that additionally
   timestamps every fired call into an append-only ledger. While armed,
   closed-loop HTTP clients send the load profile's request mix
   (including injector-driven malformed bodies and cold-model overlay
   requests) and an operator thread runs forced pipeline rebuilds and
   artifact reads. An **observer** thread snapshots the process-wide
   metrics registry on a fixed cadence, recording per-window deltas;
   span traces stream to the bundle.
3. **Bundle.** Everything lands in one self-contained directory —
   ``bundle.json`` (scenario, ground truth, digest), ``ledger.jsonl``,
   ``events.jsonl``, ``windows.jsonl``, ``metrics.json``,
   ``trace.jsonl`` — that :mod:`repro.incidents.detectors` can analyze
   offline and :mod:`repro.incidents.grader` can score.

Ground truth is *derived*, not declared: the set of points that fired,
each point's first fired call index, and the schedule-consistency check
all come from the ledger. Because every armed rule forces its window's
first call index and the orchestrator guarantees each armed point is
reached, *which points fired at which first index* is a pure function
of the scenario — that deterministic core is hashed into
``manifest["digest"]`` (same scenario ⇒ same digest, run after run).

Detectors get the observable record (events, windows, metrics deltas,
traces, the latency reference) and must not read the ledger or the
``repro_fault_*`` metric families — those are the answer key.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import CacheError, IncidentError
from repro.faults.chaos import _MALFORMED_BODIES, default_soak_scenario
from repro.faults.injector import FaultInjector
from repro.incidents.harness import ServedSystem
from repro.incidents.scenarios import IncidentScenario, get_scenario
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import tracing_to
from repro.pipeline.cache import content_key
from repro.spec import ScenarioSpec

__all__ = [
    "LedgerInjector",
    "IncidentBundle",
    "run_scenario",
    "BUNDLE_MANIFEST",
]

#: File names inside an incident bundle directory.
BUNDLE_MANIFEST = "bundle.json"
_LEDGER = "ledger.jsonl"
_EVENTS = "events.jsonl"
_WINDOWS = "windows.jsonl"
_METRICS = "metrics.json"
_TRACE = "trace.jsonl"

#: Metric families that carry the answer key. Detectors must ignore
#: them; the grader uses them only to sanity-check bundles.
ANSWER_KEY_METRICS = ("repro_fault_calls_total", "repro_fault_fires_total")


class LedgerInjector(FaultInjector):
    """A :class:`FaultInjector` that timestamps every fire it makes.

    The ledger — one ``{"point", "call", "t"}`` record per fired call,
    ``t`` relative to :meth:`start_clock` — is the run's ground truth:
    which points actually fired, on which call indices, when.
    """

    def __init__(self, plan) -> None:
        super().__init__(plan)
        self._ledger: list[dict[str, Any]] = []
        self._ledger_lock = threading.Lock()
        self._t0: float | None = None

    def start_clock(self) -> float:
        """Zero the ledger clock (call when the armed phase begins)."""
        self._t0 = time.monotonic()
        return self._t0

    def elapsed(self) -> float:
        """Seconds since :meth:`start_clock` (0.0 before it)."""
        return 0.0 if self._t0 is None else time.monotonic() - self._t0

    def _record_fire(self, point: str, n: int) -> None:
        record = {"point": point, "call": n, "t": round(self.elapsed(), 6)}
        with self._ledger_lock:
            self._ledger.append(record)

    def ledger(self) -> list[dict[str, Any]]:
        """A copy of the fire ledger, in fire order."""
        with self._ledger_lock:
            return list(self._ledger)


# -- metric-state (de)serialization ---------------------------------------
# snapshot()/delta() key series by label-value tuples, which JSON cannot
# represent as object keys; bundles store them the way
# MetricsRegistry.dump() does: sorted [[labels...], value] pairs.


def _encode_state(
    state: Mapping[str, Mapping[tuple[str, ...], float]],
) -> dict[str, list]:
    return {
        name: [[list(labels), value] for labels, value in sorted(series.items())]
        for name, series in sorted(state.items())
    }


def _decode_state(data: Mapping[str, list]) -> dict[str, dict[tuple[str, ...], float]]:
    return {
        name: {tuple(labels): value for labels, value in series}
        for name, series in data.items()
    }


# -- the incident bundle ---------------------------------------------------


@dataclass
class IncidentBundle:
    """One recorded incident, loaded back from (or about to become) disk.

    ``manifest`` mirrors ``bundle.json``: the scenario spec, the load's
    latency reference, the derived ground truth, and the deterministic
    ``digest``. ``metrics`` holds decoded before/after/delta snapshot
    states; ``windows`` each carry a decoded per-window ``series`` delta.
    """

    path: Path
    manifest: dict[str, Any]
    ledger: list[dict[str, Any]] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    windows: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, dict[str, dict[tuple[str, ...], float]]] = field(
        default_factory=dict
    )

    @property
    def scenario_name(self) -> str:
        return self.manifest["scenario"]["name"]

    @property
    def digest(self) -> str:
        return self.manifest["digest"]

    @property
    def ground_truth(self) -> dict[str, Any]:
        return self.manifest["ground_truth"]

    def metric_delta(self) -> dict[str, dict[tuple[str, ...], float]]:
        """The armed-phase registry delta (detector input)."""
        return self.metrics.get("delta", {})

    @classmethod
    def load(cls, path: str | Path) -> "IncidentBundle":
        """Read a bundle directory written by :func:`run_scenario`."""
        path = Path(path)
        manifest_path = path / BUNDLE_MANIFEST
        if not manifest_path.is_file():
            raise IncidentError(f"not an incident bundle: {path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise IncidentError(f"malformed bundle manifest {manifest_path}: {exc}") from None
        bundle = cls(path=path, manifest=manifest)
        bundle.ledger = _read_jsonl(path / _LEDGER)
        bundle.events = _read_jsonl(path / _EVENTS)
        for window in _read_jsonl(path / _WINDOWS):
            window["series"] = _decode_state(window.get("series", {}))
            bundle.windows.append(window)
        metrics_path = path / _METRICS
        if metrics_path.is_file():
            raw = json.loads(metrics_path.read_text())
            bundle.metrics = {k: _decode_state(v) for k, v in raw.items()}
        return bundle


def _read_jsonl(path: Path) -> list[dict[str, Any]]:
    if not path.is_file():
        return []
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def _write_jsonl(path: Path, records: list[dict[str, Any]]) -> None:
    with path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


# -- the observer ----------------------------------------------------------


class _Observer(threading.Thread):
    """Snapshots the metrics registry on a cadence, recording deltas.

    Each window is ``{"t0", "t1", "series"}`` with ``series`` the
    encoded registry movement inside the window. A final window is
    always cut on :meth:`finish` so short runs still get coverage.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        clock: Callable[[], float],
        interval_s: float,
    ) -> None:
        super().__init__(name="incident-observer", daemon=True)
        self._metrics = metrics
        self._clock = clock
        self._interval_s = max(0.05, interval_s)
        self._halt = threading.Event()
        self.windows: list[dict[str, Any]] = []
        self._last_state = metrics.snapshot()
        self._last_t = clock()

    def _cut_window(self) -> None:
        state = self._metrics.snapshot()
        now = self._clock()
        delta = MetricsRegistry.delta(self._last_state, state)
        self.windows.append(
            {
                "t0": round(self._last_t, 6),
                "t1": round(now, 6),
                "series": _encode_state(delta),
            }
        )
        self._last_state = state
        self._last_t = now

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            self._cut_window()

    def finish(self) -> list[dict[str, Any]]:
        """Stop observing, cut the final window, return all windows."""
        self._halt.set()
        self.join(timeout=10.0)
        self._cut_window()
        return self.windows


# -- load drivers ----------------------------------------------------------


def _categorize(status: int, body: Any, malformed: bool) -> str:
    if status == 200:
        degraded = isinstance(body, Mapping) and body.get("degraded")
        return "degraded" if degraded else "ok"
    if status == 400:
        return "malformed_rejected" if malformed else "rejected"
    return "server_error"


def _client_loop(
    system: ServedSystem,
    injector: LedgerInjector,
    scenario: IncidentScenario,
    client_id: int,
    users: list[str],
    overlay_seed: int,
    events: list[dict[str, Any]],
    events_lock: threading.Lock,
) -> None:
    """One closed-loop client: a deterministic number of mixed requests."""
    load = scenario.load
    for i in range(load.requests_per_client):
        # Client-driven injection point: the server never knows a bad
        # body is coming, it just has to answer 400 and stay up.
        malformed = injector.fire("http.malformed")
        raw_body: bytes | None = None
        payload: dict[str, Any] | None = None
        if malformed:
            raw_body = _MALFORMED_BODIES[i % len(_MALFORMED_BODIES)]
        else:
            payload = {
                "model": "BDT",
                "jobs": [
                    {
                        "user": users[(client_id + i) % len(users)],
                        "nodes": 1 + i % 4,
                        "req_walltime_s": 3600 + 60 * (i % 7),
                    }
                ],
            }
            if load.overlay_every and (i + 1) % load.overlay_every == 0:
                # Cold model on a fresh dataset digest: the registry must
                # train, so the registry.train point sees armed traffic.
                payload["model"] = "online"
                payload["scenario"] = {"seed": overlay_seed}
        t_send = injector.elapsed()
        t0 = time.perf_counter()
        try:
            status, _, body = system.request(
                "POST", "/v1/predict", payload=payload, raw_body=raw_body
            )
            category = _categorize(status, body, malformed)
        except Exception:
            status, category = 0, "lost"
        event = {
            "t": round(t_send, 6),
            "source": f"client-{client_id}",
            "kind": "request",
            "status": status,
            "category": category,
            "malformed": bool(malformed),
            "latency_s": round(time.perf_counter() - t0, 6),
        }
        with events_lock:
            events.append(event)
        if load.think_time_s:
            time.sleep(load.think_time_s)


def _ops_loop(
    scenario: IncidentScenario,
    overlay: ScenarioSpec,
    cache_root: Path,
    injector: LedgerInjector,
    events: list[dict[str, Any]],
    events_lock: threading.Lock,
) -> None:
    """Operator activity: forced pipeline rebuilds and artifact reads.

    This is what drives the cache.write / telemetry.drop points (the
    rebuild) and cache.read / cache.corrupt (the reads). Every outcome —
    success, gap-filled telemetry, or a typed failure — is an event a
    detector may use; the *exception type plus operation* is the
    observable, never the injector's own accounting.
    """
    from repro.pipeline import ArtifactCache, run_pipeline
    from repro.pipeline.config import ShardConfig, stage_key

    load = scenario.load
    cache = ArtifactCache(cache_root)
    shard = ShardConfig.from_scenario(overlay)
    key = stage_key(shard, "schedule")

    def emit(kind: str, **extra: Any) -> None:
        with events_lock:
            events.append(
                {"t": round(injector.elapsed(), 6), "source": "ops",
                 "kind": kind, **extra}
            )

    for _ in range(load.ops_rounds):
        try:
            manifest = run_pipeline([shard], cache_dir=cache_root, force=True)
        except CacheError as exc:
            emit("build_error", error_type="CacheError", message=str(exc))
        except pickle.UnpicklingError as exc:
            emit("build_error", error_type="UnpicklingError", message=str(exc))
        except Exception as exc:  # a faulted build must never kill the run
            emit("build_error", error_type=type(exc).__name__, message=str(exc))
        else:
            emit("build_ok", gaps=int(manifest.n_gaps))
        for _ in range(load.reads_per_round):
            try:
                cache.load_pickle("schedule", key)
            except pickle.UnpicklingError as exc:
                emit("read_error", error_type="UnpicklingError", message=str(exc))
            except CacheError as exc:
                emit("read_error", error_type="CacheError", message=str(exc))
            else:
                emit("read_ok")


# -- the orchestrator ------------------------------------------------------


def _ground_truth(injector: LedgerInjector) -> dict[str, Any]:
    """Derive the run's answer key from the injector's ledger."""
    plan = injector.plan
    fired: dict[str, dict[str, Any]] = {}
    for record in injector.ledger():
        entry = fired.setdefault(
            record["point"],
            {"fires": 0, "first_call": record["call"], "first_t": record["t"]},
        )
        entry["fires"] += 1
        entry["first_call"] = min(entry["first_call"], record["call"])
        entry["first_t"] = min(entry["first_t"], record["t"])
    schedule_consistent = all(
        injector.fires(point)
        == len(plan.schedule(point, injector.calls(point)))
        for point in plan.points
    )
    return {
        "armed_points": list(plan.points),
        "fired_points": fired,
        "schedule_consistent": schedule_consistent,
    }


def _bundle_digest(
    scenario: IncidentScenario, spec: ScenarioSpec, truth: dict[str, Any]
) -> str:
    """Hash of the run's deterministic core: same scenario ⇒ same digest.

    Covers the frozen scenario (plan + load), the served spec, the set
    of fired points, and each point's first fired call index — all pure
    functions of the scenario because armed rules force their window's
    first call and the load guarantees every armed point is reached.
    Wall-clock times and rate-dependent later fires are excluded.
    """
    return content_key(
        {
            "scenario": scenario.to_dict(),
            "spec": spec.to_dict(),
            "fired_points": sorted(truth["fired_points"]),
            "first_calls": {
                point: info["first_call"]
                for point, info in sorted(truth["fired_points"].items())
            },
        }
    )


def run_scenario(
    scenario: IncidentScenario | str,
    out_dir: str | Path,
    *,
    cache_dir: str | Path | None = None,
    spec: ScenarioSpec | None = None,
    observer_interval_s: float = 0.25,
    n_reference_requests: int = 6,
    verbose: bool = False,
) -> IncidentBundle:
    """Run one incident scenario end-to-end; returns the written bundle.

    ``out_dir`` gets a ``<scenario-name>/`` bundle directory (replaced
    if present). ``cache_dir`` is the scratch artifact cache — pass one
    to reuse warmed pipeline artifacts across scenarios in a batch run;
    the default builds (and removes) a private temporary cache so every
    run starts cold and reproducible. The served system always runs
    in-process (``workers=1``): fault arming is process-wide.
    """
    import tempfile

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    spec = spec if spec is not None else default_soak_scenario()
    overlay_seed = spec.seed + 1
    overlay = spec.replace(seed=overlay_seed)

    bundle_dir = Path(out_dir) / scenario.name
    if bundle_dir.exists():
        import shutil

        shutil.rmtree(bundle_dir)
    bundle_dir.mkdir(parents=True)

    scratch = None
    if cache_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-incident-")
        cache_dir = scratch.name
    cache_root = Path(cache_dir)

    events: list[dict[str, Any]] = []
    events_lock = threading.Lock()
    injector = LedgerInjector(scenario.plan)
    t_wall = time.perf_counter()

    try:
        with ServedSystem(
            spec, cache_dir=cache_root, warm=("BDT",), max_wait_ms=2.0
        ) as system:
            service = system.service
            users = sorted(service.registry.get(spec, "BDT").known_users)

            # Warmup, unarmed: pre-build the overlay dataset (the ops
            # reads and overlay training consume it) and pin the healthy
            # latency reference nothing faulty has touched yet.
            from repro.pipeline import run_pipeline
            from repro.pipeline.config import ShardConfig

            run_pipeline(
                [ShardConfig.from_scenario(overlay)], cache_dir=cache_root
            )
            reference_latencies = []
            for i in range(n_reference_requests):
                t0 = time.perf_counter()
                status, _, _ = system.post(
                    "/v1/predict",
                    {
                        "model": "BDT",
                        "jobs": [
                            {
                                "user": users[i % len(users)],
                                "nodes": 1 + i % 4,
                                "req_walltime_s": 3600,
                            }
                        ],
                    },
                )
                if status == 200:
                    reference_latencies.append(time.perf_counter() - t0)
            ref_latency_s = (
                sum(reference_latencies) / len(reference_latencies)
                if reference_latencies
                else 0.0
            )

            # Armed phase: clients + ops under the plan, fully observed.
            metrics_before = REGISTRY.snapshot()
            injector.start_clock()
            observer = _Observer(REGISTRY, injector.elapsed, observer_interval_s)
            with tracing_to(bundle_dir / _TRACE):
                with system.armed(injector):
                    observer.start()
                    threads = [
                        threading.Thread(
                            target=_client_loop,
                            args=(system, injector, scenario, k, users,
                                  overlay_seed, events, events_lock),
                            name=f"incident-client-{k}",
                        )
                        for k in range(scenario.load.n_clients)
                    ]
                    threads.append(
                        threading.Thread(
                            target=_ops_loop,
                            args=(scenario, overlay, cache_root, injector,
                                  events, events_lock),
                            name="incident-ops",
                        )
                    )
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
                windows = observer.finish()
            duration_s = injector.elapsed()
            metrics_after = REGISTRY.snapshot()
    finally:
        if scratch is not None:
            scratch.cleanup()

    truth = _ground_truth(injector)
    manifest = {
        "format": "repro-incident-bundle/1",
        "scenario": scenario.to_dict(),
        "spec": spec.to_dict(),
        "overlay_seed": overlay_seed,
        "ref_latency_s": round(ref_latency_s, 6),
        "duration_s": round(duration_s, 3),
        "wall_seconds": round(time.perf_counter() - t_wall, 3),
        "n_events": len(events),
        "n_windows": len(windows),
        "ground_truth": truth,
        "digest": _bundle_digest(scenario, spec, truth),
    }

    events.sort(key=lambda e: (e["t"], e["source"], e.get("kind", "")))
    (bundle_dir / BUNDLE_MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    _write_jsonl(bundle_dir / _LEDGER, injector.ledger())
    _write_jsonl(bundle_dir / _EVENTS, events)
    _write_jsonl(bundle_dir / _WINDOWS, windows)
    (bundle_dir / _METRICS).write_text(
        json.dumps(
            {
                "before": _encode_state(metrics_before),
                "after": _encode_state(metrics_after),
                "delta": _encode_state(
                    MetricsRegistry.delta(metrics_before, metrics_after)
                ),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    if verbose:
        fired = ", ".join(sorted(truth["fired_points"])) or "none"
        print(
            f"[incidents] {scenario.name}: {len(events)} events, "
            f"{manifest['wall_seconds']}s wall, fired: {fired}"
        )
    bundle = IncidentBundle(path=bundle_dir, manifest=manifest)
    bundle.ledger = injector.ledger()
    bundle.events = events
    bundle.windows = [
        {**w, "series": _decode_state(w["series"])} for w in windows
    ]
    bundle.metrics = {
        "before": metrics_before,
        "after": metrics_after,
        "delta": MetricsRegistry.delta(metrics_before, metrics_after),
    }
    return bundle
