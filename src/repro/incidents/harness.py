"""One reusable way to run the served system: start, drive, observe, stop.

Before this module every consumer of the serving stack — the serve/
faults test suites, the chaos soak, the smoke tools, and now the
incident orchestrator — hand-rolled the same dance: build a
:class:`~repro.serve.http.PredictionServer` (or a
:class:`~repro.serve.forking.ForkingServer` pool), bind an ephemeral
port, spin the accept loop up in the background, speak
``http.client`` JSON at it, and tear everything down. Each copy had its
own bugs; the recurring one was the port-collision flake (an explicit
port raced another process between pick and bind, and the run died on
``EADDRINUSE`` instead of retrying).

:class:`ServedSystem` is the one copy:

* **start/stop** — builds the server (in-process threads, or a forked
  SO_REUSEPORT pool with ``workers > 1``), serves in the background,
  and closes idempotently; usable as a context manager.
* **bind retry** — an explicit port that loses a bind race is retried
  with backoff, then falls back to an ephemeral port unless pinned
  (``strict_port=True``).
* **HTTP client** — :meth:`request` / :meth:`get` / :meth:`post` speak
  JSON (or raw bytes) over a fresh connection, returning
  ``(status, headers, body)``.
* **fault arming** — :meth:`armed` arms a
  :class:`~repro.faults.plan.FaultPlan` (or a prebuilt injector) for a
  ``with`` block, process-wide, restoring the previous state on exit.
* **observation windows** — :meth:`snapshot` / :meth:`delta_since`
  bracket the process-wide metrics registry so a caller reads only the
  deltas its own traffic caused (registry isolation without resetting
  the shared registry).

``tests/helpers/served.py`` wraps this for pytest, and
:mod:`repro.incidents.orchestrator` drives entire graded incident
scenarios through it (docs/INCIDENTS.md).
"""

from __future__ import annotations

import http.client
import json
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.errors import IncidentError
from repro.faults.injector import FaultInjector
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["ServedSystem"]


class ServedSystem:
    """Start/stop harness around one served prediction system.

    Parameters
    ----------
    scenario / scenario_kwargs:
        The scenario the service answers for (anything
        :func:`repro.spec.as_scenario` accepts). Ignored when a prebuilt
        ``service`` is passed.
    service:
        An existing :class:`~repro.serve.service.PredictionService` to
        serve instead of building one — the serve-suite tests use this
        to front their custom-registry services. The harness then never
        closes the service itself, only the HTTP server (the caller owns
        the service's lifetime).
    workers:
        ``1`` (default) serves in-process on a ``ThreadingHTTPServer``;
        ``> 1`` runs the pre-forked SO_REUSEPORT pool
        (:class:`~repro.serve.forking.ForkingServer`). Forked workers
        are separate processes: :attr:`service` is ``None`` and
        process-wide fault arming does not reach them.
    port:
        ``0`` binds an ephemeral port (the default, collision-free).
        An explicit port is retried ``bind_retries`` times on
        ``EADDRINUSE``-style races, then falls back to an ephemeral
        port unless ``strict_port=True``.
    warm / cache_dir / registry / max_batch / max_wait_ms / lifecycle /
    lifecycle_dir / verbose:
        Passed through to :func:`repro.serve.create_server` (or the
        forking pool).
    """

    def __init__(
        self,
        scenario: Any = "emmy",
        *,
        service=None,
        workers: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        warm: tuple[str, ...] = (),
        cache_dir=None,
        registry=None,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        lifecycle: bool = False,
        lifecycle_dir=None,
        verbose: bool = False,
        bind_retries: int = 5,
        strict_port: bool = False,
        metrics: MetricsRegistry = REGISTRY,
        **scenario_kwargs: Any,
    ) -> None:
        if workers < 1:
            raise IncidentError("workers must be >= 1")
        if workers > 1 and service is not None:
            raise IncidentError("a prebuilt service cannot be forked")
        self.scenario = scenario
        self.scenario_kwargs = scenario_kwargs
        self.workers = workers
        self.host = host
        self.requested_port = port
        self.warm = tuple(warm)
        self.cache_dir = cache_dir
        self.registry = registry
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.lifecycle = lifecycle
        self.lifecycle_dir = lifecycle_dir
        self.verbose = verbose
        self.bind_retries = bind_retries
        self.strict_port = strict_port
        self.metrics = metrics
        self._service = service
        self._owns_service = service is None
        self._server = None
        self._pool = None
        self._port: int | None = None
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ServedSystem":
        """Build the server (with bind retry) and serve in the background."""
        if self._started:
            return self
        if self.workers > 1:
            self._start_pool()
        else:
            self._start_inprocess()
        self._started = True
        return self

    def _build(self, port: int):
        if self._service is not None:
            from repro.serve.http import PredictionServer

            return PredictionServer(
                self._service, host=self.host, port=port, verbose=self.verbose
            )
        from repro.serve import create_server

        return create_server(
            self.scenario,
            host=self.host,
            port=port,
            cache_dir=self.cache_dir,
            registry=self.registry,
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            warm=self.warm,
            verbose=self.verbose,
            lifecycle=self.lifecycle,
            lifecycle_dir=self.lifecycle_dir,
            **self.scenario_kwargs,
        )

    def _bind_attempts(self) -> Iterator[int]:
        """Ports to try, in order: the request, retries, ephemeral fallback."""
        attempts = 1 if self.requested_port == 0 else max(1, self.bind_retries)
        for _ in range(attempts):
            yield self.requested_port
        if self.requested_port != 0 and not self.strict_port:
            yield 0

    def _start_inprocess(self) -> None:
        last: OSError | None = None
        for i, port in enumerate(self._bind_attempts()):
            try:
                self._server = self._build(port)
                break
            except OSError as exc:
                # Lost a bind race (EADDRINUSE & friends): back off and
                # retry instead of flaking the whole run.
                last = exc
                time.sleep(min(0.05 * (i + 1), 0.5))
        else:
            raise IncidentError(
                f"could not bind {self.host}:{self.requested_port} "
                f"after {self.bind_retries} attempt(s): {last}"
            ) from last
        self._service = self._server.service
        self._port = self._server.port
        self._server.serve_in_background()

    def _start_pool(self) -> None:
        from repro.serve.forking import ForkingServer

        last: OSError | None = None
        for i, port in enumerate(self._bind_attempts()):
            pool = ForkingServer(
                self.scenario,
                workers=self.workers,
                host=self.host,
                port=port,
                cache_dir=self.cache_dir,
                max_batch=self.max_batch,
                max_wait_ms=self.max_wait_ms,
                warm=self.warm,
                lifecycle=self.lifecycle,
                lifecycle_dir=self.lifecycle_dir,
                **self.scenario_kwargs,
            )
            try:
                pool.start()
                self._pool = pool
                break
            except OSError as exc:
                last = exc
                pool.close()
                time.sleep(min(0.05 * (i + 1), 0.5))
        else:
            raise IncidentError(
                f"could not bind the worker pool on {self.host}:"
                f"{self.requested_port}: {last}"
            ) from last
        self._port = int(self._pool.address.rsplit(":", 1)[1])

    def stop(self) -> None:
        """Shut the server (and an owned service) down; idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._server is not None:
            if self._owns_service:
                self._server.close()
                self._service = None  # closed with the server; rebuilt on restart
            else:
                # A shared service's lifetime belongs to its caller: stop
                # only the HTTP front-end (PredictionServer.close() would
                # close the service too).
                if self._server._serving:
                    self._server.shutdown()
                    self._server._serving = False
                self._server.server_close()
            self._server = None
        self._started = False

    close = stop  # alias: every other server object in the repo says close()

    def __enter__(self) -> "ServedSystem":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing ------------------------------------------------------

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._started

    @property
    def service(self):
        """The in-process service, or ``None`` in forked mode."""
        return self._service

    @property
    def server(self):
        """The in-process :class:`PredictionServer`, or ``None`` (forked)."""
        return self._server

    @property
    def port(self) -> int:
        if self._port is None:
            raise IncidentError("system is not started")
        return self._port

    @property
    def address(self) -> str:
        """``host:port`` of the running system."""
        return f"{self.host}:{self.port}"

    @property
    def base_url(self) -> str:
        return f"http://{self.address}"

    # -- HTTP client -----------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Mapping | list | None = None,
        raw_body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
        timeout: float = 30.0,
        raw_response: bool = False,
    ) -> tuple[int, dict[str, str], Any]:
        """One HTTP exchange; returns ``(status, headers, body)``.

        ``payload`` is JSON-encoded; ``raw_body`` sends bytes verbatim
        (malformed-payload tests). The response body is JSON-decoded
        when possible, raw bytes otherwise — or always raw bytes with
        ``raw_response=True`` (NDJSON bulk replies, /metrics
        expositions: bodies whose shape, not parse, is under test).
        """
        body = raw_body
        if body is None and payload is not None:
            body = json.dumps(payload).encode()
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            data = response.read()
            resp_headers = dict(response.getheaders())
            status = response.status
        finally:
            conn.close()
        if raw_response:
            return status, resp_headers, data
        try:
            decoded: Any = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            decoded = data
        return status, resp_headers, decoded

    def get(self, path: str, **kwargs) -> tuple[int, dict[str, str], Any]:
        """``request("GET", ...)``."""
        return self.request("GET", path, **kwargs)

    def post(
        self, path: str, payload: Mapping | list | None = None, **kwargs
    ) -> tuple[int, dict[str, str], Any]:
        """``request("POST", ...)``."""
        return self.request("POST", path, payload=payload, **kwargs)

    # -- fault arming ----------------------------------------------------

    @contextmanager
    def armed(
        self, plan: "FaultPlan | FaultInjector"
    ) -> Iterator[FaultInjector]:
        """Arm a plan (or prebuilt injector) process-wide for the block.

        Forked workers are separate processes the in-process injector
        cannot reach, so arming a pool-backed system is refused loudly
        rather than silently observing nothing.
        """
        if self.workers > 1:
            raise IncidentError(
                "cannot arm an in-process fault plan against forked "
                "workers; run the system with workers=1"
            )
        injector = (
            plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
        )
        with injector:
            yield injector

    # -- observation windows ---------------------------------------------

    def snapshot(self) -> dict[str, dict[tuple[str, ...], float]]:
        """A metrics snapshot to bracket an observation window."""
        return self.metrics.snapshot()

    def delta_since(
        self, before: Mapping[str, Mapping[tuple[str, ...], float]]
    ) -> dict[str, dict[tuple[str, ...], float]]:
        """Per-series movement since ``before`` (this caller's traffic only)."""
        return MetricsRegistry.delta(before, self.metrics.snapshot())
