"""Baseline incident detectors: threshold rules over the observable record.

A detector reads an :class:`~repro.incidents.orchestrator.IncidentBundle`
— the armed-phase metric delta, the observer's windowed deltas, the
client/ops event log, and the healthy latency reference — and answers
three questions: *was there an incident?*, *which injection points does
the evidence localize?*, and *when did it start?* It must not read the
ledger or the ``repro_fault_*`` metric families (the answer key); the
grader scores it against those.

:class:`RuleBasedDetector` is the first family (docs/INCIDENTS.md): one
rule per failure mode, each mapping an observable signature to a point:

=====================  ====================================================
``batcher.crash``      ``repro_batcher_crashes_total`` moved
``registry.train``     ``repro_predict_outcomes_total{outcome=degraded}``
                       moved (the service fell back to the mean baseline)
``http.malformed``     ``repro_http_responses_total{status=400}`` moved
``cache.corrupt``      an operator read/build failed with UnpicklingError
``cache.read``         an operator *read* failed with CacheError
``cache.write``        an operator *build* failed with CacheError, with no
                       read-side CacheError to blame instead
``telemetry.drop``     a rebuild succeeded but had to gap-fill samples
``batcher.latency``    served-request latency ≥ both an absolute floor and
                       a multiple of the unfaulted reference latency
=====================  ====================================================

Onset estimates come from the first observer window where the rule's
metric moved (window start) or the first matching event's timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import IncidentError
from repro.incidents.orchestrator import IncidentBundle

__all__ = [
    "DetectorAnswer",
    "RuleBasedDetector",
    "BASELINE_DETECTORS",
    "get_detector",
]


@dataclass(frozen=True)
class DetectorAnswer:
    """What one detector concluded about one bundle.

    ``points`` maps each localized injection point to the detector's
    onset estimate in seconds since arming (``None`` when the rule has
    no usable timing signal). ``detected`` is the headline verdict —
    for a clean bundle it must stay False.
    """

    scenario: str
    detector: str
    detected: bool
    points: dict[str, float | None] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (``incidents grade`` answer files)."""
        return {
            "scenario": self.scenario,
            "detector": self.detector,
            "detected": self.detected,
            "points": dict(self.points),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DetectorAnswer":
        """Inverse of :meth:`to_dict`; unknown keys fail loudly."""
        data = dict(data)
        unknown = sorted(set(data) - {"scenario", "detector", "detected", "points"})
        if unknown:
            raise IncidentError(f"unknown detector-answer fields {unknown}")
        points = {
            str(p): (None if t is None else float(t))
            for p, t in dict(data.get("points", {})).items()
        }
        return cls(
            scenario=str(data["scenario"]),
            detector=str(data.get("detector", "unknown")),
            detected=bool(data["detected"]),
            points=points,
        )


def _series_total(
    delta: Mapping[str, Mapping[tuple[str, ...], float]],
    name: str,
    label: str | None = None,
) -> float:
    """Total movement of a family, optionally only rows carrying ``label``."""
    series = delta.get(name, {})
    if label is None:
        return float(sum(series.values()))
    return float(sum(v for labels, v in series.items() if label in labels))


def _first_window_t(
    windows: list[dict[str, Any]], name: str, label: str | None = None
) -> float | None:
    """Start time of the first observer window where ``name`` moved."""
    for window in windows:
        if _series_total(window.get("series", {}), name, label) > 0:
            return float(window["t0"])
    return None


def _first_event_t(
    events: list[dict[str, Any]], kind: str, **match: Any
) -> float | None:
    """Timestamp of the first event of ``kind`` matching all ``match``."""
    for event in events:
        if event.get("kind") != kind:
            continue
        if all(event.get(k) == v for k, v in match.items()):
            return float(event["t"])
    return None


class RuleBasedDetector:
    """The baseline threshold-rule detector (see module docs).

    Parameters
    ----------
    latency_floor_s:
        Absolute armed-phase mean-latency floor below which the latency
        rule never fires (keeps scheduler jitter from flagging healthy
        runs on slow machines).
    latency_ratio:
        Armed mean latency must also exceed ``latency_ratio`` × the
        bundle's unfaulted reference latency.
    min_evidence:
        How many matching events an event-based rule needs (1 = any).
        The ``conservative`` variant uses 2 to shrug off one-off blips
        at the cost of missing short incidents.
    """

    def __init__(
        self,
        name: str = "rules",
        latency_floor_s: float = 0.030,
        latency_ratio: float = 4.0,
        min_evidence: int = 1,
    ) -> None:
        if min_evidence < 1:
            raise IncidentError("min_evidence must be >= 1")
        self.name = name
        self.latency_floor_s = latency_floor_s
        self.latency_ratio = latency_ratio
        self.min_evidence = min_evidence

    # -- individual rules ------------------------------------------------

    def _events_of(
        self, bundle: IncidentBundle, kind: str, error_type: str | None = None
    ) -> list[dict[str, Any]]:
        return [
            e
            for e in bundle.events
            if e.get("kind") == kind
            and (error_type is None or e.get("error_type") == error_type)
        ]

    def _rule_batcher_crash(self, bundle: IncidentBundle) -> float | None:
        delta = bundle.metric_delta()
        if _series_total(delta, "repro_batcher_crashes_total") <= 0:
            return None
        t = _first_window_t(bundle.windows, "repro_batcher_crashes_total")
        return t if t is not None else 0.0

    def _rule_registry_train(self, bundle: IncidentBundle) -> float | None:
        delta = bundle.metric_delta()
        if _series_total(
            delta, "repro_predict_outcomes_total", "degraded"
        ) <= 0:
            return None
        t = _first_window_t(
            bundle.windows, "repro_predict_outcomes_total", "degraded"
        )
        if t is None:
            t = _first_event_t(bundle.events, "request", category="degraded")
        return t if t is not None else 0.0

    def _rule_http_malformed(self, bundle: IncidentBundle) -> float | None:
        delta = bundle.metric_delta()
        if _series_total(delta, "repro_http_responses_total", "400") <= 0:
            return None
        t = _first_window_t(
            bundle.windows, "repro_http_responses_total", "400"
        )
        return t if t is not None else 0.0

    def _rule_cache_corrupt(self, bundle: IncidentBundle) -> float | None:
        bad = self._events_of(bundle, "read_error", "UnpicklingError")
        bad += self._events_of(bundle, "build_error", "UnpicklingError")
        if len(bad) < self.min_evidence:
            return None
        return min(float(e["t"]) for e in bad)

    def _rule_cache_read(self, bundle: IncidentBundle) -> float | None:
        bad = self._events_of(bundle, "read_error", "CacheError")
        if len(bad) < self.min_evidence:
            return None
        return min(float(e["t"]) for e in bad)

    def _rule_cache_write(self, bundle: IncidentBundle) -> float | None:
        # A pure artifact read cannot reach the write path, so read-side
        # CacheErrors pin the blame on cache.read; only otherwise does a
        # failed build implicate the write path.
        if self._events_of(bundle, "read_error", "CacheError"):
            return None
        bad = self._events_of(bundle, "build_error", "CacheError")
        if len(bad) < self.min_evidence:
            return None
        return min(float(e["t"]) for e in bad)

    def _rule_telemetry_drop(self, bundle: IncidentBundle) -> float | None:
        gappy = [
            e
            for e in self._events_of(bundle, "build_ok")
            if e.get("gaps", 0) > 0
        ]
        if len(gappy) < self.min_evidence:
            return None
        return min(float(e["t"]) for e in gappy)

    def _rule_batcher_latency(self, bundle: IncidentBundle) -> float | None:
        served = [
            e
            for e in bundle.events
            if e.get("kind") == "request"
            and not e.get("malformed")
            and e.get("category") in ("ok", "degraded")
        ]
        if not served:
            return None
        mean = sum(e["latency_s"] for e in served) / len(served)
        ref = float(bundle.manifest.get("ref_latency_s", 0.0))
        threshold = max(self.latency_floor_s, self.latency_ratio * ref)
        if mean < threshold:
            return None
        for event in served:
            if event["latency_s"] >= threshold:
                return float(event["t"])
        return float(served[0]["t"])

    # -- the verdict -----------------------------------------------------

    def analyze(self, bundle: IncidentBundle) -> DetectorAnswer:
        """Run every rule over one bundle and assemble the answer."""
        rules = {
            "batcher.crash": self._rule_batcher_crash,
            "registry.train": self._rule_registry_train,
            "http.malformed": self._rule_http_malformed,
            "cache.corrupt": self._rule_cache_corrupt,
            "cache.read": self._rule_cache_read,
            "cache.write": self._rule_cache_write,
            "telemetry.drop": self._rule_telemetry_drop,
            "batcher.latency": self._rule_batcher_latency,
        }
        points: dict[str, float | None] = {}
        for point, rule in rules.items():
            onset = rule(bundle)
            if onset is not None:
                points[point] = round(onset, 6)
        return DetectorAnswer(
            scenario=bundle.scenario_name,
            detector=self.name,
            detected=bool(points),
            points=points,
        )


#: The shipped detector family. ``rules`` is the benchmark's headline
#: baseline; ``conservative`` trades recall on short incidents for
#: robustness against one-off blips.
BASELINE_DETECTORS: dict[str, RuleBasedDetector] = {
    "rules": RuleBasedDetector("rules"),
    "conservative": RuleBasedDetector("conservative", min_evidence=2),
}


def get_detector(name: str) -> RuleBasedDetector:
    """Look up a shipped detector; unknown names fail loudly."""
    try:
        return BASELINE_DETECTORS[name]
    except KeyError:
        raise IncidentError(
            f"unknown detector {name!r}; "
            f"known: {', '.join(BASELINE_DETECTORS)}"
        ) from None
