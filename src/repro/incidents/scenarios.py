"""The incident catalog: frozen, seeded scenarios the benchmark replays.

An :class:`IncidentScenario` is everything needed to reproduce one
incident bit-for-bit: a seeded :class:`~repro.faults.plan.FaultPlan`
(which injection points misbehave, on which call indices), a
:class:`LoadProfile` (how much client traffic and operator activity the
orchestrator drives while the plan is armed), and the metadata the
grader needs (scenario kind, the points a detector should localize).
Ground truth is *not* declared here — it is derived from the injector's
fire ledger after the run (:mod:`repro.incidents.orchestrator`), so a
scenario cannot lie about what actually happened.

The shipped :data:`SCENARIOS` registry spans the matrix the benchmark
grades (docs/INCIDENTS.md):

* a fault-free **control** (any detection is a false positive),
* **single-point** faults for every failure family — cache read/write
  errors, pickle corruption, a delayed corruption burst (onset-window
  scoring), batcher crashes, telemetry drops, malformed HTTP bodies,
  training failure (degraded mode), and latency-only degradation,
* **compound** incidents combining several of the above.

Every armed rule carries ``force_calls=(0,)`` (the delayed burst forces
its window's first index instead): with deterministic per-point
schedules this makes *which points fired* a pure function of the
scenario, which is what lets the orchestrator commit to a stable bundle
digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.errors import IncidentError
from repro.faults.plan import FaultPlan, FaultRule

__all__ = [
    "LoadProfile",
    "IncidentScenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class LoadProfile:
    """How the orchestrator exercises the system while a plan is armed.

    Parameters
    ----------
    n_clients / requests_per_client:
        Closed-loop HTTP predict clients and how many requests each
        sends. Request *counts* are deterministic; only thread
        interleaving varies.
    think_time_s:
        Sleep between a client's requests (0 = back-to-back).
    overlay_every:
        Every ``overlay_every``-th request per client asks for the cold
        ``online`` model on a scenario overlay (a dataset the registry
        has not trained yet), forcing it through ``registry.train``.
        ``0`` disables overlay traffic — only scenarios that target
        ``registry.train`` pay for the extra training work.
    ops_rounds / reads_per_round:
        Operator-style activity per round: one forced pipeline rebuild
        (exercising ``cache.write`` and ``telemetry.drop``) followed by
        ``reads_per_round`` artifact loads (exercising ``cache.read``
        and ``cache.corrupt``).
    """

    n_clients: int = 3
    requests_per_client: int = 12
    think_time_s: float = 0.0
    overlay_every: int = 0
    ops_rounds: int = 2
    reads_per_round: int = 3

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise IncidentError("load profile needs n_clients >= 1")
        if self.requests_per_client < 1:
            raise IncidentError("load profile needs requests_per_client >= 1")
        if self.think_time_s < 0:
            raise IncidentError("load profile think_time_s must be >= 0")
        if self.overlay_every < 0:
            raise IncidentError("load profile overlay_every must be >= 0")
        if self.ops_rounds < 0 or self.reads_per_round < 0:
            raise IncidentError("load profile ops knobs must be >= 0")

    @property
    def total_requests(self) -> int:
        """Deterministic total HTTP predict requests the profile sends."""
        return self.n_clients * self.requests_per_client

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (bundle manifests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LoadProfile":
        """Inverse of :meth:`to_dict`; unknown keys fail loudly."""
        data = dict(data)
        unknown = sorted(set(data) - {f.name for f in fields(cls)})
        if unknown:
            raise IncidentError(f"unknown load-profile fields {unknown}")
        return cls(**data)


@dataclass(frozen=True)
class IncidentScenario:
    """One frozen, replayable incident.

    ``kind`` is ``"control"`` (no faults armed), ``"single"`` (one
    faulted point) or ``"compound"`` (several); the grader's headline
    gates key off it. :attr:`fault_points` — the points the plan arms —
    is what a detector is asked to localize; whether each actually fired
    comes from the run's ledger, not from this declaration.
    """

    name: str
    description: str
    plan: FaultPlan
    load: LoadProfile = field(default_factory=LoadProfile)

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise IncidentError("scenario name must be non-empty, no spaces")
        if not isinstance(self.plan, FaultPlan):
            raise IncidentError("scenario plan must be a FaultPlan")
        if not isinstance(self.load, LoadProfile):
            raise IncidentError("scenario load must be a LoadProfile")

    @property
    def fault_points(self) -> tuple[str, ...]:
        """Injection points the scenario arms (in rule order)."""
        return self.plan.points

    @property
    def kind(self) -> str:
        """``control`` / ``single`` / ``compound`` by armed-point count."""
        n = len(self.plan.rules)
        return "control" if n == 0 else ("single" if n == 1 else "compound")

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (bundle manifests, ``incidents list --json``)."""
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "fault_points": list(self.fault_points),
            "plan": self.plan.to_dict(),
            "load": self.load.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IncidentScenario":
        """Inverse of :meth:`to_dict` (``kind``/``fault_points`` are derived)."""
        data = dict(data)
        data.pop("kind", None)
        data.pop("fault_points", None)
        unknown = sorted(set(data) - {"name", "description", "plan", "load"})
        if unknown:
            raise IncidentError(f"unknown scenario fields {unknown}")
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            plan=FaultPlan.from_dict(data.get("plan", {})),
            load=LoadProfile.from_dict(data.get("load", {})),
        )


def _rule(point: str, rate: float, **kwargs: Any) -> FaultRule:
    """An armed rule with the registry's forced-first-call convention."""
    kwargs.setdefault("force_calls", (0,))
    return FaultRule(point, rate=rate, **kwargs)


_REGISTRY_LOAD = LoadProfile(overlay_every=4)

#: The shipped catalog, keyed by scenario name. Frozen specs — the
#: orchestrator replays these; tests pin the catalog's shape.
SCENARIOS: dict[str, IncidentScenario] = {
    s.name: s
    for s in (
        IncidentScenario(
            name="control",
            description="Fault-free baseline: any detection is a false "
            "positive.",
            plan=FaultPlan(seed=100, rules=()),
        ),
        IncidentScenario(
            name="cache-read",
            description="Artifact cache load_* raises CacheError on ~40% "
            "of reads.",
            plan=FaultPlan(seed=101, rules=(_rule("cache.read", 0.4),)),
        ),
        IncidentScenario(
            name="cache-write",
            description="Artifact cache commits fail on ~40% of writes.",
            plan=FaultPlan(seed=102, rules=(_rule("cache.write", 0.4),)),
        ),
        IncidentScenario(
            name="cache-corrupt",
            description="Every pickled artifact read back comes up "
            "corrupted (UnpicklingError).",
            plan=FaultPlan(seed=103, rules=(_rule("cache.corrupt", 1.0),)),
        ),
        IncidentScenario(
            name="delayed-cache-corrupt",
            description="Pickle corruption that only begins at the third "
            "read (onset-window scoring).",
            plan=FaultPlan(
                seed=104,
                rules=(
                    _rule("cache.corrupt", 1.0, start=2, force_calls=(2,)),
                ),
            ),
        ),
        IncidentScenario(
            name="batcher-crash",
            description="MicroBatcher worker loop crashes mid-batch on "
            "~30% of batches; the supervisor restarts it.",
            plan=FaultPlan(seed=105, rules=(_rule("batcher.crash", 0.3),)),
        ),
        IncidentScenario(
            name="telemetry-drop",
            description="Half the power aggregates are lost during "
            "pipeline rebuilds and must be gap-filled.",
            plan=FaultPlan(seed=106, rules=(_rule("telemetry.drop", 0.5),)),
        ),
        IncidentScenario(
            name="http-malformed",
            description="~30% of client requests arrive with malformed "
            "bodies; the server must 400 and stay up.",
            plan=FaultPlan(seed=107, rules=(_rule("http.malformed", 0.3),)),
        ),
        IncidentScenario(
            name="registry-degraded",
            description="Model training always fails; cold-model requests "
            "degrade to the mean-power fallback.",
            plan=FaultPlan(seed=108, rules=(_rule("registry.train", 1.0),)),
            load=_REGISTRY_LOAD,
        ),
        IncidentScenario(
            name="latency-degradation",
            description="Latency-only incident: every batch sleeps 50 ms "
            "before predicting. Nothing errors.",
            plan=FaultPlan(
                seed=109,
                rules=(_rule("batcher.latency", 1.0, duration_s=0.05),),
            ),
        ),
        IncidentScenario(
            name="compound-cache-degraded",
            description="Corrupted artifacts *and* failing training: reads "
            "break while the service degrades.",
            plan=FaultPlan(
                seed=110,
                rules=(
                    _rule("cache.corrupt", 1.0),
                    _rule("registry.train", 1.0),
                ),
            ),
            load=_REGISTRY_LOAD,
        ),
        IncidentScenario(
            name="compound-storm",
            description="Crashing batchers, dropped telemetry, and "
            "malformed clients, all at once.",
            plan=FaultPlan(
                seed=111,
                rules=(
                    _rule("batcher.crash", 0.3),
                    _rule("telemetry.drop", 0.5),
                    _rule("http.malformed", 0.3),
                ),
            ),
        ),
    )
}


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, registry order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> IncidentScenario:
    """Look up a registered scenario; unknown names fail loudly."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise IncidentError(
            f"unknown incident scenario {name!r}; "
            f"known: {', '.join(scenario_names())}"
        ) from None
