"""Spatial imbalance model: how a job's power differs across its nodes.

Calibration targets (Sec. 4, Figs 8–10):

* mean of the per-job *average spatial spread* (max−min node power at a
  time instant, averaged over runtime) ≈ 20 W, tail to ~110 W,
* average spatial spread ≈ 15% of per-node power, tail >40%,
* ≥20% of jobs show >15% max−min node *energy* difference (Fig 10).

Two mechanisms produce the spread, matching the paper's attribution:

1. **manufacturing variability** — the allocated nodes' static power
   factors (owned by :class:`repro.cluster.system.Cluster`), and
2. **workload imbalance** — a static per-(job, node) multiplicative
   offset (rank 0 doing I/O, unequal domain decomposition, …) plus a
   small dynamic per-(node, minute) jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["SpatialModel", "make_spatial_model"]


@dataclass(frozen=True)
class SpatialModel:
    """Per-job spatial behavior parameters.

    ``static_sigma`` is the relative std of the per-node workload offset
    (drawn once per job) — it drives the node-*energy* imbalance (Fig 10)
    because it never averages out. ``dynamic_sigma`` is the relative std
    of the per-minute node jitter; it widens the instantaneous spread
    (Fig 9a/9b) but cancels in per-node energy. ``event_prob`` and
    ``event_amp`` model rare transient imbalance events (one node doing
    I/O or serial work for a minute) — they skew the spread series right,
    which is what keeps the fraction of runtime above the *average*
    spread below one half (Fig 9c).
    """

    static_sigma: float
    dynamic_sigma: float = 0.04
    event_prob: float = 0.03
    event_amp: float = 0.25

    def __post_init__(self) -> None:
        if not 0 <= self.static_sigma <= 0.5:
            raise WorkloadError("static_sigma must be in [0, 0.5]")
        if not 0 <= self.dynamic_sigma <= 0.5:
            raise WorkloadError("dynamic_sigma must be in [0, 0.5]")
        if not 0 <= self.event_prob <= 0.5:
            raise WorkloadError("event_prob must be in [0, 0.5]")
        if not 0 <= self.event_amp <= 1.0:
            raise WorkloadError("event_amp must be in [0, 1]")

    def node_offsets(self, num_nodes: int, rng: np.random.Generator) -> np.ndarray:
        """Static multiplicative offset per node (mean ≈ 1)."""
        if num_nodes <= 0:
            raise WorkloadError("num_nodes must be positive")
        if self.static_sigma == 0:
            return np.ones(num_nodes)
        offsets = rng.normal(1.0, self.static_sigma, size=num_nodes)
        return np.clip(offsets, 0.5, 1.5)

    def dynamic_noise(
        self, num_nodes: int, minutes: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-(node, minute) multiplicative jitter matrix."""
        if num_nodes <= 0 or minutes <= 0:
            raise WorkloadError("matrix dimensions must be positive")
        noise = (
            rng.normal(1.0, self.dynamic_sigma, size=(num_nodes, minutes))
            if self.dynamic_sigma > 0
            else np.ones((num_nodes, minutes))
        )
        if self.event_prob > 0 and self.event_amp > 0:
            # Events are power *dips* (a node stalling on I/O or serial
            # work): they spike the spatial spread without running into
            # the TDP clip, giving the spread series its right skew.
            events = rng.random((num_nodes, minutes)) < self.event_prob
            drops = 1.0 - self.event_amp * rng.random((num_nodes, minutes))
            noise = np.where(events, noise * drops, noise)
        return np.clip(noise, 0.2, 2.0)


def make_spatial_model(
    imbalance: float, rng: np.random.Generator, scale: float = 1.0
) -> SpatialModel:
    """Draw a spatial model for a job class from its app imbalance tendency.

    ``imbalance`` in [0, 1] scales the static-offset sigma between ~0.5%
    and ~12%; combined with ~4% manufacturing variability this lands the
    population near Fig 9b's ~15%-of-power mean spread with a tail past
    40%, while keeping the Fig 10 energy-imbalance distribution mostly
    below 15%.
    """
    if not 0 <= imbalance <= 1:
        raise WorkloadError("imbalance must be in [0, 1]")
    if scale < 0:
        raise WorkloadError("scale must be >= 0")
    lo = 0.005 + 0.035 * imbalance
    hi = 0.015 + 0.09 * imbalance
    # ``scale`` uniformly attenuates every workload-imbalance mechanism
    # (ablation knob; 0 leaves only manufacturing variability and RAPL
    # measurement noise).
    return SpatialModel(
        static_sigma=float(np.clip(rng.uniform(lo, hi) * scale, 0.0, 0.5)),
        dynamic_sigma=float(np.clip(rng.uniform(0.02, 0.05) * scale, 0.0, 0.5)),
        event_prob=float(rng.uniform(0.001, 0.007)) if scale > 0 else 0.0,
        event_amp=float(rng.uniform(0.45, 0.90)),
    )
