"""Workload generator: users → job classes → submit-ordered job stream.

The generator is where the calibration knobs live. Every parameter in
:class:`WorkloadParams` traces to a number the paper reports; see the
table in DESIGN.md §4 and the per-system values in
:func:`default_params`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import WorkloadError
from repro.rng import RngFactory
from repro.units import DAY, HOUR
from repro.workload.applications import catalog_for, get_app
from repro.workload.arrivals import ArrivalProcess
from repro.workload.failures import FailureModel
from repro.workload.jobclass import JobClass
from repro.workload.phases import TemporalProfile, make_profile
from repro.workload.spatial import SpatialModel, make_spatial_model
from repro.workload.users import User, UserPopulation

__all__ = [
    "JobSpec",
    "WorkloadParams",
    "WorkloadPlan",
    "WorkloadGenerator",
    "default_params",
]

# Users request round walltimes; the batch menu below mirrors common
# production limits. Snapping creates heavy cross-user collisions in the
# (nodes, walltime) plane — which is what defeats distance-based
# prediction (Fig 14's KNN) while leaving the user-aware tree intact.
WALLTIME_MENU_H: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0
)


def snap_walltime_h(wall_h: float) -> float:
    """Nearest round walltime from the request menu."""
    menu = np.asarray(WALLTIME_MENU_H)
    return float(menu[int(np.argmin(np.abs(menu - wall_h)))])


def _unique_menu_walls(walls_h: np.ndarray) -> np.ndarray:
    """Snap each walltime to the menu, nudging duplicates to free slots.

    A user's *different* production configurations rarely share both the
    node count and the requested walltime, so the per-user palette stays
    collision-free; cross-user collisions (everyone uses the same menu)
    remain, which is what defeats naive distance-based prediction.
    """
    menu = np.asarray(WALLTIME_MENU_H)
    used: set[int] = set()
    out = np.empty(len(walls_h))
    for i, wall in enumerate(walls_h):
        idx = int(np.argmin(np.abs(menu - wall)))
        if idx in used:
            for delta in (1, -1, 2, -2, 3, -3):
                if 0 <= idx + delta < len(menu) and idx + delta not in used:
                    idx = idx + delta
                    break
        used.add(idx)
        out[i] = menu[idx]
    return out

# Five months (Oct'18–Feb'19), the paper's observation window.
FIVE_MONTHS_S: int = 152 * DAY


@dataclass(frozen=True)
class JobSpec:
    """One job instance ready for the scheduler.

    ``power_fraction`` is the *nominal* per-node draw (fraction of node
    TDP) the telemetry layer will modulate with the temporal profile,
    spatial offsets, and node variability.
    """

    job_id: int
    user_id: str
    app: str
    system: str
    class_id: int
    nodes: int
    req_walltime_s: int
    runtime_s: int
    submit_s: int
    power_fraction: float
    profile: TemporalProfile
    spatial: SpatialModel
    is_debug: bool = False
    # Heterogeneous extensions (docs/SCENARIOS.md): accelerators
    # requested per node, nominal GPU board-power fraction, and the
    # batch-system exit state (repro.workload.failures — 0 = success;
    # failed jobs carry their *truncated* partial runtime).
    gpus: int = 0
    gpu_fraction: float = 0.0
    exit_code: int = 0

    def __post_init__(self) -> None:
        if self.runtime_s > self.req_walltime_s:
            raise WorkloadError(
                f"job {self.job_id}: runtime exceeds requested walltime"
            )
        if self.runtime_s <= 0 or self.nodes < 1 or self.submit_s < 0:
            raise WorkloadError(f"job {self.job_id}: invalid geometry")
        if self.gpus < 0 or not 0 <= self.gpu_fraction <= 1:
            raise WorkloadError(f"job {self.job_id}: invalid GPU geometry")

    @property
    def failed(self) -> bool:
        """Whether this job ended in a non-zero exit state."""
        return self.exit_code != 0

    @property
    def node_seconds(self) -> int:
        return self.nodes * self.runtime_s


@dataclass(frozen=True)
class WorkloadParams:
    """Calibration knobs of one system's workload (see DESIGN.md §4)."""

    system: str
    num_users: int
    horizon_s: int = FIVE_MONTHS_S
    target_offered_load: float = 0.92
    # Node-count and walltime lognormals (medians, log-stds, caps).
    nodes_median: float = 4.0
    nodes_sigma_log: float = 0.9
    max_nodes: int = 64
    wall_median_h: float = 5.5
    wall_sigma_log: float = 0.8
    max_wall_h: float = 24.0
    min_wall_h: float = 0.25
    # Power coupling to job length/size (Table 2 Spearman targets).
    a_len: float = 0.16
    a_size: float = 0.08
    # Power jitter decomposition (Figs 3, 12, 13, 14):
    # class_jitter_sigma spreads a user's (user, app) power offsets —
    # the persistent "how this user drives this code" level;
    # class_refinement_sigma is the residual per-class deviation
    # (input decks, solver settings); within_class_sigma is the
    # run-to-run noise of one class.
    class_jitter_sigma: float = 0.12
    class_refinement_sigma: float = 0.045
    within_class_sigma: float = 0.022
    # Debug/pre-post-processing classes (Figs 5, 12).
    p_debug_diverse: float = 0.25
    p_debug_focused: float = 0.08
    debug_max_nodes: int = 2
    debug_wall_hi_h: float = 4.0
    # User population shape (Fig 11).
    pareto_alpha: float = 1.3
    debug_scale_boost: float = 0.30
    debug_power_lo: float = 0.26
    debug_power_hi: float = 0.50
    user_jitter_boost: float = 1.2
    diverse_fraction: float = 0.6
    # Scale coupling: heavier users run somewhat larger jobs.
    scale_size_exponent: float = 0.22
    # Ablation knobs (DESIGN.md §4 mechanisms): temporal profile mix and
    # workload-imbalance attenuation.
    temporal_mode: str = "mixed"
    spatial_scale: float = 1.0
    # Arrival texture.
    weekly_amplitude: float = 0.25
    holiday_depth: float = 0.5
    campaign_spread: float = 0.12
    # Heterogeneous/ML extensions (docs/SCENARIOS.md): which application
    # catalog the population draws from, accelerators per GPU node (ML
    # classes request all of them), and the failure model's rates. The
    # defaults keep the paper's CPU systems exactly as before — zero
    # rates mean the failure stream is never touched.
    catalog_profile: str = "hpc"
    gpus_per_node: int = 0
    p_fail_app: float = 0.0
    p_fail_node: float = 0.0
    oom_share: float = 0.35

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise WorkloadError("num_users must be >= 2")
        if not 0 < self.target_offered_load <= 1.2:
            raise WorkloadError("target_offered_load must be in (0, 1.2]")
        if self.horizon_s < DAY:
            raise WorkloadError("horizon must be at least one day")
        if self.gpus_per_node < 0:
            raise WorkloadError("gpus_per_node must be >= 0")
        # Probability fields are validated by the FailureModel itself.
        FailureModel(self.p_fail_app, self.p_fail_node, self.oom_share)


def default_params(
    system: str, num_users: int | None = None, horizon_s: int | None = None
) -> WorkloadParams:
    """Calibrated per-system parameters.

    Emmy: general-purpose machine, many users, smaller jobs, strong
    power–length coupling (Table 2: ρ_len=0.42, ρ_size=0.21), wider power
    spread (σ/µ = 26%). Meggie: fewer, heavier users with larger jobs,
    strong power–size coupling (ρ_len=0.12, ρ_size=0.42), narrower power
    spread (σ/µ = 18%) but more per-user diversity (Fig 12).

    Alex: the ML training cluster — fewer users, mostly single-node
    8-GPU jobs with long walltimes, epoch-shaped power, and the high
    failure rates Chu et al. report for ML workloads. Woody: the mixed
    CPU/GPU partition — the HPC catalog plus ML jobs on its GPU island,
    with intermediate failure rates (docs/SCENARIOS.md).
    """
    system = system.lower()
    if system == "emmy":
        params = WorkloadParams(
            system="emmy",
            num_users=160,
            target_offered_load=0.87,
            nodes_median=4.2,
            nodes_sigma_log=0.9,
            max_nodes=64,
            wall_median_h=6.0,
            wall_sigma_log=0.8,
            a_len=0.03,
            a_size=0.0,
            debug_max_nodes=6,
            debug_wall_hi_h=3.0,
            pareto_alpha=1.3,
            debug_scale_boost=0.25,
            class_jitter_sigma=0.075,
            diverse_fraction=0.55,
            p_debug_diverse=0.18,
            p_debug_focused=0.06,
        )
    elif system == "meggie":
        params = WorkloadParams(
            system="meggie",
            num_users=110,
            target_offered_load=0.82,
            nodes_median=6.5,
            nodes_sigma_log=0.95,
            max_nodes=128,
            wall_median_h=6.0,
            wall_sigma_log=0.9,
            a_len=0.03,
            a_size=0.055,
            debug_max_nodes=4,
            debug_wall_hi_h=6.0,
            pareto_alpha=1.5,
            debug_scale_boost=0.20,
            debug_power_lo=0.42,
            debug_power_hi=0.66,
            user_jitter_boost=2.4,
            class_jitter_sigma=0.045,
            diverse_fraction=0.7,
            p_debug_diverse=0.20,
            p_debug_focused=0.10,
        )
    elif system == "alex":
        params = WorkloadParams(
            system="alex",
            num_users=60,
            target_offered_load=0.72,
            nodes_median=1.4,
            nodes_sigma_log=0.7,
            max_nodes=16,
            wall_median_h=9.0,
            wall_sigma_log=0.8,
            a_len=0.05,
            a_size=0.03,
            debug_max_nodes=1,
            debug_wall_hi_h=2.0,
            pareto_alpha=1.2,
            debug_scale_boost=0.30,
            debug_power_lo=0.30,
            debug_power_hi=0.55,
            class_jitter_sigma=0.10,
            diverse_fraction=0.45,
            p_debug_diverse=0.22,
            p_debug_focused=0.10,
            catalog_profile="ml",
            gpus_per_node=8,
            p_fail_app=0.10,
            p_fail_node=0.015,
        )
    elif system == "woody":
        params = WorkloadParams(
            system="woody",
            num_users=80,
            target_offered_load=0.78,
            nodes_median=2.8,
            nodes_sigma_log=0.85,
            max_nodes=32,
            wall_median_h=6.0,
            wall_sigma_log=0.85,
            a_len=0.04,
            a_size=0.03,
            debug_max_nodes=2,
            debug_wall_hi_h=4.0,
            pareto_alpha=1.4,
            debug_scale_boost=0.25,
            class_jitter_sigma=0.08,
            diverse_fraction=0.55,
            p_debug_diverse=0.20,
            p_debug_focused=0.08,
            catalog_profile="mixed",
            gpus_per_node=4,
            p_fail_app=0.05,
            p_fail_node=0.010,
        )
    else:
        raise WorkloadError(f"no default params for system {system!r}")
    overrides = {}
    if num_users is not None:
        overrides["num_users"] = num_users
    if horizon_s is not None:
        overrides["horizon_s"] = int(horizon_s)
    return replace(params, **overrides) if overrides else params


@dataclass(frozen=True)
class WorkloadPlan:
    """The sorted arrival plan of one workload, in columnar form.

    Holds everything :meth:`WorkloadGenerator.instantiate` samples —
    submit times, runtimes, and power fractions, already in the global
    submit order — as flat numpy arrays plus the class list, instead of
    a list of :class:`JobSpec` objects. A slice of the plan can be
    materialized into specs on demand (:meth:`materialize`), so the
    streaming pipeline carries ~32 bytes per job instead of a frozen
    dataclass per job while producing the *identical* job stream:
    ``plan.materialize(0, plan.n_jobs)`` is what :meth:`generate`
    returns.
    """

    classes: list  # list[JobClass]; index space of ``class_pos``
    submit_s: np.ndarray  # int64, sorted by (submit, user_id)
    runtime_s: np.ndarray  # int64 (already truncated for failed jobs)
    power_fraction: np.ndarray  # float64
    class_pos: np.ndarray  # int64 index into ``classes``
    # Per-job batch exit states (repro.workload.failures); None on
    # workloads whose failure model is inactive — old cached plans
    # unpickle to None through the class default.
    exit_code: np.ndarray | None = None

    @property
    def n_jobs(self) -> int:
        """Total jobs in the plan (= len of every column)."""
        return len(self.submit_s)

    def materialize(self, lo: int = 0, hi: int | None = None) -> list[JobSpec]:
        """Build the :class:`JobSpec` objects for plan rows ``[lo, hi)``.

        Job ids are the global plan indices, so chunked materialization
        concatenates to exactly the stream :meth:`WorkloadGenerator.generate`
        produces.
        """
        hi = self.n_jobs if hi is None else hi
        classes = self.classes
        # JobSpec.__post_init__'s per-job guards, checked once over the
        # whole slice in numpy so the construction loop below can skip
        # the (frozen-dataclass) __init__ machinery entirely — at
        # million-job scale the per-object object.__setattr__ calls were
        # a top-line cost of plan materialization.
        class_pos = self.class_pos[lo:hi]
        runtime_s = self.runtime_s[lo:hi]
        submit_s = self.submit_s[lo:hi]
        walls = np.asarray(
            [c.req_walltime_s for c in classes], dtype=np.int64
        )[class_pos]
        if np.any(runtime_s > walls):
            bad = int(lo + np.argmax(runtime_s > walls))
            raise WorkloadError(f"job {bad}: runtime exceeds requested walltime")
        if np.any(runtime_s <= 0) or np.any(submit_s < 0):
            bad = int(lo + np.argmax((runtime_s <= 0) | (submit_s < 0)))
            raise WorkloadError(f"job {bad}: invalid geometry")
        # Per-class field template; nodes >= 1 is enforced by JobClass.
        templates = [
            {
                "user_id": c.user_id, "app": c.app, "system": c.system,
                "class_id": c.class_id, "nodes": c.nodes,
                "req_walltime_s": c.req_walltime_s, "profile": c.profile,
                "spatial": c.spatial, "is_debug": c.is_debug,
                "gpus": c.gpus, "gpu_fraction": c.gpu_fraction,
            }
            for c in classes
        ]
        new = object.__new__
        specs: list[JobSpec] = []
        append = specs.append
        # Workloads without an active failure model fall back to the
        # JobSpec class default (exit_code = 0) — zip against an empty
        # tail costs nothing there.
        if self.exit_code is not None:
            exit_codes = self.exit_code[lo:hi].tolist()
        else:
            exit_codes = None
        # tolist() up front: plain ints/floats avoid a numpy-scalar
        # conversion per field in the hot construction loop.
        for offset, (i, submit, runtime, power, ci) in enumerate(zip(
            range(lo, hi),
            submit_s.tolist(),
            runtime_s.tolist(),
            self.power_fraction[lo:hi].tolist(),
            class_pos.tolist(),
        )):
            spec = new(JobSpec)
            d = spec.__dict__
            d.update(templates[ci])
            d["job_id"] = i
            d["runtime_s"] = runtime
            d["submit_s"] = submit
            d["power_fraction"] = power
            if exit_codes is not None:
                d["exit_code"] = exit_codes[offset]
            append(spec)
        return specs


class WorkloadGenerator:
    """Generates the job stream of one system.

    Parameters
    ----------
    params:
        Calibration knobs (use :func:`default_params`).
    cluster_nodes:
        Node count of the target cluster; instance counts are scaled so
        the offered load Σ(nodes×runtime)/(N×horizon) matches
        ``params.target_offered_load``.
    seed:
        Root seed; all internal streams derive from it.
    """

    def __init__(self, params: WorkloadParams, cluster_nodes: int, seed: int = 0) -> None:
        if cluster_nodes < 1:
            raise WorkloadError("cluster_nodes must be >= 1")
        self.params = params
        self.cluster_nodes = cluster_nodes
        self._rngs = RngFactory(seed).child(f"workload.{params.system}")

    # -- class construction -------------------------------------------------

    def build_population(self) -> UserPopulation:
        return UserPopulation(
            num_users=self.params.num_users,
            rng=self._rngs.get("users"),
            pareto_alpha=self.params.pareto_alpha,
            diverse_fraction=self.params.diverse_fraction,
            catalog=catalog_for(self.params.catalog_profile),
        )

    def build_classes(self, population: UserPopulation) -> list[JobClass]:
        """All job classes of all users, with load-calibrated instance counts."""
        p = self.params
        rng = self._rngs.get("classes")
        classes: list[JobClass] = []
        class_id = 0
        for user in population:
            diverse = len(user.apps) >= 3
            p_debug = p.p_debug_diverse if diverse else p.p_debug_focused
            # Lightly active users run proportionally more debug /
            # pre-post-processing jobs — the driver of the high per-user
            # power variability (Fig 12).
            p_debug = float(np.clip(p_debug + p.debug_scale_boost / np.sqrt(user.scale), 0.0, 0.6))
            # Users reuse preferred node counts and walltimes across
            # *different* classes, so (user, nodes) clusters genuinely mix
            # job classes (Fig 13's >10%-σ slices).
            size_boost = user.scale ** p.scale_size_exponent
            n_nodes_palette = max(2, int(np.ceil(user.num_classes * 0.35)))
            # Cap single-job size at a quarter of the machine so scaled-down
            # replicas keep a schedulable mix (full systems are unaffected:
            # 64 <= 560/4 and 128 <= 728/4).
            node_cap = min(p.max_nodes, max(1, self.cluster_nodes // 4))
            node_palette = np.clip(
                np.round(
                    rng.lognormal(
                        np.log(p.nodes_median * size_boost),
                        p.nodes_sigma_log,
                        size=n_nodes_palette,
                    )
                ),
                1,
                node_cap,
            ).astype(int)
            n_wall_palette = max(2, int(np.ceil(user.num_classes * 0.7)))
            wall_palette = _unique_menu_walls(
                np.clip(
                    rng.lognormal(
                        np.log(p.wall_median_h), p.wall_sigma_log, size=n_wall_palette
                    ),
                    p.min_wall_h,
                    p.max_wall_h,
                )
            )
            # Persistent per-(user, app) power offsets: all of a user's
            # classes of one application share this level, so a config
            # the user runs only once is still predictable from their
            # other runs (Fig 15's per-user accuracy).
            jitter_boost = float(
                np.clip(1.0 + p.user_jitter_boost / np.sqrt(user.scale),
                        1.0, 1.0 + p.user_jitter_boost)
            )
            app_offsets = {
                app: float(rng.lognormal(0.0, p.class_jitter_sigma * jitter_boost))
                for app in user.apps
            }
            # The user's side-job power level is persistent too: their
            # pre/post-processing pipeline draws a similar fraction of
            # TDP every time it runs.
            if user.scale < 4.0:
                debug_mult = float(rng.uniform(p.debug_power_lo, p.debug_power_hi))
            else:
                debug_mult = float(
                    rng.uniform(p.debug_power_lo + 0.18, p.debug_power_hi + 0.2)
                )
            for _ in range(user.num_classes):
                is_debug = rng.random() < p_debug
                classes.append(
                    self._make_class(
                        class_id, user, is_debug, node_palette, wall_palette,
                        app_offsets, debug_mult, rng,
                    )
                )
                class_id += 1
        self._calibrate_instances(classes, rng)
        return classes

    def _make_class(
        self,
        class_id: int,
        user: User,
        is_debug: bool,
        node_palette: np.ndarray,
        wall_palette: np.ndarray,
        app_offsets: dict[str, float],
        debug_mult: float,
        rng: np.random.Generator,
    ) -> JobClass:
        p = self.params
        app = get_app(str(rng.choice(list(user.apps))))
        if is_debug:
            # Debug / pre- and post-processing classes: 1-2 nodes, low
            # power; walltimes span short test runs through multi-hour
            # serial post-processing (keeping the power-vs-length
            # correlation from being dominated by this class family).
            nodes = int(rng.integers(1, p.debug_max_nodes + 1))
            wall_h = snap_walltime_h(float(rng.uniform(p.min_wall_h, p.debug_wall_hi_h)))
            n_instances = int(np.clip(rng.geometric(1 / 4.0), 2, 12))
        else:
            nodes = int(rng.choice(node_palette))
            wall_h = float(rng.choice(wall_palette))
            n_instances = int(np.clip(rng.geometric(1 / user.instances_per_class), 2, 4000))
        wall_s = int(round(wall_h * HOUR / 60) * 60)

        # Length/size coupling: standardized log deviations, clipped.
        z_len = np.clip(
            (np.log(wall_h) - np.log(p.wall_median_h)) / (2 * p.wall_sigma_log), -1.0, 1.0
        )
        z_size = np.clip(
            (np.log(nodes) - np.log(p.nodes_median)) / (2 * p.nodes_sigma_log), -1.0, 1.0
        )
        coupling = 1.0 + p.a_len * z_len + p.a_size * z_size
        # Residual per-class deviation; shorter jobs carry a wider one
        # (Fig 5's larger spread among short/small jobs).
        refinement_sigma = p.class_refinement_sigma * float(
            np.clip(1.0 - 0.3 * z_len, 0.6, 1.5)
        )
        fraction = (
            app.fraction_on(p.system)
            * coupling
            * app_offsets[app.name]
            * rng.lognormal(0.0, refinement_sigma)
        )
        if is_debug:
            fraction *= debug_mult * rng.lognormal(0.0, 0.035)
        fraction = float(np.clip(fraction, 0.25, 0.98))

        # ML training classes request every accelerator of their nodes
        # and carry a class-persistent GPU power level; CPU-only apps
        # (all of emmy/meggie) never reach these draws.
        if app.uses_gpus and p.gpus_per_node > 0:
            gpus = p.gpus_per_node
            gpu_fraction = float(
                np.clip(app.gpu_fraction * rng.lognormal(0.0, 0.06), 0.05, 1.0)
            )
        else:
            gpus, gpu_fraction = 0, 0.0

        return JobClass(
            class_id=class_id,
            user_id=user.user_id,
            app=app.name,
            system=p.system,
            nodes=nodes,
            req_walltime_s=max(wall_s, 600),
            power_fraction=fraction,
            within_sigma=p.within_class_sigma,
            profile=make_profile(
                app.burstiness, rng, mode=p.temporal_mode, ml=app.uses_gpus
            ),
            spatial=make_spatial_model(app.imbalance, rng, scale=p.spatial_scale),
            n_instances=n_instances,
            is_debug=is_debug,
            gpus=gpus,
            gpu_fraction=gpu_fraction,
        )

    def _calibrate_instances(self, classes: list[JobClass], rng: np.random.Generator) -> None:
        """Scale instance counts so offered load hits the target."""
        p = self.params
        target_work = p.target_offered_load * self.cluster_nodes * p.horizon_s
        expected = sum(c.expected_work_node_seconds for c in classes)
        if expected <= 0:
            raise WorkloadError("generated classes carry no work")
        factor = target_work / expected
        for i, c in enumerate(classes):
            scaled = c.n_instances * factor
            n = int(np.floor(scaled))
            if rng.random() < scaled - n:
                n += 1
            classes[i] = replace(c, n_instances=max(1, n))

    # -- instance materialization --------------------------------------------

    def generate(self) -> list[JobSpec]:
        """The full submit-ordered job stream."""
        return self.generate_plan().materialize()

    def generate_plan(self) -> WorkloadPlan:
        """The full arrival plan in columnar form (streaming pipeline).

        Samples exactly the draws :meth:`generate` samples, in the same
        order, so ``generate_plan().materialize()`` *is* ``generate()``
        — the plan just defers the per-job :class:`JobSpec` objects so a
        bounded-memory consumer can materialize one chunk at a time.
        """
        population = self.build_population()
        classes = self.build_classes(population)
        return self.plan_instances(classes)

    def instantiate(self, classes: list[JobClass]) -> list[JobSpec]:
        """Materialize the full job stream of pre-built classes."""
        return self.plan_instances(classes).materialize()

    def plan_instances(self, classes: list[JobClass]) -> WorkloadPlan:
        """Sample every instance of ``classes`` into a sorted plan."""
        p = self.params
        rng = self._rngs.get("instances")
        arrivals = ArrivalProcess(
            horizon_s=p.horizon_s,
            weekly_amplitude=p.weekly_amplitude,
            holiday=(0.55 * p.horizon_s, 0.62 * p.horizon_s, p.holiday_depth),
        )
        # Sample straight into preallocated columns and sort with a
        # stable lexsort — building a tuple per job and sorting through a
        # lambda key was ~35% of generation time at million-job scale.
        # The per-job runtime/power draws stay as scalar calls in the
        # original order: they consume the instance RNG stream, and the
        # draw sequence is part of the workload's byte identity.
        n = sum(cls.n_instances for cls in classes)
        submit_s = np.empty(n, dtype=np.int64)
        runtime_s = np.empty(n, dtype=np.int64)
        power_fraction = np.empty(n, dtype=np.float64)
        class_pos = np.empty(n, dtype=np.int64)
        # Sort user ids by lexicographic rank — integer keys keep the
        # lexsort cheap while ordering exactly like the string ids.
        user_rank = {
            u: r for r, u in enumerate(sorted({cls.user_id for cls in classes}))
        }
        user_key = np.empty(n, dtype=np.int64)
        pos = 0
        for ci, cls in enumerate(classes):
            quantiles = arrivals.campaign_quantiles(
                cls.n_instances, rng, spread=p.campaign_spread
            )
            submits = arrivals.warp(quantiles)
            end = pos + len(submits)
            submit_s[pos:end] = submits.astype(np.int64)
            class_pos[pos:end] = ci
            user_key[pos:end] = user_rank[cls.user_id]
            sample_runtime = cls.sample_runtime
            sample_power = cls.sample_power_fraction
            for i in range(pos, end):
                runtime_s[i] = sample_runtime(rng)
                power_fraction[i] = sample_power(rng)
            pos = end
        # lexsort is stable per key, exactly like list.sort on the
        # (submit, user_id) tuple key it replaces: equal pairs keep
        # class-generation order, so the permutation is identical.
        order = np.lexsort((user_key, submit_s))
        runtime_sorted = runtime_s[order]
        # Exit states draw from their own child stream, *after* the
        # sort, so the draw order is the submit order (stable across
        # chunked materialization) and an inactive model — every CPU
        # system — touches neither the stream nor the runtimes.
        failures = FailureModel(p.p_fail_app, p.p_fail_node, p.oom_share)
        exit_code = None
        if failures.active:
            exit_code, runtime_sorted = failures.apply(
                runtime_sorted, self._rngs.get("failures")
            )
        return WorkloadPlan(
            classes=classes,
            submit_s=submit_s[order],
            runtime_s=runtime_sorted,
            power_fraction=power_fraction[order],
            class_pos=class_pos[order],
            exit_code=exit_code,
        )
