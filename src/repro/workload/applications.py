"""Application catalog with per-architecture power intensities.

Section 2 of the paper: the compute cycles of both systems are dominated
by ~30% molecular-dynamics codes (Gromacs, the in-house MD-0), ~30%
chemistry/materials codes, ~25% memory-bandwidth-bound CFD codes
(FASTEST, STARCCM), and ~15% others (e.g. WRF).

Each application carries a nominal per-node power draw as a *fraction of
node TDP*, one value per system. The values encode two findings the
analyses must reproduce:

* every application draws less on Meggie (14 nm Broadwell) than on Emmy
  (22 nm IvyBridge) — up to ~25% less (Fig 4), and
* the *ranking* flips across systems: compute-bound MD-0 out-draws
  bandwidth-bound FASTEST on Emmy, but not on Meggie, because Broadwell's
  power optimizations help core-bound codes more than
  bandwidth-bound ones (Fig 4, MD-0 vs FASTEST).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

__all__ = [
    "Application",
    "CATALOG",
    "ML_CATALOG",
    "KEY_APPS",
    "get_app",
    "app_names",
    "catalog_for",
]


@dataclass(frozen=True)
class Application:
    """One application family.

    ``power_fraction`` maps system name → nominal per-node draw as a
    fraction of node TDP; ``share`` is the application's share of total
    core-hours; ``domain`` labels the workload family from Sec. 2.
    ``gpu_fraction`` is the fraction of accelerator board power the
    application's kernels sustain — 0 marks a CPU-only code, > 0 an ML
    training family whose job classes request every GPU of their nodes.
    """

    name: str
    domain: str
    share: float
    power_fraction: dict[str, float]
    # Relative temporal burstiness (0 = flat, 1 = strongly phased) and
    # workload-imbalance tendency across nodes; both feed the phase and
    # spatial models.
    burstiness: float
    imbalance: float
    gpu_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.share <= 1:
            raise WorkloadError(f"{self.name}: share must be in (0, 1]")
        for sysname, frac in self.power_fraction.items():
            if not 0 < frac <= 1:
                raise WorkloadError(
                    f"{self.name}: power fraction for {sysname} must be in (0, 1]"
                )
        if not 0 <= self.burstiness <= 1:
            raise WorkloadError(f"{self.name}: burstiness must be in [0, 1]")
        if not 0 <= self.imbalance <= 1:
            raise WorkloadError(f"{self.name}: imbalance must be in [0, 1]")
        if not 0 <= self.gpu_fraction <= 1:
            raise WorkloadError(f"{self.name}: gpu_fraction must be in [0, 1]")

    @property
    def uses_gpus(self) -> bool:
        """Whether job classes of this family request accelerators."""
        return self.gpu_fraction > 0

    def fraction_on(self, system: str) -> float:
        try:
            return self.power_fraction[system]
        except KeyError:
            raise WorkloadError(
                f"application {self.name!r} has no power model for system {system!r}"
            ) from None


# Catalog calibrated against Fig 3 (population mean/σ), Fig 4 (per-app
# cross-system levels and the MD-0/FASTEST ranking flip) and the Sec. 2
# workload mix. Shares sum to 1.
CATALOG: tuple[Application, ...] = (
    Application(
        name="gromacs",
        domain="md",
        share=0.18,
        power_fraction={"emmy": 0.830, "meggie": 0.660, "woody": 0.640},
        burstiness=0.15,
        imbalance=0.25,
    ),
    Application(
        name="md0",
        domain="md",
        share=0.12,
        power_fraction={"emmy": 0.890, "meggie": 0.645, "woody": 0.615},
        burstiness=0.10,
        imbalance=0.20,
    ),
    Application(
        name="chem0",
        domain="chemistry",
        share=0.15,
        power_fraction={"emmy": 0.750, "meggie": 0.620, "woody": 0.600},
        burstiness=0.45,
        imbalance=0.40,
    ),
    Application(
        name="mat0",
        domain="materials",
        share=0.15,
        power_fraction={"emmy": 0.790, "meggie": 0.650, "woody": 0.625},
        burstiness=0.35,
        imbalance=0.35,
    ),
    Application(
        name="fastest",
        domain="cfd",
        share=0.13,
        power_fraction={"emmy": 0.850, "meggie": 0.675, "woody": 0.655},
        burstiness=0.20,
        imbalance=0.45,
    ),
    Application(
        name="starccm",
        domain="cfd",
        share=0.12,
        power_fraction={"emmy": 0.710, "meggie": 0.600, "woody": 0.585},
        burstiness=0.25,
        imbalance=0.50,
    ),
    Application(
        name="wrf",
        domain="weather",
        share=0.08,
        power_fraction={"emmy": 0.670, "meggie": 0.580, "woody": 0.565},
        burstiness=0.50,
        imbalance=0.55,
    ),
    Application(
        name="misc",
        domain="other",
        share=0.07,
        power_fraction={"emmy": 0.550, "meggie": 0.530, "woody": 0.520},
        burstiness=0.30,
        imbalance=0.30,
    ),
)

# The five applications Fig 4 compares across both systems.
KEY_APPS: tuple[str, ...] = ("gromacs", "md0", "fastest", "starccm", "wrf")

# ML-training catalog for the heterogeneous systems (docs/SCENARIOS.md),
# after Chu et al.'s ML-vs-generic workload characterization
# (arXiv:2409.08949): host power_fraction is the CPU side (data loading,
# preprocessing, optimizer offload), gpu_fraction the sustained share of
# board power. Shares sum to 1 within this catalog; "mlmisc" (notebooks,
# evaluation, tensorboard) plays the role "misc" plays in the HPC
# catalog and must stay the last entry — the population model uses the
# final entry as the low-power fallback app.
ML_CATALOG: tuple[Application, ...] = (
    Application(
        name="llm0",
        domain="nlp",
        share=0.30,
        power_fraction={"alex": 0.460, "woody": 0.430},
        burstiness=0.55,
        imbalance=0.20,
        gpu_fraction=0.92,
    ),
    Application(
        name="resnet",
        domain="vision",
        share=0.24,
        power_fraction={"alex": 0.500, "woody": 0.470},
        burstiness=0.65,
        imbalance=0.30,
        gpu_fraction=0.78,
    ),
    Application(
        name="gnn0",
        domain="graph",
        share=0.16,
        power_fraction={"alex": 0.540, "woody": 0.505},
        burstiness=0.60,
        imbalance=0.45,
        gpu_fraction=0.58,
    ),
    Application(
        name="rl0",
        domain="rl",
        share=0.14,
        power_fraction={"alex": 0.620, "woody": 0.580},
        burstiness=0.70,
        imbalance=0.40,
        gpu_fraction=0.45,
    ),
    Application(
        name="mlmisc",
        domain="other",
        share=0.16,
        power_fraction={"alex": 0.380, "woody": 0.360},
        burstiness=0.35,
        imbalance=0.25,
        gpu_fraction=0.22,
    ),
)

_BY_NAME = {app.name: app for app in CATALOG + ML_CATALOG}


def catalog_for(profile: str) -> tuple[Application, ...]:
    """The application catalog of one workload profile.

    ``"hpc"`` is the paper's generic mix, ``"ml"`` the training-job
    catalog, ``"mixed"`` both (HPC first, so the last entry stays the
    ML fallback app).
    """
    if profile == "hpc":
        return CATALOG
    if profile == "ml":
        return ML_CATALOG
    if profile == "mixed":
        return CATALOG + ML_CATALOG
    raise WorkloadError(f"unknown workload profile {profile!r}")


def app_names() -> list[str]:
    """All application names, catalog order (HPC then ML)."""
    return [app.name for app in CATALOG + ML_CATALOG]


def get_app(name: str) -> Application:
    """Catalog lookup by name (both catalogs)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(f"unknown application {name!r}; known: {app_names()}") from None
