"""Application catalog with per-architecture power intensities.

Section 2 of the paper: the compute cycles of both systems are dominated
by ~30% molecular-dynamics codes (Gromacs, the in-house MD-0), ~30%
chemistry/materials codes, ~25% memory-bandwidth-bound CFD codes
(FASTEST, STARCCM), and ~15% others (e.g. WRF).

Each application carries a nominal per-node power draw as a *fraction of
node TDP*, one value per system. The values encode two findings the
analyses must reproduce:

* every application draws less on Meggie (14 nm Broadwell) than on Emmy
  (22 nm IvyBridge) — up to ~25% less (Fig 4), and
* the *ranking* flips across systems: compute-bound MD-0 out-draws
  bandwidth-bound FASTEST on Emmy, but not on Meggie, because Broadwell's
  power optimizations help core-bound codes more than
  bandwidth-bound ones (Fig 4, MD-0 vs FASTEST).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

__all__ = ["Application", "CATALOG", "KEY_APPS", "get_app", "app_names"]


@dataclass(frozen=True)
class Application:
    """One application family.

    ``power_fraction`` maps system name → nominal per-node draw as a
    fraction of node TDP; ``share`` is the application's share of total
    core-hours; ``domain`` labels the workload family from Sec. 2.
    """

    name: str
    domain: str
    share: float
    power_fraction: dict[str, float]
    # Relative temporal burstiness (0 = flat, 1 = strongly phased) and
    # workload-imbalance tendency across nodes; both feed the phase and
    # spatial models.
    burstiness: float
    imbalance: float

    def __post_init__(self) -> None:
        if not 0 < self.share <= 1:
            raise WorkloadError(f"{self.name}: share must be in (0, 1]")
        for sysname, frac in self.power_fraction.items():
            if not 0 < frac <= 1:
                raise WorkloadError(
                    f"{self.name}: power fraction for {sysname} must be in (0, 1]"
                )
        if not 0 <= self.burstiness <= 1:
            raise WorkloadError(f"{self.name}: burstiness must be in [0, 1]")
        if not 0 <= self.imbalance <= 1:
            raise WorkloadError(f"{self.name}: imbalance must be in [0, 1]")

    def fraction_on(self, system: str) -> float:
        try:
            return self.power_fraction[system]
        except KeyError:
            raise WorkloadError(
                f"application {self.name!r} has no power model for system {system!r}"
            ) from None


# Catalog calibrated against Fig 3 (population mean/σ), Fig 4 (per-app
# cross-system levels and the MD-0/FASTEST ranking flip) and the Sec. 2
# workload mix. Shares sum to 1.
CATALOG: tuple[Application, ...] = (
    Application(
        name="gromacs",
        domain="md",
        share=0.18,
        power_fraction={"emmy": 0.830, "meggie": 0.660},
        burstiness=0.15,
        imbalance=0.25,
    ),
    Application(
        name="md0",
        domain="md",
        share=0.12,
        power_fraction={"emmy": 0.890, "meggie": 0.645},
        burstiness=0.10,
        imbalance=0.20,
    ),
    Application(
        name="chem0",
        domain="chemistry",
        share=0.15,
        power_fraction={"emmy": 0.750, "meggie": 0.620},
        burstiness=0.45,
        imbalance=0.40,
    ),
    Application(
        name="mat0",
        domain="materials",
        share=0.15,
        power_fraction={"emmy": 0.790, "meggie": 0.650},
        burstiness=0.35,
        imbalance=0.35,
    ),
    Application(
        name="fastest",
        domain="cfd",
        share=0.13,
        power_fraction={"emmy": 0.850, "meggie": 0.675},
        burstiness=0.20,
        imbalance=0.45,
    ),
    Application(
        name="starccm",
        domain="cfd",
        share=0.12,
        power_fraction={"emmy": 0.710, "meggie": 0.600},
        burstiness=0.25,
        imbalance=0.50,
    ),
    Application(
        name="wrf",
        domain="weather",
        share=0.08,
        power_fraction={"emmy": 0.670, "meggie": 0.580},
        burstiness=0.50,
        imbalance=0.55,
    ),
    Application(
        name="misc",
        domain="other",
        share=0.07,
        power_fraction={"emmy": 0.550, "meggie": 0.530},
        burstiness=0.30,
        imbalance=0.30,
    ),
)

# The five applications Fig 4 compares across both systems.
KEY_APPS: tuple[str, ...] = ("gromacs", "md0", "fastest", "starccm", "wrf")

_BY_NAME = {app.name: app for app in CATALOG}


def app_names() -> list[str]:
    """All application names, catalog order."""
    return [app.name for app in CATALOG]


def get_app(name: str) -> Application:
    """Catalog lookup by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(f"unknown application {name!r}; known: {app_names()}") from None
