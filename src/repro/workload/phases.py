"""Temporal phase model: the multiplicative power profile of a job.

Calibration targets (Sec. 4, Figs 6–7):

* average σ_t/µ of a job's power over its runtime ≈ 11%,
* mean peak overshoot over the job mean ≈ 10–12%, with ~80% of jobs
  below ~12%,
* ≥70% of jobs spend ≈0% of runtime more than 10% above their mean.

Those three only coexist if temporal variance is dominated by *dips*,
not bursts: an HPC job holds a compute plateau and periodically drops to
low power during I/O or communication phases. Dips raise σ_t while
leaving the plateau barely above the mean. The population mix is
therefore: flat jobs (AR(1) wander only), *dip* jobs (plateau with
periodic low-power phases — the common case for phased codes), a small
share of genuinely bursty jobs (the Fig 7b tail), and multiphase
setup/production/teardown ramps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["TemporalProfile", "make_profile", "PROFILE_KINDS"]

PROFILE_KINDS = ("flat", "dip", "burst", "multiphase", "epoch")

# scipy is imported lazily (bound here on first use) so that importing
# the workload layer — and therefore the CLI — never pays the ~1.8 s
# scipy.signal import unless a profile is actually generated.
_lfilter = None


@dataclass(frozen=True)
class TemporalProfile:
    """Parameters of one job's temporal behavior.

    ``kind`` selects the generator; ``wander_sigma`` is the relative std
    of the slow AR(1) component present in every kind; ``amp`` and
    ``duty`` shape the periodic phase (dip depth or burst height and the
    fraction of each period spent in it).
    """

    kind: str
    wander_sigma: float = 0.025
    amp: float = 0.0
    duty: float = 0.0
    period_minutes: int = 30

    def __post_init__(self) -> None:
        if self.kind not in PROFILE_KINDS:
            raise WorkloadError(f"unknown profile kind {self.kind!r}; known: {PROFILE_KINDS}")
        if self.wander_sigma < 0 or self.wander_sigma > 0.5:
            raise WorkloadError("wander_sigma must be in [0, 0.5]")
        if not 0 <= self.amp <= 0.9:
            raise WorkloadError("amp must be in [0, 0.9]")
        if not 0 <= self.duty < 1:
            raise WorkloadError("duty must be in [0, 1)")
        if self.period_minutes < 2:
            raise WorkloadError("period_minutes must be >= 2")

    def generate(self, minutes: int, rng: np.random.Generator) -> np.ndarray:
        """Multiplicative profile of length ``minutes`` with mean exactly 1."""
        if minutes <= 0:
            raise WorkloadError("profile length must be positive")
        base = _ar1(minutes, self.wander_sigma, rng)
        if self.kind == "flat" or minutes < 4:
            profile = base
        elif self.kind == "dip":
            profile = base * _square_wave(
                minutes, 1.0 - self.amp, self.duty, self.period_minutes, rng
            )
        elif self.kind == "burst":
            profile = base * _square_wave(
                minutes, 1.0 + self.amp, self.duty, self.period_minutes, rng
            )
        elif self.kind == "epoch":
            profile = base * _epochs(
                minutes, self.amp, self.duty, self.period_minutes, rng
            )
        else:  # multiphase: low setup, high production, low teardown
            profile = base * _ramps(minutes, self.amp, rng)
        # Renormalize so the job mean equals the nominal class power.
        return profile / profile.mean()


def _ar1(n: int, sigma: float, rng: np.random.Generator, rho: float = 0.96) -> np.ndarray:
    """Stationary AR(1) around 1.0 with marginal std ``sigma``."""
    if sigma == 0:
        return np.ones(n)
    global _lfilter
    if _lfilter is None:
        from scipy.signal import lfilter as _lfilter_impl

        _lfilter = _lfilter_impl
    innovations = rng.normal(0.0, sigma * np.sqrt(1 - rho * rho), size=n)
    innovations[0] = rng.normal(0.0, sigma)
    # x[i] = rho * x[i-1] + e[i] — a pure IIR filter, vectorized via lfilter.
    out = _lfilter([1.0], [1.0, -rho], innovations)
    return np.clip(1.0 + out, 0.3, 1.7)


def _square_wave(
    n: int, phase_level: float, duty: float, period: int, rng: np.random.Generator
) -> np.ndarray:
    """Level 1 except ``duty`` of each period at ``phase_level``."""
    phase = rng.integers(0, period)
    t = (np.arange(n) + phase) % period
    in_phase = t < max(1, int(round(duty * period)))
    return np.where(in_phase, phase_level, 1.0)


def _ramps(n: int, amp: float, rng: np.random.Generator) -> np.ndarray:
    """Setup/production/teardown: low shoulders around a high middle."""
    setup = max(1, int(n * rng.uniform(0.03, 0.12)))
    teardown = max(1, int(n * rng.uniform(0.02, 0.08)))
    out = np.full(n, 1.0 + amp)
    out[:setup] = 1.0 - amp
    if teardown < n:
        out[n - teardown :] = 1.0 - 0.5 * amp
    return out


def _epochs(
    n: int, amp: float, duty: float, period: int, rng: np.random.Generator
) -> np.ndarray:
    """ML-training epochs: compute plateaus with periodic checkpoint dips.

    One period is one epoch: a sustained compute plateau, a short
    data-loading ramp at the epoch boundary, and a deep checkpoint dip
    (``duty`` of the period at ``1 - amp``) when the state is flushed to
    the parallel filesystem. The run opens with a low-power staging
    segment — container pull, dataset cache warm-up, checkpoint
    *restore* after a restart — matching Chu et al.'s observation that
    ML jobs spend their early minutes far below steady-state power.
    """
    t = np.arange(n) % period
    dip_len = max(1, int(round(duty * period)))
    ramp_len = max(1, int(round(0.10 * period)))
    out = np.ones(n)
    # Checkpoint flush at the end of each epoch.
    out[t >= period - dip_len] = 1.0 - amp
    # Data-loading ramp opening each epoch: climbs back to the plateau.
    ramp = t < ramp_len
    out[ramp] = 0.85 + 0.15 * (t[ramp] + 1) / ramp_len
    # Initial staging / checkpoint-restore segment at job start.
    staging = max(1, int(n * rng.uniform(0.02, 0.08)))
    out[:staging] = 1.0 - 0.8 * amp
    return out


def make_profile(
    burstiness: float, rng: np.random.Generator, mode: str = "mixed", ml: bool = False
) -> TemporalProfile:
    """Draw a profile for a job class given its application burstiness.

    ``burstiness`` shifts the mix away from flat toward dip/burst
    behavior. The resulting population reproduces the paper's "limited
    temporal variance" finding: dips carry most of the σ_t, genuine
    above-mean bursts stay rare.

    ``ml=True`` draws an epoch-shaped training profile instead (compute
    plateaus, checkpoint dips, staging ramp — docs/SCENARIOS.md);
    burstiness then scales the checkpoint depth. The flat ablation mode
    still wins, so the temporal-ablation studies cover ML systems too.
    """
    if not 0 <= burstiness <= 1:
        raise WorkloadError("burstiness must be in [0, 1]")
    if mode not in ("mixed", "flat", "burst-only"):
        raise WorkloadError(f"unknown profile mode {mode!r}")
    if mode == "flat":
        return TemporalProfile(kind="flat", wander_sigma=rng.uniform(0.012, 0.035))
    if ml:
        # Epoch period tracks dataset size; checkpoint dips are deep
        # (GPUs idle at the board floor while the state is flushed).
        amp = rng.uniform(0.30, 0.45 + 0.25 * burstiness)
        return TemporalProfile(
            kind="epoch",
            wander_sigma=rng.uniform(0.012, 0.030),
            amp=float(np.clip(amp, 0.0, 0.9)),
            duty=rng.uniform(0.04, 0.12),
            period_minutes=int(rng.integers(15, 75)),
        )
    if mode == "burst-only":
        return TemporalProfile(
            kind="burst",
            wander_sigma=rng.uniform(0.010, 0.030),
            amp=rng.uniform(0.15, 0.50),
            duty=rng.uniform(0.10, 0.35),
            period_minutes=int(rng.integers(10, 90)),
        )
    p_dip = 0.40 + 0.45 * burstiness
    p_burst = 0.05 + 0.12 * burstiness
    p_multi = 0.03 + 0.06 * burstiness
    u = rng.random()
    if u < p_dip:
        # Keep amp*duty below ~0.085 so the compute plateau stays within
        # 10% of the job mean — dips raise sigma_t without creating
        # "above 10%" runtime (the Fig 7b constraint).
        amp = rng.uniform(0.35, 0.75)
        duty = rng.uniform(0.04, min(0.30, 0.085 / amp))
        return TemporalProfile(
            kind="dip",
            wander_sigma=rng.uniform(0.010, 0.025),
            amp=amp,
            duty=duty,
            period_minutes=int(rng.integers(10, 120)),
        )
    if u < p_dip + p_burst:
        return TemporalProfile(
            kind="burst",
            wander_sigma=rng.uniform(0.010, 0.030),
            amp=rng.uniform(0.15, 0.50),
            duty=rng.uniform(0.10, 0.35),
            period_minutes=int(rng.integers(10, 90)),
        )
    if u < p_dip + p_burst + p_multi:
        return TemporalProfile(
            kind="multiphase",
            wander_sigma=rng.uniform(0.010, 0.030),
            amp=rng.uniform(0.08, 0.25),
        )
    return TemporalProfile(kind="flat", wander_sigma=rng.uniform(0.012, 0.035))
