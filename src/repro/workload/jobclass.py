"""Job classes: repeated (user, app, nodes, walltime) configurations.

The paper's key predictability insight (RQ8–RQ9) is that "HPC jobs tend
to be repetitive": a user runs many instances of the same configuration,
and those instances share nodes, requested walltime, and power behavior.
A :class:`JobClass` is that configuration; the generator samples
instances from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.phases import TemporalProfile
from repro.workload.spatial import SpatialModel

__all__ = ["JobClass"]


@dataclass(frozen=True)
class JobClass:
    """One repeatable job configuration of one user on one system.

    ``power_fraction`` is the class's nominal per-node draw as a fraction
    of node TDP (already including the application's architecture level,
    the class-level jitter, and the length/size coupling);
    ``within_sigma`` is the relative std of per-instance deviation from
    it. ``runtime_beta`` shapes actual runtime as a fraction of the
    requested walltime; ``limit_hit_prob`` is the chance an instance runs
    into its walltime limit.
    """

    class_id: int
    user_id: str
    app: str
    system: str
    nodes: int
    req_walltime_s: int
    power_fraction: float
    within_sigma: float
    profile: TemporalProfile
    spatial: SpatialModel
    n_instances: int
    runtime_beta: tuple[float, float] = (4.0, 1.6)
    limit_hit_prob: float = 0.08
    is_debug: bool = False
    # Accelerators requested per node (0 = CPU-only class) and the
    # class's nominal GPU board-power fraction — the GPU-side sibling of
    # ``power_fraction``, set for ML-training classes (docs/SCENARIOS.md).
    gpus: int = 0
    gpu_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise WorkloadError(f"class {self.class_id}: nodes must be >= 1")
        if self.req_walltime_s < 60:
            raise WorkloadError(f"class {self.class_id}: walltime must be >= 60 s")
        if not 0 < self.power_fraction <= 1:
            raise WorkloadError(
                f"class {self.class_id}: power_fraction must be in (0, 1]"
            )
        if not 0 <= self.within_sigma <= 0.3:
            raise WorkloadError(f"class {self.class_id}: within_sigma out of range")
        if self.n_instances < 1:
            raise WorkloadError(f"class {self.class_id}: needs >= 1 instance")
        if not 0 <= self.limit_hit_prob < 1:
            raise WorkloadError(f"class {self.class_id}: bad limit_hit_prob")
        if self.gpus < 0:
            raise WorkloadError(f"class {self.class_id}: gpus must be >= 0")
        if not 0 <= self.gpu_fraction <= 1:
            raise WorkloadError(f"class {self.class_id}: gpu_fraction out of range")
        if self.gpus > 0 and self.gpu_fraction == 0:
            raise WorkloadError(
                f"class {self.class_id}: GPU classes need gpu_fraction > 0"
            )

    @property
    def expected_runtime_s(self) -> float:
        """Mean actual runtime implied by the beta model and limit hits."""
        a, b = self.runtime_beta
        mean_frac = (1 - self.limit_hit_prob) * (a / (a + b)) + self.limit_hit_prob
        return self.req_walltime_s * mean_frac

    @property
    def expected_work_node_seconds(self) -> float:
        """Expected node-seconds contributed by all instances."""
        return self.n_instances * self.nodes * self.expected_runtime_s

    def sample_runtime(self, rng: np.random.Generator) -> int:
        """Actual runtime of one instance (seconds, >= 180, <= walltime)."""
        walltime = self.req_walltime_s
        if rng.random() < self.limit_hit_prob:
            runtime = float(walltime)
        else:
            a, b = self.runtime_beta
            runtime = walltime * rng.beta(a, b)
        # Inline clamp: min()/max() builtin calls are measurable at
        # millions of draws (the streaming builder's plan stage).
        if runtime < 180:
            runtime = 180
        return int(runtime) if runtime < walltime else int(walltime)

    def sample_power_fraction(self, rng: np.random.Generator) -> float:
        """Per-instance nominal power fraction (class value ± noise)."""
        frac = self.power_fraction * rng.lognormal(0.0, self.within_sigma)
        if frac < 0.2:
            return 0.2
        return float(frac) if frac < 0.99 else 0.99
