"""User population model.

Calibration targets (Sec. 5):

* the top 20% of users consume ≈85% of node-hours *and* ≈85% of energy,
  with ≈90% overlap between the two top sets (Fig 11);
* per-user variability of per-node power is high — mean σ/µ ≈50% on
  Emmy and higher on Meggie (Fig 12) — because users mix production
  classes with low-power pre/post-processing and debug jobs;
* yet jobs within one (user, nodes) or (user, walltime) cluster vary
  little (Fig 13), because instances of one job class repeat the same
  configuration.

Users carry an *activity scale* drawn from a Pareto distribution; scale
drives both job count and typical class size, which concentrates
node-hours in few users.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.applications import CATALOG, Application

__all__ = ["User", "UserPopulation"]


@dataclass(frozen=True)
class User:
    """One account: identity, activity scale, and application portfolio."""

    user_id: str
    scale: float
    apps: tuple[str, ...]
    # Expected number of job classes this user defines and the expected
    # number of instances per class (heavy users repeat classes often).
    num_classes: int
    instances_per_class: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise WorkloadError(f"{self.user_id}: scale must be positive")
        if not self.apps:
            raise WorkloadError(f"{self.user_id}: portfolio must not be empty")
        if self.num_classes < 1:
            raise WorkloadError(f"{self.user_id}: needs at least one class")
        if self.instances_per_class < 1:
            raise WorkloadError(f"{self.user_id}: instances_per_class must be >= 1")


class UserPopulation:
    """Draws and holds the users of one system.

    Parameters
    ----------
    num_users:
        Population size. Emmy serves "a wide range of different
        scientists" (more users); Meggie is "dedicated to domain
        scientists with resource-intensive projects" (fewer, heavier
        users) — the defaults in :func:`repro.workload.generator.default_params`
        encode that.
    pareto_alpha:
        Tail index of the activity-scale distribution. Smaller ⇒ more
        concentration. ~1.1 reproduces the 20%/85% node-hour share.
    diverse_fraction:
        Fraction of users whose portfolio spans many applications
        (including low-power misc jobs). Diversity drives the Fig 12
        per-user variability.
    catalog:
        The application catalog portfolios draw from; defaults to the
        paper's HPC :data:`~repro.workload.applications.CATALOG`. The
        heterogeneous systems pass the ML or mixed catalog
        (:func:`~repro.workload.applications.catalog_for`). The *last*
        catalog entry is the low-power fallback every diverse portfolio
        includes ("misc" for HPC, "mlmisc" for ML/mixed).
    """

    def __init__(
        self,
        num_users: int,
        rng: np.random.Generator,
        pareto_alpha: float = 1.1,
        diverse_fraction: float = 0.6,
        catalog: tuple[Application, ...] | None = None,
    ) -> None:
        if num_users < 2:
            raise WorkloadError("population needs at least 2 users")
        if pareto_alpha <= 0:
            raise WorkloadError("pareto_alpha must be positive")
        if not 0 <= diverse_fraction <= 1:
            raise WorkloadError("diverse_fraction must be in [0, 1]")
        if catalog is None:
            catalog = CATALOG
        if not catalog:
            raise WorkloadError("application catalog must not be empty")
        self.num_users = num_users
        app_list = [app.name for app in catalog]
        weights = np.asarray([app.share for app in catalog])
        weights = weights / weights.sum()
        fallback = app_list[-1]

        scales = 1.0 + rng.pareto(pareto_alpha, size=num_users)
        # Cap the heaviest account so one draw cannot absorb most of the
        # calibrated work budget (stabilizes job counts across seeds
        # without flattening the 20%/85% concentration).
        scales = np.clip(scales, 1.0, 300.0)
        scales = np.sort(scales)[::-1]  # user u000 is the heaviest

        users: list[User] = []
        for i, scale in enumerate(scales):
            diverse = rng.random() < diverse_fraction
            if diverse:
                # Broad portfolio: sample 3-6 distinct apps, always
                # including the catalog's low-power fallback family
                # (debug/pre/post-processing jobs).
                k = int(rng.integers(3, min(7, len(app_list) + 1)))
                chosen = list(
                    rng.choice(app_list, size=k, replace=False, p=weights)
                )
                if fallback not in chosen:
                    chosen[-1] = fallback
            else:
                # Focused domain scientist: 1-2 apps.
                k = int(rng.integers(1, 3))
                chosen = list(rng.choice(app_list, size=k, replace=False, p=weights))
            # Heavy users define more classes and repeat them far more.
            num_classes = int(np.clip(round(3 + 2.5 * np.log1p(scale)), 3, 14))
            instances = float(np.clip(3.0 * scale ** 0.9, 2.0, 2000.0))
            users.append(
                User(
                    user_id=f"u{i:04d}",
                    scale=float(scale),
                    apps=tuple(dict.fromkeys(chosen)),
                    num_classes=num_classes,
                    instances_per_class=instances,
                )
            )
        self.users: list[User] = users

    def __len__(self) -> int:
        return self.num_users

    def __iter__(self):
        return iter(self.users)

    def by_id(self, user_id: str) -> User:
        for u in self.users:
            if u.user_id == user_id:
                return u
        raise WorkloadError(f"unknown user {user_id!r}")

    @property
    def scales(self) -> np.ndarray:
        return np.asarray([u.scale for u in self.users])
