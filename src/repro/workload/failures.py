"""Deterministic job failure / exit-state generative model.

Chu et al. (arXiv:2409.08949) find ML training jobs fail far more often
than generic HPC jobs — OOM kills, node faults, and plain application
errors — and that failed jobs still burn real node- and GPU-hours
before dying. This module models that: each planned job draws an exit
state from one seeded stream, and failed jobs get their runtime
*truncated* to the failure point, so the scheduler releases their nodes
mid-run and the telemetry layer records genuine partial-run power.

The model is applied at the **plan** level, after the arrival sort, in
:meth:`repro.workload.generator.WorkloadGenerator.plan_instances` —
once per workload, from its own RNG child stream. Both the monolithic
and the chunked/streaming dataset builders materialize the same plan,
so exit states are bit-identical across build paths by construction,
and a model with all rates at zero draws **nothing** (the paper's
CPU systems keep their byte-identical golden outputs).

Exit codes follow batch-system convention: 0 success, 1 application
error, 137 (128+SIGKILL) OOM kill, 271 node fault (Slurm's NODE_FAIL
exit-code family).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "EXIT_OK",
    "EXIT_APP_ERROR",
    "EXIT_OOM",
    "EXIT_NODE_FAULT",
    "EXIT_CODES",
    "FailureModel",
]

EXIT_OK = 0
EXIT_APP_ERROR = 1
EXIT_OOM = 137
EXIT_NODE_FAULT = 271

EXIT_CODES = (EXIT_OK, EXIT_APP_ERROR, EXIT_OOM, EXIT_NODE_FAULT)

# Failed jobs never report less than a minute of runtime: the batch
# system's accounting granularity.
_MIN_FAILED_RUNTIME_S = 60


@dataclass(frozen=True)
class FailureModel:
    """Per-job failure probabilities of one workload.

    ``p_app_error`` is the total probability of an application-level
    failure (of which ``oom_share`` are OOM kills — early, memory-ramp
    deaths); ``p_node_fault`` the probability of losing a node under
    the job (uniformly through the run). All zero ⇒ :meth:`active` is
    False and :meth:`apply` draws nothing.
    """

    p_app_error: float = 0.0
    p_node_fault: float = 0.0
    oom_share: float = 0.35

    def __post_init__(self) -> None:
        if not 0 <= self.p_app_error < 1:
            raise WorkloadError("p_app_error must be in [0, 1)")
        if not 0 <= self.p_node_fault < 1:
            raise WorkloadError("p_node_fault must be in [0, 1)")
        if self.p_app_error + self.p_node_fault >= 1:
            raise WorkloadError("total failure probability must stay below 1")
        if not 0 <= self.oom_share <= 1:
            raise WorkloadError("oom_share must be in [0, 1]")

    @property
    def active(self) -> bool:
        """Whether this model can produce any failure at all."""
        return self.p_app_error > 0 or self.p_node_fault > 0

    def apply(
        self, runtime_s: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw exit states and truncated runtimes for planned jobs.

        Returns ``(exit_code, runtime_s)`` — int64 arrays aligned with
        the input. Exactly ``2 * len(runtime_s)`` uniforms are consumed
        (one classifying draw, one truncation-point draw per job,
        whether or not it fails), so the stream layout is independent of
        the failure outcomes themselves.
        """
        runtime_s = np.asarray(runtime_s, dtype=np.int64)
        n = len(runtime_s)
        exit_code = np.zeros(n, dtype=np.int64)
        if not self.active or n == 0:
            return exit_code, runtime_s.copy()
        u = rng.random(n)
        frac = rng.random(n)
        app_fail = u < self.p_app_error
        node_fault = (~app_fail) & (u < self.p_app_error + self.p_node_fault)
        # Within application failures, the lowest-u slice are OOM kills
        # — a deterministic sub-classification of the same draw.
        oom = app_fail & (u < self.p_app_error * self.oom_share)
        exit_code[app_fail] = EXIT_APP_ERROR
        exit_code[oom] = EXIT_OOM
        exit_code[node_fault] = EXIT_NODE_FAULT
        failed = app_fail | node_fault
        # Truncation point: node faults strike uniformly through the
        # run; generic app errors skew late (the job got somewhere
        # before hitting the bad input); OOM kills die early, during
        # the memory ramp.
        t = frac.copy()
        t[app_fail] = np.sqrt(frac[app_fail])
        t[oom] = 0.35 * frac[oom]
        truncated = np.maximum(
            (t * runtime_s).astype(np.int64), _MIN_FAILED_RUNTIME_S
        )
        out_runtime = runtime_s.copy()
        out_runtime[failed] = np.minimum(truncated[failed], runtime_s[failed])
        return exit_code, out_runtime
