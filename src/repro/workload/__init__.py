"""Generative workload model.

The paper's dataset is five months of production jobs from two clusters.
Without the (offline-unavailable) Zenodo traces, this subpackage
generates a statistically calibrated equivalent:

* an application catalog with per-architecture power intensities
  (:mod:`~repro.workload.applications`),
* a heavy-tailed user population whose members repeatedly run *job
  classes* — fixed (app, nodes, walltime) configurations
  (:mod:`~repro.workload.users`, :mod:`~repro.workload.jobclass`),
* temporal phase and spatial imbalance models
  (:mod:`~repro.workload.phases`, :mod:`~repro.workload.spatial`), and
* the :class:`~repro.workload.generator.WorkloadGenerator` that emits a
  submit-ordered job stream for the scheduler.

Every distributional target (means, correlations, concentration shares)
comes from a number printed in the paper; see DESIGN.md §4.
"""

from repro.workload.applications import (
    CATALOG,
    ML_CATALOG,
    Application,
    app_names,
    catalog_for,
    get_app,
)
from repro.workload.arrivals import ArrivalProcess
from repro.workload.failures import EXIT_CODES, FailureModel
from repro.workload.generator import JobSpec, WorkloadGenerator, WorkloadParams, default_params
from repro.workload.jobclass import JobClass
from repro.workload.phases import TemporalProfile, make_profile
from repro.workload.spatial import SpatialModel
from repro.workload.users import User, UserPopulation

__all__ = [
    "Application",
    "CATALOG",
    "ML_CATALOG",
    "app_names",
    "catalog_for",
    "get_app",
    "User",
    "UserPopulation",
    "JobClass",
    "TemporalProfile",
    "make_profile",
    "SpatialModel",
    "ArrivalProcess",
    "JobSpec",
    "WorkloadGenerator",
    "WorkloadParams",
    "default_params",
    "FailureModel",
    "EXIT_CODES",
]
