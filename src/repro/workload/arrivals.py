"""Job-arrival timing: nonhomogeneous intensity over the 5-month window.

The paper's Figs 1–2 show utilization texture — weekday/weekend ripple
and a visible dip around the December holidays. Submissions are placed
by warping uniform quantiles through the inverse cumulative intensity of
a weekly-modulated rate with a holiday dip, and classes submit their
instances in *campaigns* (bursts around a campaign center), which is
what produces queue pressure and near-capacity utilization in between.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.units import DAY, HOUR

__all__ = ["ArrivalProcess"]


class ArrivalProcess:
    """Inverse-CDF warping of uniform quantiles into submit times.

    Parameters
    ----------
    horizon_s:
        Length of the trace window in seconds.
    weekly_amplitude:
        Relative weekday/weekend intensity swing (0 = flat).
    holiday:
        Optional ``(start_s, end_s, depth)`` triple: intensity is
        multiplied by ``1 - depth`` inside the window (the December dip).
    """

    def __init__(
        self,
        horizon_s: float,
        weekly_amplitude: float = 0.25,
        holiday: tuple[float, float, float] | None = None,
        grid_step_s: float = HOUR,
    ) -> None:
        if horizon_s <= 0:
            raise WorkloadError("horizon_s must be positive")
        if not 0 <= weekly_amplitude < 1:
            raise WorkloadError("weekly_amplitude must be in [0, 1)")
        self.horizon_s = float(horizon_s)
        self.weekly_amplitude = weekly_amplitude
        self.holiday = holiday
        n = max(8, int(np.ceil(horizon_s / grid_step_s)))
        t = np.linspace(0.0, horizon_s, n + 1)
        lam = self._intensity(t)
        cum = np.concatenate(([0.0], np.cumsum((lam[1:] + lam[:-1]) / 2 * np.diff(t))))
        self._t = t
        self._cum = cum / cum[-1]

    def _intensity(self, t: np.ndarray) -> np.ndarray:
        week_phase = 2 * np.pi * (t % (7 * DAY)) / (7 * DAY)
        lam = 1.0 + self.weekly_amplitude * np.sin(week_phase)
        if self.holiday is not None:
            start, end, depth = self.holiday
            if not 0 <= depth <= 1:
                raise WorkloadError("holiday depth must be in [0, 1]")
            lam = np.where((t >= start) & (t < end), lam * (1.0 - depth), lam)
        return lam

    def warp(self, quantiles) -> np.ndarray:
        """Map uniform [0, 1] quantiles to submit times in [0, horizon)."""
        q = np.asarray(quantiles, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise WorkloadError("quantiles must lie in [0, 1]")
        return np.interp(q, self._cum, self._t)

    def campaign_quantiles(
        self, n_instances: int, rng: np.random.Generator, spread: float = 0.12
    ) -> np.ndarray:
        """Quantiles for one class: a burst around a random campaign center.

        ``spread`` is the relative std of the burst around its center as
        a fraction of the horizon. Values are clipped into [0, 1] then
        warped by the caller.
        """
        if n_instances < 1:
            raise WorkloadError("n_instances must be >= 1")
        center = rng.random()
        q = rng.normal(center, spread, size=n_instances)
        # Reflect at the boundaries instead of clipping so mass does not
        # pile up at the trace edges.
        q = np.abs(q)
        q = np.where(q > 1.0, 2.0 - q, q)
        return np.clip(q, 0.0, 1.0)
