"""Exception hierarchy for :mod:`repro`.

Every error raised on purpose by this package derives from
:class:`ReproError` so callers can catch the whole family with one clause
while still distinguishing subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FrameError(ReproError):
    """Errors from the columnar :mod:`repro.frames` substrate."""


class ColumnMismatchError(FrameError):
    """Columns of unequal length, unknown name, or incompatible dtype."""


class SchemaError(ReproError):
    """A dataset does not conform to the expected trace schema."""


class SchedulerError(ReproError):
    """Invalid scheduler state or configuration."""


class AllocationError(SchedulerError):
    """A job requested more nodes than the system owns, or a double-free."""


class WorkloadError(ReproError):
    """Invalid workload-generation parameters."""


class ClusterError(ReproError):
    """Invalid cluster/system specification."""


class TelemetryError(ReproError):
    """Sampling or trace-assembly failures."""


class ModelError(ReproError):
    """ML-model misuse, e.g. predicting before fitting."""


class NotFittedError(ModelError):
    """The estimator must be fitted before calling predict()."""


class ValidationError(ReproError):
    """Evaluation-protocol violations (e.g. unseen users in validation)."""


class AnalysisError(ReproError):
    """An analysis was asked of a dataset lacking the required columns."""


class PolicyError(ReproError):
    """Invalid power-policy configuration."""


class ScenarioError(ReproError):
    """An invalid or unknown scenario description (ScenarioSpec)."""


class PipelineError(ReproError):
    """Invalid pipeline-runner configuration or a failed shard."""


class CacheError(PipelineError):
    """A cache entry is missing, corrupt, or cannot be written."""


class ServeError(ReproError):
    """Prediction-service misuse: bad request, closed batcher, overload."""


class ServiceClosed(ServeError):
    """The batcher/service was shut down; the request was not served."""


class FaultError(ReproError):
    """Invalid fault-injection plan or injector misuse."""


class IncidentError(ReproError):
    """Incident-benchmark misuse: unknown scenario, malformed bundle."""


class ObsError(ReproError):
    """Observability misuse: bad metric/label names, invalid trace files."""
