"""Frozen, seeded fault schedules: which injection point fires on which call.

A :class:`FaultPlan` is the reproducible description of a chaos run. It
pairs a seed with a set of :class:`FaultRule` entries, one per named
injection point (see :data:`INJECTION_POINTS`). Whether the *n*-th call
at a point fires is a pure function of ``(plan seed, point name, n)`` —
a SHA-256 draw compared against the rule's rate — so the same plan
produces the same fault schedule on every run, on every machine,
regardless of thread interleaving. The only nondeterminism left in a
chaos run is *which thread* lands on a firing call index, never *how
many* faults a point's call sequence contains.

The module is deliberately import-light (stdlib only, like
:mod:`repro.spec`) because injection points live on hot paths: arming a
plan must never drag numpy or the simulation layers into, say, the
artifact cache's import graph.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import FaultError

__all__ = [
    "INJECTION_POINTS",
    "FaultRule",
    "FaultPlan",
    "decide",
    "soak_plan",
]

#: Catalog of named injection points threaded through the code base.
#: Keys are the point names a :class:`FaultRule` may target; values
#: describe what firing does at that point (see docs/FAULTS.md).
INJECTION_POINTS: dict[str, str] = {
    "cache.read": "ArtifactCache payload/meta load raises CacheError",
    "cache.write": "ArtifactCache commit raises CacheError",
    "cache.corrupt": "ArtifactCache.load_pickle raises UnpicklingError "
                     "(simulates a truncated/corrupted pickle on disk)",
    "registry.train": "ModelRegistry training raises ServeError "
                      "(drives the service into degraded mode)",
    "batcher.crash": "MicroBatcher worker loop raises mid-batch "
                     "(the supervisor must restart it)",
    "batcher.latency": "artificial sleep before the vectorized predict",
    "telemetry.drop": "one job's power aggregate is lost (NaN) "
                      "(the telemetry stage must gap-fill it)",
    "http.malformed": "a chaos client sends a malformed /predict body "
                      "(the server must answer 400 and stay up)",
}

_SCALE = float(1 << 64)


def _draw(seed: int, point: str, n: int) -> float:
    """Uniform [0, 1) draw for call ``n`` at ``point`` — pure and stable."""
    digest = hashlib.sha256(f"{seed}:{point}:{n}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / _SCALE


@dataclass(frozen=True)
class FaultRule:
    """Schedule for one injection point.

    Parameters
    ----------
    point:
        Injection-point name from :data:`INJECTION_POINTS`.
    rate:
        Per-call fire probability in ``[0, 1]`` (evaluated against the
        deterministic draw, not a live RNG).
    start / stop:
        Half-open call-index window ``[start, stop)`` outside which the
        rule never fires (``stop=None`` means "forever"). This is how a
        plan models transient fault bursts that later clear.
    force_calls:
        Call indices that fire unconditionally (still inside the
        window). Soak plans use this to guarantee every point fires at
        least once no matter how few calls the run happens to make.
    duration_s:
        Sleep injected when a latency-mode point fires; ignored by
        error-mode points.
    """

    point: str
    rate: float = 0.0
    start: int = 0
    stop: int | None = None
    force_calls: tuple[int, ...] = ()
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise FaultError(
                f"unknown injection point {self.point!r}; "
                f"known: {sorted(INJECTION_POINTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"rule {self.point}: rate must be in [0, 1]")
        if self.start < 0:
            raise FaultError(f"rule {self.point}: start must be >= 0")
        if self.stop is not None and self.stop <= self.start:
            raise FaultError(f"rule {self.point}: stop must be > start")
        if self.duration_s < 0:
            raise FaultError(f"rule {self.point}: duration_s must be >= 0")
        object.__setattr__(self, "force_calls", tuple(sorted(self.force_calls)))

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (plan files, manifests)."""
        out: dict[str, Any] = {f.name: getattr(self, f.name) for f in fields(self)}
        out["force_calls"] = list(self.force_calls)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        """Inverse of :meth:`to_dict`; unknown keys fail loudly."""
        data = dict(data)
        unknown = sorted(set(data) - {f.name for f in fields(cls)})
        if unknown:
            raise FaultError(f"unknown fault-rule fields {unknown}")
        data["force_calls"] = tuple(data.get("force_calls", ()))
        return cls(**data)


def decide(rule: FaultRule, seed: int, n: int) -> bool:
    """Does call ``n`` at ``rule.point`` fire under ``seed``?

    Pure: no state, no RNG objects. The injector calls this with its
    per-point call counter; tests and the soak harness call it directly
    to predict or replay a schedule.
    """
    if n < rule.start or (rule.stop is not None and n >= rule.stop):
        return False
    if n in rule.force_calls:
        return True
    return rule.rate > 0.0 and _draw(seed, rule.point, n) < rule.rate


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible chaos schedule: a seed plus per-point rules.

    Frozen like :class:`~repro.spec.ScenarioSpec` — a plan can key a
    report, ship in a JSON file, and be re-armed bit-for-bit. Two rules
    for the same point are rejected so a plan's behavior is unambiguous.

    >>> plan = FaultPlan(seed=7, rules=(FaultRule("cache.read", rate=0.5),))
    >>> plan.schedule("cache.read", 8) == plan.schedule("cache.read", 8)
    True
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        seen: set[str] = set()
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultError("plan rules must be FaultRule instances")
            if rule.point in seen:
                raise FaultError(f"duplicate rule for point {rule.point!r}")
            seen.add(rule.point)

    def rule_for(self, point: str) -> FaultRule | None:
        """The rule targeting ``point``, or None when the plan skips it."""
        for rule in self.rules:
            if rule.point == point:
                return rule
        return None

    @property
    def points(self) -> tuple[str, ...]:
        """Injection points this plan targets, in rule order."""
        return tuple(rule.point for rule in self.rules)

    def schedule(self, point: str, n_calls: int) -> tuple[int, ...]:
        """Call indices in ``[0, n_calls)`` that fire at ``point``.

        The harness uses this to replay/verify a run's schedule: same
        seed, same call counts ⇒ the same tuple, always.
        """
        rule = self.rule_for(point)
        if rule is None:
            return ()
        return tuple(n for n in range(n_calls) if decide(rule, self.seed, n))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (plan files, chaos reports)."""
        return {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        unknown = sorted(set(data) - {"seed", "rules"})
        if unknown:
            raise FaultError(f"unknown fault-plan fields {unknown}")
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", ())),
        )

    def save(self, path: str | os.PathLike) -> Path:
        """Write the plan as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "FaultPlan":
        """Read a plan written by :meth:`save` (``serve --fault-plan``)."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultError(f"cannot load fault plan {path}: {exc}") from None
        return cls.from_dict(data)


def soak_plan(
    seed: int = 0,
    rate: float = 0.15,
    latency_s: float = 0.002,
    points: Iterable[str] | None = None,
) -> FaultPlan:
    """The default all-points chaos plan the soak harness arms.

    Every injection point gets one rule at ``rate`` with an early forced
    fire (call index 1), so a soak run exercises each point at least
    once even when a point is only reached a handful of times. Latency
    points sleep ``latency_s`` per fire.
    """
    chosen = tuple(points) if points is not None else tuple(INJECTION_POINTS)
    rules = tuple(
        FaultRule(
            point,
            rate=rate,
            force_calls=(1,),
            duration_s=latency_s if point == "batcher.latency" else 0.0,
        )
        for point in chosen
    )
    return FaultPlan(seed=seed, rules=rules)
