"""Arming fault plans and firing injection points.

The code base is threaded with calls like ``maybe_fire("cache.read")``
at its named injection points (see :data:`~repro.faults.plan.INJECTION_POINTS`).
When nothing is armed those calls are a single module-global read and a
``None`` check — no locks, no dict lookups, no plan evaluation — so the
production hot paths pay effectively nothing for being injectable
(``tests/faults/test_injector.py`` pins the disarmed behavior).

Arming is a context manager::

    from repro.faults import FaultInjector, soak_plan

    injector = FaultInjector(soak_plan(seed=7))
    with injector:                      # arms the process-wide injector
        ...                             # faults fire per the plan
    injector.snapshot()                 # per-point call/fire counters

Only one injector is armed at a time per process (nesting restores the
previous one on exit). Call indices are assigned atomically per point,
so the *number* of faults a run injects is exactly the plan's schedule
even under heavy thread contention.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import FaultError
from repro.faults.plan import FaultPlan, decide
from repro.obs.metrics import REGISTRY

__all__ = ["FaultInjector", "arm", "active_injector", "maybe_fire"]

# Fault observability (docs/OBSERVABILITY.md). Updated only inside
# FaultInjector.fire(), i.e. only while an injector is armed — the
# disarmed maybe_fire() fast path stays a global read + None check.
_FAULT_CALLS = REGISTRY.counter(
    "repro_fault_calls_total",
    "Armed injection-point evaluations, per point.",
    labelnames=("point",),
)
_FAULT_FIRES = REGISTRY.counter(
    "repro_fault_fires_total",
    "Injected faults actually fired, per point.",
    labelnames=("point",),
)

# The process-wide armed injector. Injection points read this exactly
# once per call; None (the steady state) short-circuits everything.
_ACTIVE: FaultInjector | None = None
_ARM_LOCK = threading.Lock()


class FaultInjector:
    """Evaluates one :class:`~repro.faults.plan.FaultPlan` at runtime.

    Tracks, per injection point, how many times the point was reached
    (``calls``) and how many of those calls fired (``fires``). Use as a
    context manager to arm it process-wide; :meth:`fire` may also be
    driven directly (the chaos clients do this for ``http.malformed``).
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise FaultError("FaultInjector needs a FaultPlan")
        self.plan = plan
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._fires: dict[str, int] = {}
        self._previous: FaultInjector | None = None

    # -- firing ----------------------------------------------------------

    def fire(self, point: str) -> bool:
        """Record one call at ``point``; True when the plan says *fault*.

        Thread-safe: the per-point call index is assigned under a lock,
        then the (pure) schedule decision runs outside it. Latency-mode
        rules sleep here so call sites stay one-liners.
        """
        rule = self.plan.rule_for(point)
        if rule is None:
            return False
        with self._lock:
            n = self._calls.get(point, 0)
            self._calls[point] = n + 1
        _FAULT_CALLS.inc(point=point)
        if not decide(rule, self.plan.seed, n):
            return False
        with self._lock:
            self._fires[point] = self._fires.get(point, 0) + 1
        _FAULT_FIRES.inc(point=point)
        self._record_fire(point, n)
        if rule.duration_s > 0:
            time.sleep(rule.duration_s)
        return True

    def _record_fire(self, point: str, n: int) -> None:
        """Subclass hook: called once per fired call, before any latency
        sleep, with the fired call's per-point index. The incident
        orchestrator's ledger injector timestamps fires through this."""

    # -- inspection ------------------------------------------------------

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-point ``{"calls": n, "fires": k}`` snapshot."""
        with self._lock:
            return {
                point: {
                    "calls": self._calls.get(point, 0),
                    "fires": self._fires.get(point, 0),
                }
                for point in sorted(set(self._calls) | set(self._fires))
            }

    def fires(self, point: str) -> int:
        """How many times ``point`` has fired so far."""
        with self._lock:
            return self._fires.get(point, 0)

    def calls(self, point: str) -> int:
        """How many times ``point`` has been reached so far."""
        with self._lock:
            return self._calls.get(point, 0)

    def snapshot(self) -> dict[str, Any]:
        """Structured injector state for reports and ``/healthz``."""
        return {
            "seed": self.plan.seed,
            "points": list(self.plan.points),
            "counters": self.counters(),
        }

    # -- arming ----------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        global _ACTIVE
        with _ARM_LOCK:
            self._previous = _ACTIVE
            _ACTIVE = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        with _ARM_LOCK:
            if _ACTIVE is not self:
                raise FaultError("disarm order violated: not the armed injector")
            _ACTIVE = self._previous
            self._previous = None


def arm(plan: FaultPlan) -> FaultInjector:
    """Build an injector for ``plan``, ready to arm via ``with``.

    Convenience for the common one-liner::

        with arm(soak_plan(seed=3)) as injector:
            ...
    """
    return FaultInjector(plan)


def active_injector() -> FaultInjector | None:
    """The currently armed injector, or None (the steady state)."""
    return _ACTIVE


def maybe_fire(point: str) -> bool:
    """Fire ``point`` on the armed injector; False when nothing is armed.

    This is the call sites' entry point. Disarmed cost: one global read
    and a ``None`` check.
    """
    injector = _ACTIVE
    if injector is None:
        return False
    return injector.fire(point)
