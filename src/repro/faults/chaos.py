"""The chaos soak engine: hammer the serving stack under an armed plan.

:func:`run_soak` is what ``tools/chaos_soak.py`` (``make chaos-soak`` /
``chaos-smoke``) and the chaos tests drive. One run:

1. builds a scratch service for a small scenario and records a
   *baseline* prediction vector, unarmed;
2. arms :func:`~repro.faults.plan.soak_plan` and lets N HTTP client
   threads plus one pipeline-churn thread run for ``duration_s`` —
   clients mix normal, degraded-forcing, overlay, and malformed
   requests; the churn thread rebuilds and re-reads pipeline artifacts
   so the cache and telemetry injection points see traffic;
3. disarms, replays the baseline request, and checks it is
   **bit-identical** to the pre-chaos answer;
4. audits the run: zero lost requests, zero stuck futures, every
   injection point fired at least once, fire counts exactly matching
   the plan's deterministic schedule, a bounded error rate, and the
   observability invariants — the run's delta of
   ``repro_requests_total`` equals the sum of its outcome counters,
   and the ``repro_fault_fires_total`` deltas match the injector's own
   per-point fire counts (which step 4 already tied to the schedule).

Everything the audit needs is in the returned :class:`ChaosReport`;
``report.passed`` is the single gate CI asserts.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import INJECTION_POINTS, FaultPlan, soak_plan
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.spec import ScenarioSpec

__all__ = ["ChaosReport", "run_soak", "default_soak_scenario"]

#: Response categories the clients tally. Every request ends in exactly
#: one of them; ``lost`` (no terminal answer) must stay at zero.
CATEGORIES = (
    "ok", "degraded", "malformed_rejected", "rejected", "server_error", "lost",
)

_MALFORMED_BODIES = (
    b'{"jobs": [{"user": "u0", "nodes": 1',  # truncated JSON
    b"not json at all",
    b'{"jobs": "not-a-list"}',
    b'{"jobs": [{"nodes": 1, "req_walltime_s": 60}]}',  # missing user
    b"[]",  # not an object
)


def default_soak_scenario(seed: int = 3) -> ScenarioSpec:
    """The small scenario soak runs default to (seconds, not minutes)."""
    return ScenarioSpec(
        "emmy", seed=seed, num_nodes=24, num_users=10,
        horizon_days=2, max_traces=10,
    )


@dataclass
class ChaosReport:
    """Everything one soak run measured, plus the pass/fail audit."""

    seed: int
    duration_s: float
    n_clients: int
    max_error_rate: float
    counts: dict[str, int] = field(default_factory=dict)
    injector: dict[str, Any] = field(default_factory=dict)
    schedule_consistent: bool = False
    recovered_identical: bool = False
    stuck_futures: int = 0
    batcher_crashes: int = 0
    n_degraded_service: int = 0
    churn_builds: int = 0
    churn_faults: int = 0
    wall_seconds: float = 0.0
    # This run's metric deltas plus any invariant violations; filled by
    # _audit_metrics. True by default so hand-built reports (tests)
    # aren't failed for never having run the metric audit.
    metrics: dict[str, Any] = field(default_factory=dict)
    metrics_consistent: bool = True

    @property
    def total(self) -> int:
        """Requests the clients issued (every category, lost included)."""
        return sum(self.counts.get(c, 0) for c in CATEGORIES)

    @property
    def error_rate(self) -> float:
        """Fraction of requests that ended in 500 / no answer."""
        bad = self.counts.get("server_error", 0) + self.counts.get("lost", 0)
        return bad / self.total if self.total else 0.0

    @property
    def points_fired(self) -> dict[str, int]:
        """Per-point fire counts from the injector snapshot."""
        counters = self.injector.get("counters", {})
        return {p: counters.get(p, {}).get("fires", 0) for p in INJECTION_POINTS}

    def problems(self) -> list[str]:
        """Audit failures, empty when the run passed."""
        out = []
        if self.total == 0:
            out.append("no requests were issued")
        if self.counts.get("lost", 0):
            out.append(f"{self.counts['lost']} request(s) got no answer")
        if self.stuck_futures:
            out.append(f"{self.stuck_futures} future(s) stuck after close")
        unfired = sorted(p for p, n in self.points_fired.items() if n == 0)
        if unfired:
            out.append(f"injection point(s) never fired: {unfired}")
        if not self.schedule_consistent:
            out.append("fire counts disagree with the plan's schedule")
        if not self.recovered_identical:
            out.append("post-chaos predictions differ from the baseline")
        if self.error_rate > self.max_error_rate:
            out.append(
                f"error rate {self.error_rate:.1%} over the "
                f"{self.max_error_rate:.1%} bound"
            )
        if not self.metrics_consistent:
            for problem in self.metrics.get("problems", ["metric audit failed"]):
                out.append(f"metric invariant violated: {problem}")
        return out

    @property
    def passed(self) -> bool:
        return not self.problems()

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (the soak tool writes this next to the log)."""
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "n_clients": self.n_clients,
            "max_error_rate": self.max_error_rate,
            "counts": dict(self.counts),
            "total": self.total,
            "error_rate": round(self.error_rate, 5),
            "injector": self.injector,
            "schedule_consistent": self.schedule_consistent,
            "recovered_identical": self.recovered_identical,
            "stuck_futures": self.stuck_futures,
            "batcher_crashes": self.batcher_crashes,
            "n_degraded_service": self.n_degraded_service,
            "churn_builds": self.churn_builds,
            "churn_faults": self.churn_faults,
            "wall_seconds": round(self.wall_seconds, 3),
            "metrics": self.metrics,
            "metrics_consistent": self.metrics_consistent,
            "passed": self.passed,
            "problems": self.problems(),
        }

    def summary(self) -> str:
        """Human-readable digest for the soak tool's stdout."""
        lines = [
            f"chaos soak: seed {self.seed}, {self.n_clients} client(s), "
            f"{self.wall_seconds:.1f}s wall",
            "requests: " + "  ".join(
                f"{c}={self.counts.get(c, 0)}" for c in CATEGORIES
            ) + f"  (total {self.total}, error rate {self.error_rate:.2%})",
            "fires:    " + "  ".join(
                f"{p}={n}" for p, n in sorted(self.points_fired.items())
            ),
            f"service: {self.n_degraded_service} degraded answer(s), "
            f"{self.batcher_crashes} batcher crash(es), "
            f"{self.churn_builds} churn build(s) ({self.churn_faults} faulted)",
            f"recovered bit-identical: {self.recovered_identical}   "
            f"schedule consistent: {self.schedule_consistent}   "
            f"metrics consistent: {self.metrics_consistent}",
        ]
        verdict = "PASS" if self.passed else "FAIL: " + "; ".join(self.problems())
        return "\n".join(lines + [verdict])


def _post(conn: http.client.HTTPConnection, body: bytes) -> tuple[int, dict]:
    conn.request(
        "POST", "/predict", body=body,
        headers={"Content-Type": "application/json"},
    )
    resp = conn.getresponse()
    data = resp.read()
    try:
        payload = json.loads(data)
    except json.JSONDecodeError:
        payload = {}
    return resp.status, payload


def _client_loop(
    address: tuple[str, int],
    deadline: float,
    injector: FaultInjector,
    counts: dict[str, int],
    counts_lock: threading.Lock,
    overlay_seed: int,
    users: list[str],
) -> None:
    """One chaos client: mixed request stream until the deadline."""
    conn = http.client.HTTPConnection(*address, timeout=60.0)
    i = 0
    while time.monotonic() < deadline:
        # The malformed-payload point is client-driven: the server never
        # knows a bad body is coming, it just must answer 400 and live.
        malformed = injector.fire("http.malformed")
        if malformed:
            body = _MALFORMED_BODIES[i % len(_MALFORMED_BODIES)]
        else:
            request: dict[str, Any] = {
                "model": "BDT",
                "jobs": [{
                    "user": users[i % len(users)],
                    "nodes": 1 + i % 4,
                    "req_walltime_s": 3600 + 60 * (i % 7),
                }],
            }
            kind = i % 8
            if kind == 5:
                # Cold model: forces registry training mid-soak, so the
                # registry.train point sees armed traffic.
                request["model"] = "online"
            elif kind == 6:
                # Scenario overlay: a second dataset digest, so cache and
                # telemetry points see full builds mid-soak too. Served by
                # the online model — its user vocabulary is open, so the
                # base scenario's user names stay valid.
                request["model"] = "online"
                request["scenario"] = {"seed": overlay_seed}
            body = json.dumps(request).encode()
        try:
            status, payload = _post(conn, body)
        except Exception:
            category = "lost"
            conn.close()
            conn = http.client.HTTPConnection(*address, timeout=60.0)
        else:
            if status == 200:
                category = "degraded" if payload.get("degraded") else "ok"
            elif status == 400:
                category = "malformed_rejected" if malformed else "rejected"
            else:
                category = "server_error"
        with counts_lock:
            counts[category] = counts.get(category, 0) + 1
        i += 1
    conn.close()


def _churn_loop(
    overlay: ScenarioSpec,
    cache_root,
    deadline: float,
    tally: dict[str, int],
) -> None:
    """Rebuild and re-read pipeline artifacts while faults are armed.

    This is what drives cache.read / cache.write / cache.corrupt /
    telemetry.drop traffic: every iteration runs the cached pipeline for
    the overlay scenario and then consumes an intermediate artifact the
    way a warm-start worker would.
    """
    from repro.pipeline import ArtifactCache, build_dataset
    from repro.pipeline.config import ShardConfig, stage_key

    cache = ArtifactCache(cache_root)
    shard = ShardConfig.from_scenario(overlay)
    key = stage_key(shard, "schedule")
    while time.monotonic() < deadline:
        try:
            build_dataset(**overlay.dataset_kwargs(), cache_dir=cache_root)
            tally["builds"] += 1
        except Exception:
            # CacheError from cache.write/read, UnpicklingError from
            # cache.corrupt — either way, this build lost; try again.
            tally["faults"] += 1
        try:
            if cache.has("schedule", key):
                cache.load_pickle("schedule", key)
        except Exception:
            tally["faults"] += 1


def _audit_metrics(
    delta: dict[str, dict[tuple[str, ...], float]], injector: FaultInjector
) -> dict[str, Any]:
    """Check the observability invariants over one soak's metric deltas.

    The deltas isolate this run even though the process-wide counters
    carry over between runs (:meth:`MetricsRegistry.snapshot` /
    ``delta``). Invariants: request conservation (every request counted
    lands in exactly one outcome series) and fault-fire agreement (the
    ``repro_fault_fires_total`` deltas equal the injector's own per-point
    counts, which the schedule audit already pins to the plan).
    """
    requests = sum(delta.get("repro_requests_total", {}).values())
    outcomes = {
        key[0]: int(v)
        for key, v in delta.get("repro_predict_outcomes_total", {}).items()
    }
    fires = {
        key[0]: int(v)
        for key, v in delta.get("repro_fault_fires_total", {}).items()
    }
    problems: list[str] = []
    answered = sum(outcomes.values())
    if int(requests) != answered:
        problems.append(
            f"repro_requests_total moved by {int(requests)} but outcomes "
            f"(ok/degraded/failed) account for {answered}"
        )
    for point in injector.plan.points:
        expected = injector.fires(point)
        got = fires.get(point, 0)
        if got != expected:
            problems.append(
                f"repro_fault_fires_total{{point={point}}} moved by {got}, "
                f"injector counted {expected}"
            )
    return {
        "requests": int(requests),
        "outcomes": outcomes,
        "fault_fires": fires,
        "problems": problems,
    }


def run_soak(
    seed: int = 0,
    duration_s: float = 10.0,
    n_clients: int = 4,
    rate: float = 0.15,
    scenario: ScenarioSpec | None = None,
    cache_dir=None,
    max_error_rate: float = 0.05,
    plan: FaultPlan | None = None,
) -> ChaosReport:
    """One full chaos soak against a scratch service; see module docs.

    ``cache_dir`` should be a scratch directory (the run writes model
    and pipeline artifacts there). ``plan`` defaults to
    :func:`~repro.faults.plan.soak_plan` at ``rate`` — pass an explicit
    plan to narrow the blast radius. Same ``seed`` ⇒ same fault
    schedule, always.
    """
    from repro.serve import create_server

    spec = scenario if scenario is not None else default_soak_scenario()
    plan = plan if plan is not None else soak_plan(seed=seed, rate=rate)
    overlay_seed = spec.seed + 1
    overlay = spec.replace(seed=overlay_seed)
    report = ChaosReport(
        seed=seed, duration_s=duration_s, n_clients=n_clients,
        max_error_rate=max_error_rate,
        counts={c: 0 for c in CATEGORIES},
    )
    t_start = time.perf_counter()
    metrics_before = REGISTRY.snapshot()

    # Unarmed: build the service, warm the default model, and pin the
    # baseline answer chaos must not change.
    server = create_server(spec, cache_dir=cache_dir, warm=("BDT",))
    service = server.service
    users = sorted(service.registry.get(spec, "BDT").known_users)
    baseline_records = [
        {"user": users[0], "nodes": 2, "req_walltime_s": 3600},
        {"user": users[-1], "nodes": 4, "req_walltime_s": 7200},
    ]
    baseline = service.predict(baseline_records)
    server.serve_in_background()
    address = (server.server_address[0], server.port)

    injector = FaultInjector(plan)
    churn_tally = {"builds": 0, "faults": 0}
    counts_lock = threading.Lock()
    try:
        with injector:
            deadline = time.monotonic() + duration_s
            threads = [
                threading.Thread(
                    target=_client_loop,
                    args=(address, deadline, injector, report.counts,
                          counts_lock, overlay_seed, users),
                    name=f"chaos-client-{k}",
                )
                for k in range(n_clients)
            ]
            threads.append(
                threading.Thread(
                    target=_churn_loop,
                    args=(overlay, service.registry.cache.root, deadline,
                          churn_tally),
                    name="chaos-churn",
                )
            )
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Disarmed: the faults have cleared; the service must answer the
        # baseline request bit-identically again.
        after = service.predict(baseline_records)
        report.recovered_identical = bool(np.array_equal(baseline, after))
        report.n_degraded_service = service.n_degraded
        report.batcher_crashes = sum(
            b.crashes for b in service._batchers.values()
        )
    finally:
        server.close()

    # Zero stuck futures: after close every batcher queue must be drained
    # (close fails leftovers with ServiceClosed; nothing may linger).
    report.stuck_futures = sum(
        b.pending for b in service._batchers.values()
    )
    report.injector = injector.snapshot()
    # Determinism audit: with call indices assigned atomically, the fire
    # count at each point must equal exactly what the plan schedules for
    # that many calls — same seed, same counts, same faults.
    report.schedule_consistent = all(
        injector.fires(point) == len(plan.schedule(point, injector.calls(point)))
        for point in plan.points
    )
    report.churn_builds = churn_tally["builds"]
    report.churn_faults = churn_tally["faults"]
    # Observability audit: the same run, as the /metrics counters saw it.
    report.metrics = _audit_metrics(
        MetricsRegistry.delta(metrics_before, REGISTRY.snapshot()), injector
    )
    report.metrics_consistent = not report.metrics["problems"]
    report.wall_seconds = time.perf_counter() - t_start
    return report
