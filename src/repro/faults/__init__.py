"""Deterministic fault injection for the pipeline and serving stack.

The paper's dataset comes from months of *production* telemetry, where
node failures, missing RAPL samples, and partial traces are routine.
This subsystem makes those conditions reproducible in-process so the
rest of the stack can prove it survives them:

* :class:`~repro.faults.plan.FaultPlan` / :class:`~repro.faults.plan.FaultRule`
  — a frozen, seeded schedule of which call at which injection point
  faults (same seed ⇒ same schedule, bit-for-bit);
* :class:`~repro.faults.injector.FaultInjector` — context-manager
  arming plus per-point call/fire counters; when nothing is armed every
  injection point is a single ``None`` check;
* :mod:`repro.faults.chaos` — the soak engine behind
  ``tools/chaos_soak.py`` (``make chaos-soak`` / ``chaos-smoke``): an
  N-client load run against a fault-scheduled server asserting zero
  lost requests and bounded error rates.

The injection-point catalog, plan file format, and degraded-mode
semantics are documented in docs/FAULTS.md.
"""

from repro.faults.injector import (
    FaultInjector,
    active_injector,
    arm,
    maybe_fire,
)
from repro.faults.plan import (
    INJECTION_POINTS,
    FaultPlan,
    FaultRule,
    decide,
    soak_plan,
)

__all__ = [
    "INJECTION_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "active_injector",
    "arm",
    "decide",
    "maybe_fire",
    "soak_plan",
]
