"""Free-node tracking with first-fit allocation.

Node access on both systems is job-exclusive, so the pool hands out
whole node ids. Allocation is lowest-id-first — the placement policy
does not affect any power statistic (node variability factors are i.i.d.
across ids) but makes traces deterministic and easy to inspect.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import AllocationError

__all__ = ["NodePool"]


class NodePool:
    """Boolean free-map over ``num_nodes`` node ids.

    A min-heap free-list backs allocation: popping the ``n`` smallest
    free ids is O(n log num_nodes), replacing the O(num_nodes)
    ``np.flatnonzero`` scan of the free-map per allocation. The boolean
    map is kept in lockstep as the double-free guard (and for cheap
    membership queries in diagnostics).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise AllocationError("pool needs at least one node")
        self._free = np.ones(num_nodes, dtype=bool)
        self._free_count = num_nodes
        # Ascending range is already a valid min-heap.
        self._free_heap = list(range(num_nodes))

    @property
    def num_nodes(self) -> int:
        return len(self._free)

    @property
    def free_count(self) -> int:
        return self._free_count

    @property
    def busy_count(self) -> int:
        return self.num_nodes - self._free_count

    def fits(self, n: int) -> bool:
        return n <= self._free_count

    def allocate(self, n: int) -> np.ndarray:
        """Claim the ``n`` lowest-id free nodes."""
        if n < 1:
            raise AllocationError("must allocate at least one node")
        if n > self._free_count:
            raise AllocationError(
                f"requested {n} nodes but only {self._free_count} free"
            )
        heap = self._free_heap
        pop = heapq.heappop
        # Successive min-pops yield the lowest free ids in ascending
        # order — the same ids (and intp dtype) flatnonzero produced.
        ids = np.array([pop(heap) for _ in range(n)], dtype=np.intp)
        self._free[ids] = False
        self._free_count -= n
        return ids

    def release(self, ids: np.ndarray) -> None:
        """Return nodes to the pool; double-free is an error."""
        ids = np.asarray(ids)
        if self._free[ids].any():
            raise AllocationError(f"double free of nodes {ids[self._free[ids]].tolist()}")
        self._free[ids] = True
        self._free_count += len(ids)
        heap = self._free_heap
        push = heapq.heappush
        for i in ids.tolist():
            push(heap, i)
