"""Free-node tracking with first-fit allocation.

Node access on both systems is job-exclusive, so the pool hands out
whole node ids. Allocation is lowest-id-first — the placement policy
does not affect any power statistic (node variability factors are i.i.d.
across ids) but makes traces deterministic and easy to inspect.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import AllocationError

__all__ = ["NodePool"]


class NodePool:
    """Byte free-map over ``num_nodes`` node ids.

    A min-heap free-list backs allocation: popping the ``n`` smallest
    free ids is O(n log num_nodes), replacing the O(num_nodes)
    ``np.flatnonzero`` scan of the free-map per allocation. The free-map
    is a ``bytearray`` kept in lockstep as the double-free guard:
    per-id byte reads/writes beat numpy fancy indexing for the handful
    of ids a single allocate/release touches, and the pool sits on the
    scheduler's per-event hot path (millions of calls per million-job
    build — docs/PERFORMANCE.md).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise AllocationError("pool needs at least one node")
        self._free = bytearray(b"\x01" * num_nodes)
        self._free_count = num_nodes
        # Ascending range is already a valid min-heap.
        self._free_heap = list(range(num_nodes))

    @property
    def num_nodes(self) -> int:
        return len(self._free)

    @property
    def free_count(self) -> int:
        return self._free_count

    @property
    def busy_count(self) -> int:
        return self.num_nodes - self._free_count

    def fits(self, n: int) -> bool:
        return n <= self._free_count

    def allocate(self, n: int) -> np.ndarray:
        """Claim the ``n`` lowest-id free nodes."""
        if n < 1:
            raise AllocationError("must allocate at least one node")
        if n > self._free_count:
            raise AllocationError(
                f"requested {n} nodes but only {self._free_count} free"
            )
        heap = self._free_heap
        pop = heapq.heappop
        free = self._free
        # Successive min-pops yield the lowest free ids in ascending
        # order — the same ids (and intp dtype) flatnonzero produced.
        taken = [pop(heap) for _ in range(n)]
        for i in taken:
            free[i] = 0
        self._free_count -= n
        return np.array(taken, dtype=np.intp)

    def state(self) -> dict:
        """Checkpoint payload; heap order is preserved verbatim.

        The free-map travels as a numpy bool array — the format the
        pipeline's pickled resume checkpoints carry regardless of the
        pool's in-memory representation.
        """
        return {
            "free": np.frombuffer(bytes(self._free), dtype=bool).copy(),
            "free_count": self._free_count,
            "free_heap": list(self._free_heap),
        }

    @classmethod
    def from_state(cls, state: dict) -> "NodePool":
        pool = cls(len(state["free"]))
        pool._free = bytearray(np.asarray(state["free"], dtype=bool).tobytes())
        pool._free_count = state["free_count"]
        pool._free_heap = list(state["free_heap"])
        return pool

    def release(self, ids: np.ndarray) -> None:
        """Return nodes to the pool; double-free is an error."""
        free = self._free
        heap = self._free_heap
        push = heapq.heappush
        id_list = ids.tolist() if isinstance(ids, np.ndarray) else list(ids)
        for i in id_list:
            if free[i]:
                raise AllocationError(f"double free of node {i}")
            free[i] = 1
            push(heap, i)
        self._free_count += len(id_list)
