"""Discrete-event batch-scheduler substrate.

One engine models both of the paper's batch systems (Torque/Maui on
Emmy, Slurm on Meggie): jobs arrive with a node count and a requested
walltime, wait in a FIFO queue, and are placed by FCFS with EASY
backfilling onto whole nodes (node access on both systems is
job-exclusive). The engine produces start times and node allocations —
the inputs the telemetry layer and the Fig 1 utilization analysis need.
"""

from repro.scheduler.accounting import accounting_table
from repro.scheduler.job import ScheduledJob
from repro.scheduler.queueing import JobQueue, RunningSet
from repro.scheduler.reference import ReferenceSimulator, reference_simulate
from repro.scheduler.simulator import SchedulerConfig, Simulator, simulate

__all__ = [
    "ScheduledJob",
    "Simulator",
    "SchedulerConfig",
    "simulate",
    "accounting_table",
    "JobQueue",
    "RunningSet",
    "ReferenceSimulator",
    "reference_simulate",
]
