"""Accounting records — what Torque/Slurm log about every job.

The paper combines these records (submit/start/end, requested
resources) with the monitoring data to build its job-level dataset; this
module renders the scheduler output as a :class:`~repro.frames.table.Table`
in that shape.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.frames import Table
from repro.scheduler.job import ScheduledJob

__all__ = ["accounting_table"]


def accounting_table(scheduled: Sequence[ScheduledJob]) -> Table:
    """One row per job with the batch system's bookkeeping columns."""
    jobs = list(scheduled)
    return Table(
        {
            "job_id": np.asarray([j.spec.job_id for j in jobs], dtype=np.int64),
            "user": np.asarray([j.spec.user_id for j in jobs], dtype=str),
            "app": np.asarray([j.spec.app for j in jobs], dtype=str),
            "system": np.asarray([j.spec.system for j in jobs], dtype=str),
            "class_id": np.asarray([j.spec.class_id for j in jobs], dtype=np.int64),
            "nodes": np.asarray([j.spec.nodes for j in jobs], dtype=np.int64),
            "submit_s": np.asarray([j.spec.submit_s for j in jobs], dtype=np.int64),
            "start_s": np.asarray([j.start_s for j in jobs], dtype=np.int64),
            "end_s": np.asarray([j.end_s for j in jobs], dtype=np.int64),
            "runtime_s": np.asarray([j.spec.runtime_s for j in jobs], dtype=np.int64),
            "req_walltime_s": np.asarray(
                [j.spec.req_walltime_s for j in jobs], dtype=np.int64
            ),
            "wait_s": np.asarray([j.wait_s for j in jobs], dtype=np.int64),
        }
    )
