"""Incremental scheduler containers: the wait queue and the running set.

These two structures carry the hot state of the discrete-event engine
(:class:`repro.scheduler.simulator.Simulator`). Both replace per-pass
O(n) rebuilds with incremental maintenance:

* :class:`JobQueue` — an intrusive doubly-linked FCFS queue. The engine
  pops the head (FCFS start) and removes arbitrary interior entries
  (backfill start) in O(1), where the previous ``list``-backed queue
  paid an O(n) memmove per ``pop``.
* :class:`RunningSet` — the running jobs ordered by *requested* end
  time, maintained with one ``bisect.insort`` per start and one lookup
  + delete per completion. The EASY shadow-time computation becomes a
  pure-Python cumulative scan over an already-sorted list that stops at
  the first feasible release point, instead of re-sorting every running
  job with ``np.argsort`` on every schedule pass.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.workload.generator import JobSpec

__all__ = ["JobQueue", "QueueNode", "RunningSet"]


class QueueNode:
    """One linked-queue cell; exposed so the engine can unlink it in O(1).

    ``nodes`` and ``req_walltime_s`` mirror the spec fields the backfill
    scan tests millions of times — caching them on the slotted cell
    saves a dataclass attribute chase per scanned job.
    """

    __slots__ = ("spec", "nodes", "req_walltime_s", "prev", "next")

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.nodes = spec.nodes
        self.req_walltime_s = spec.req_walltime_s
        self.prev: QueueNode | None = None
        self.next: QueueNode | None = None


class JobQueue:
    """Doubly-linked FCFS queue with O(1) head pop and interior removal."""

    __slots__ = ("_head", "_tail", "_len")

    def __init__(self) -> None:
        self._head: QueueNode | None = None
        self._tail: QueueNode | None = None
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self):
        """Queued specs in FCFS order (diagnostics and tests)."""
        node = self._head
        while node is not None:
            yield node.spec
            node = node.next

    @property
    def head(self) -> QueueNode | None:
        """The FCFS head cell, or ``None`` when empty."""
        return self._head

    @property
    def tail(self) -> QueueNode | None:
        """The most recently appended cell, or ``None`` when empty."""
        return self._tail

    def append(self, spec: JobSpec) -> QueueNode:
        """Enqueue at the tail; returns the new cell."""
        node = QueueNode(spec)
        if self._tail is None:
            self._head = self._tail = node
        else:
            node.prev = self._tail
            self._tail.next = node
            self._tail = node
        self._len += 1
        return node

    def popleft(self) -> JobSpec:
        """Dequeue the FCFS head."""
        node = self._head
        if node is None:
            raise IndexError("pop from empty JobQueue")
        self.remove(node)
        return node.spec

    def remove(self, node: QueueNode) -> None:
        """Unlink ``node`` wherever it sits — O(1)."""
        prev, nxt = node.prev, node.next
        if prev is None:
            self._head = nxt
        else:
            prev.next = nxt
        if nxt is None:
            self._tail = prev
        else:
            nxt.prev = prev
        node.prev = node.next = None
        self._len -= 1


class RunningSet:
    """Running jobs sorted by requested end time, maintained incrementally.

    Entries are ``(requested_end_s, start_seq, nodes)`` triples; the
    monotone ``start_seq`` breaks end-time ties in start order, which is
    exactly the order a stable sort over the engine's insertion-ordered
    running dict produced before — so :meth:`shadow` returns the same
    (shadow time, extra nodes) pair as the old per-pass
    ``np.argsort``-based recomputation.
    """

    __slots__ = ("_entries", "_by_job", "_seq")

    def __init__(self) -> None:
        self._entries: list[tuple[int, int, int]] = []
        self._by_job: dict[int, tuple[int, int, int]] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, job_id: int, requested_end_s: int, nodes: int) -> None:
        """Insert a newly started job — O(log n) search + one insort."""
        entry = (requested_end_s, self._seq, nodes)
        self._seq += 1
        insort(self._entries, entry)
        self._by_job[job_id] = entry

    def discard(self, job_id: int) -> None:
        """Remove a completed job; unique ``start_seq`` makes the hit exact."""
        entry = self._by_job.pop(job_id)
        del self._entries[bisect_left(self._entries, entry)]

    def state(self) -> dict:
        """Checkpoint payload; entry order and ``start_seq`` are preserved."""
        return {
            "entries": list(self._entries),
            "by_job": dict(self._by_job),
            "seq": self._seq,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RunningSet":
        running = cls()
        running._entries = list(state["entries"])
        running._by_job = dict(state["by_job"])
        running._seq = state["seq"]
        return running

    def shadow(self, head_nodes: int, free_now: int) -> tuple[int, int] | None:
        """EASY shadow time and extra nodes for a blocked queue head.

        Returns ``None`` when the head is not actually blocked (e.g. an
        admission rule, not the node count, is holding it) or when the
        running jobs can never free enough nodes — the two conditions
        :func:`repro.scheduler.backfill.shadow_time` signals with
        ``ValueError``; both mean "no backfill this pass".
        """
        if free_now >= head_nodes:
            return None
        cumulative = free_now
        for end_s, _, nodes in self._entries:
            cumulative += nodes
            if cumulative >= head_nodes:
                return end_s, cumulative - head_nodes
        return None
