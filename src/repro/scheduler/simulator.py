"""The discrete-event scheduling engine.

Events are job arrivals and job completions; on every event the engine
runs one FCFS pass over the queue head plus an EASY-backfill scan over a
bounded prefix of the remaining queue (production schedulers bound this
scan too — Maui's ``BFDEPTH``, Slurm's ``bf_max_job_test``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SchedulerError
from repro.scheduler.backfill import shadow_time
from repro.scheduler.job import ScheduledJob
from repro.scheduler.nodepool import NodePool
from repro.workload.generator import JobSpec

__all__ = ["SchedulerConfig", "Simulator", "simulate"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Engine knobs shared by the Torque/Maui and Slurm personalities."""

    num_nodes: int
    backfill_depth: int = 100

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise SchedulerError("num_nodes must be >= 1")
        if self.backfill_depth < 0:
            raise SchedulerError("backfill_depth must be >= 0")


class Simulator:
    """FCFS + EASY backfill over exclusive whole nodes."""

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config
        self.pool = NodePool(config.num_nodes)
        self._queue: list[JobSpec] = []
        # Running jobs as (requested_end, nodes, node_ids) for shadow-time
        # computation, keyed by job id.
        self._running: dict[int, ScheduledJob] = {}
        self._results: list[ScheduledJob] = []

    # -- core loop -----------------------------------------------------------

    def run(self, jobs: Sequence[JobSpec]) -> list[ScheduledJob]:
        """Schedule all jobs; returns completions in start order."""
        jobs = sorted(jobs, key=lambda j: (j.submit_s, j.job_id))
        for job in jobs:
            if job.nodes > self.config.num_nodes:
                raise SchedulerError(
                    f"job {job.job_id} requests {job.nodes} nodes; "
                    f"system has {self.config.num_nodes}"
                )
        # Completion events: (end_s, seq, job_id). Arrivals are consumed
        # from the sorted list with a cursor instead of heap entries.
        completions: list[tuple[int, int, int]] = []
        seq = 0
        cursor = 0
        n_jobs = len(jobs)
        while cursor < n_jobs or completions or self._queue:
            next_arrival = jobs[cursor].submit_s if cursor < n_jobs else None
            next_completion = completions[0][0] if completions else None
            if next_arrival is None and next_completion is None:
                raise SchedulerError(
                    f"deadlock: {len(self._queue)} queued jobs can never start "
                    "(machine too small or admission constraint unsatisfiable)"
                )
            # Process the earlier event; completions first on ties so
            # arrivals see the freed nodes.
            if next_completion is not None and (
                next_arrival is None or next_completion <= next_arrival
            ):
                now, _, job_id = heapq.heappop(completions)
                finished = self._running.pop(job_id)
                self.pool.release(finished.node_ids)
                self._on_finish(finished)
            else:
                now = next_arrival
                while cursor < n_jobs and jobs[cursor].submit_s == now:
                    self._queue.append(jobs[cursor])
                    cursor += 1
            for started in self._schedule_pass(now):
                heapq.heappush(completions, (started.end_s, seq, started.spec.job_id))
                seq += 1
        return self._results

    def _schedule_pass(self, now: int) -> list[ScheduledJob]:
        """One FCFS + backfill pass; returns newly started jobs."""
        started: list[ScheduledJob] = []
        # FCFS: start queue heads while they fit (nodes AND any extra
        # admission constraint a subclass imposes, e.g. a power budget).
        while (
            self._queue
            and self.pool.fits(self._queue[0].nodes)
            and self._admissible(self._queue[0])
        ):
            started.append(self._start(self._queue.pop(0), now))
        if not self._queue or not self._running:
            return started
        # EASY backfill around the blocked head.
        head = self._queue[0]
        ends = [r.requested_end_s for r in self._running.values()]
        counts = [r.spec.nodes for r in self._running.values()]
        try:
            shadow, extra = shadow_time(head.nodes, self.pool.free_count, ends, counts)
        except ValueError:
            return started
        i = 1
        scanned = 0
        while i < len(self._queue) and scanned < self.config.backfill_depth:
            job = self._queue[i]
            scanned += 1
            if (
                self.pool.fits(job.nodes)
                and self._admissible(job)
                and (now + job.req_walltime_s <= shadow or job.nodes <= extra)
            ):
                if job.nodes <= extra:
                    extra -= job.nodes
                started.append(self._start(self._queue.pop(i), now))
            else:
                i += 1
        return started

    def _start(self, spec: JobSpec, now: int) -> ScheduledJob:
        node_ids = self.pool.allocate(spec.nodes)
        job = ScheduledJob(spec=spec, start_s=now, node_ids=node_ids)
        self._running[spec.job_id] = job
        self._results.append(job)
        self._on_start(job)
        return job

    # -- subclass hooks --------------------------------------------------

    def _admissible(self, spec: JobSpec) -> bool:
        """Extra admission constraint; base engine admits everything."""
        return True

    def _on_start(self, job: ScheduledJob) -> None:
        """Called after a job is placed."""

    def _on_finish(self, job: ScheduledJob) -> None:
        """Called after a job completes and its nodes are released."""


def simulate(
    jobs: Iterable[JobSpec], num_nodes: int, backfill_depth: int = 100
) -> list[ScheduledJob]:
    """One-shot convenience wrapper around :class:`Simulator`."""
    sim = Simulator(SchedulerConfig(num_nodes=num_nodes, backfill_depth=backfill_depth))
    return sim.run(list(jobs))
