"""The discrete-event scheduling engine (incremental core).

Events are job arrivals and job completions; on every event the engine
runs one FCFS pass over the queue head plus an EASY-backfill scan over a
bounded prefix of the remaining queue (production schedulers bound this
scan too — Maui's ``BFDEPTH``, Slurm's ``bf_max_job_test``).

The hot state is maintained incrementally instead of rebuilt per pass
(see :mod:`repro.scheduler.queueing`):

* the wait queue is an intrusive linked list — O(1) head pop (FCFS
  start) and O(1) interior removal (backfill start);
* the running jobs live in a :class:`~repro.scheduler.queueing.RunningSet`
  sorted by requested end time — one insort per start, one delete per
  finish — so the EASY shadow time is a short cumulative scan instead of
  a per-pass ``np.argsort`` over every running job;
* arrival events behind a blocked head run a *reduced* pass that scans
  only the newly queued jobs (event coalescing; see
  :meth:`Simulator._arrival_pass` for the invariant that makes this
  provably outcome-identical to a full pass).

Outputs are bit-identical to the retained naive implementation
(:mod:`repro.scheduler.reference`); ``tests/scheduler/test_equivalence.py``
enforces this on randomized workloads and a pinned-seed golden digest.
"""

from __future__ import annotations

import heapq
import operator
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import SchedulerError
from repro.scheduler.job import ScheduledJob
from repro.scheduler.nodepool import NodePool
from repro.scheduler.queueing import JobQueue, QueueNode, RunningSet
from repro.workload.generator import JobSpec

__all__ = ["SchedulerConfig", "SimulatorState", "Simulator", "simulate"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Engine knobs shared by the Torque/Maui and Slurm personalities."""

    num_nodes: int
    backfill_depth: int = 100

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise SchedulerError("num_nodes must be >= 1")
        if self.backfill_depth < 0:
            raise SchedulerError("backfill_depth must be >= 0")


@dataclass
class SimulatorState:
    """Picklable checkpoint of a mid-stream :class:`Simulator`.

    Captures *everything* event processing depends on — the free-node
    heap arrangement, the wait queue with its settled prefix and resume
    position, the running set (entries, per-job index, start sequence),
    and the pending completion heap — so a simulator restored from a
    checkpoint schedules the remaining arrivals bit-identically to one
    that never stopped. Produced by :meth:`Simulator.snapshot`, consumed
    by :meth:`Simulator.restore`; the streaming pipeline stores one per
    spilled chunk shard (docs/PIPELINE.md).
    """

    config: SchedulerConfig
    pool: dict[str, Any]
    running: list[ScheduledJob]
    running_set: dict[str, Any]
    queue: list[JobSpec]
    settled_prefix: int
    resume_index: int | None  # position in queue; None = block reaches tail
    completions: list[tuple[int, int, int]]
    event_seq: int
    clock: int
    pending_results: list[ScheduledJob] = field(default_factory=list)


class Simulator:
    """FCFS + EASY backfill over exclusive whole nodes.

    Jobs can be supplied all at once (:meth:`run`) or in submit-ordered
    chunks (:meth:`feed` + :meth:`drain`, harvesting started jobs with
    :meth:`take_results` between chunks) — the event sequence, and hence
    every placement, is identical either way.
    """

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config
        self.pool = NodePool(config.num_nodes)
        self._queue = JobQueue()
        self._running: dict[int, ScheduledJob] = {}
        self._running_set = RunningSet()
        self._results: list[ScheduledJob] = []
        # Completion events: (end_s, seq, job_id); arrivals are consumed
        # from each fed chunk with a cursor instead of heap entries.
        self._completions: list[tuple[int, int, int]] = []
        self._event_seq = 0
        # Time of the last processed arrival — feeding an earlier job
        # would rewrite history the engine already committed.
        self._clock = 0
        # Arrival coalescing is only sound when admission is the default
        # always-true rule: a subclass constraint (e.g. a power budget)
        # can flip with time or committed state, invalidating the
        # "previously rejected jobs stay rejected" invariant.
        self._default_admission = type(self)._admissible is Simulator._admissible
        self._coalesce_arrivals = self._default_admission
        # The queue's *settled prefix*: the first `_settled_prefix`
        # non-head jobs were scanned and rejected by the most recent
        # pass under conditions that have only tightened since (they sit
        # contiguously — started jobs left the queue). `_resume_node` is
        # the first cell after that block, i.e. where a reduced arrival
        # pass resumes scanning; None means the block reaches the tail.
        self._settled_prefix = 0
        self._resume_node: QueueNode | None = None

    # -- core loop -----------------------------------------------------------

    def run(self, jobs: Sequence[JobSpec]) -> list[ScheduledJob]:
        """Schedule all jobs; returns completions in start order."""
        self.feed(jobs)
        self.drain()
        return self._results

    def feed(self, jobs: Sequence[JobSpec]) -> None:
        """Process one submit-ordered chunk of arrivals.

        Events are advanced exactly to the chunk's last submit time;
        completions beyond it stay pending so a later chunk (whose jobs
        must not submit earlier) continues the identical event sequence.
        """
        # attrgetter builds the (submit, id) keys in C — the sort is
        # usually a no-op pass over an already-ordered plan slice, so
        # key extraction is its entire cost.
        jobs = sorted(jobs, key=operator.attrgetter("submit_s", "job_id"))
        for job in jobs:
            if job.nodes > self.config.num_nodes:
                raise SchedulerError(
                    f"job {job.job_id} requests {job.nodes} nodes; "
                    f"system has {self.config.num_nodes}"
                )
        if jobs and jobs[0].submit_s < self._clock:
            raise SchedulerError(
                f"job {jobs[0].job_id} submits at {jobs[0].submit_s}, before "
                f"the already-processed arrival time {self._clock}"
            )
        completions = self._completions
        cursor = 0
        n_jobs = len(jobs)
        while cursor < n_jobs:
            next_arrival = jobs[cursor].submit_s
            # Process the earlier event; completions first on ties so
            # arrivals see the freed nodes.
            if completions and completions[0][0] <= next_arrival:
                newly = self._complete_next()
            else:
                now = next_arrival
                self._clock = now
                q_before = len(self._queue)
                tail_before = self._queue.tail
                while cursor < n_jobs and jobs[cursor].submit_s == now:
                    self._queue.append(jobs[cursor])
                    cursor += 1
                if self._coalesce_arrivals and q_before > 0:
                    # Head was left blocked on its node count by the
                    # previous pass and the pool/running set are
                    # untouched since: the settled prefix re-rejects, so
                    # scanning resumes right after it.
                    if self._resume_node is None:
                        # The settled block reached the old tail; the
                        # first new cell is where scanning picks up.
                        assert tail_before is not None
                        self._resume_node = tail_before.next
                    newly = self._arrival_pass(now)
                else:
                    newly = self._schedule_pass(now)
            self._push_completions(newly)

    def drain(self) -> None:
        """Process every remaining event (no further arrivals expected)."""
        while self._completions or self._queue:
            if not self._completions:
                raise SchedulerError(
                    f"deadlock: {len(self._queue)} queued jobs can never start "
                    "(machine too small or admission constraint unsatisfiable)"
                )
            self._push_completions(self._complete_next())

    def take_results(self) -> list[ScheduledJob]:
        """Drain jobs started since the last harvest (start order).

        Started jobs are final — their placement can never change — so a
        streaming consumer can take them chunk by chunk; the
        concatenation across harvests equals :meth:`run`'s return value.
        """
        out = self._results
        self._results = []
        return out

    def _complete_next(self) -> list[ScheduledJob]:
        """Pop and process the earliest completion event."""
        now, _, job_id = heapq.heappop(self._completions)
        finished = self._running.pop(job_id)
        self.pool.release(finished.node_ids)
        self._running_set.discard(job_id)
        self._on_finish(finished)
        return self._schedule_pass(now)

    def _push_completions(self, newly: list[ScheduledJob]) -> None:
        for started in newly:
            heapq.heappush(
                self._completions, (started.end_s, self._event_seq, started.spec.job_id)
            )
            self._event_seq += 1

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> SimulatorState:
        """Capture the full engine state (after harvesting results)."""
        resume_index: int | None = None
        if self._resume_node is not None:
            index = 0
            node = self._queue.head
            while node is not None and node is not self._resume_node:
                index += 1
                node = node.next
            if node is None:
                raise SchedulerError("resume node vanished from the queue")
            resume_index = index
        return SimulatorState(
            config=self.config,
            pool=self.pool.state(),
            running=list(self._running.values()),
            running_set=self._running_set.state(),
            queue=list(self._queue),
            settled_prefix=self._settled_prefix,
            resume_index=resume_index,
            completions=list(self._completions),
            event_seq=self._event_seq,
            clock=self._clock,
            pending_results=list(self._results),
        )

    @classmethod
    def restore(cls, state: SimulatorState) -> "Simulator":
        """Rebuild a simulator that continues exactly where ``state`` was."""
        sim = cls(state.config)
        sim.pool = NodePool.from_state(state.pool)
        sim._running = {job.spec.job_id: job for job in state.running}
        sim._running_set = RunningSet.from_state(state.running_set)
        for spec in state.queue:
            sim._queue.append(spec)
        sim._settled_prefix = state.settled_prefix
        if state.resume_index is not None:
            node = sim._queue.head
            for _ in range(state.resume_index):
                assert node is not None
                node = node.next
            sim._resume_node = node
        sim._completions = list(state.completions)
        sim._event_seq = state.event_seq
        sim._clock = state.clock
        sim._results = list(state.pending_results)
        return sim

    def _schedule_pass(self, now: int) -> list[ScheduledJob]:
        """One full FCFS + backfill pass; returns newly started jobs."""
        started: list[ScheduledJob] = []
        queue = self._queue
        pool = self.pool
        # A full pass invalidates any earlier settled prefix (a
        # completion may have loosened conditions); every exit path
        # below re-establishes it together with the resume cell.
        self._settled_prefix = 0
        self._resume_node = None
        default_adm = self._default_admission
        # FCFS: start queue heads while they fit (nodes AND any extra
        # admission constraint a subclass imposes, e.g. a power budget).
        while (
            queue
            and pool.fits(queue.head.spec.nodes)
            and (default_adm or self._admissible(queue.head.spec))
        ):
            started.append(self._start(queue.popleft(), now))
        if not queue:
            return started
        self._resume_node = queue.head.next
        if not self._running:
            return started
        free = pool.free_count
        depth = self.config.backfill_depth
        if free == 0:
            # Machine full: nothing fits, so skip the scan. The settled
            # prefix stays empty (nothing was scanned) and the next
            # reduced pass starts from head.next.
            return started
        # EASY backfill around the blocked head.
        head = queue.head.spec
        sh = self._running_set.shadow(head.nodes, free)
        if sh is None:
            return started
        shadow, extra = sh
        node = queue.head.next
        scanned = 0
        rejected = 0
        loosened = False
        while node is not None and scanned < depth:
            scanned += 1
            nxt = node.next
            nodes = node.nodes
            if (
                nodes <= free
                and (default_adm or self._admissible(node.spec))
                and (now + node.req_walltime_s <= shadow or nodes <= extra)
            ):
                if nodes <= extra:
                    extra -= nodes
                    # A start that consumes extra nodes but vacates
                    # strictly before the shadow time gives that surplus
                    # back when the next pass recomputes it fresh — so
                    # this pass's rejections are not carried over.
                    if now + node.req_walltime_s < shadow:
                        loosened = True
                queue.remove(node)
                started.append(self._start(node.spec, now))
                free -= nodes
            else:
                rejected += 1
            node = nxt
        if loosened:
            # A start gave extra-node surplus back (see above): this
            # pass's rejections cannot be carried over, so the next
            # reduced pass rescans the whole window.
            self._settled_prefix = 0
            self._resume_node = queue.head.next
        else:
            self._settled_prefix = rejected
            self._resume_node = node
        return started

    def _arrival_pass(self, now: int) -> list[ScheduledJob]:
        """Reduced pass for arrivals behind a blocked head (coalescing).

        After every pass the invariant holds: the head (if any) was left
        blocked on its node count, and nothing mutates the pool or
        running set until the next event. For a pure *arrival* event a
        full pass would therefore (a) fail the FCFS loop immediately —
        free count unchanged; (b) recompute the identical shadow/extra
        pair — running set unchanged; and (c) re-reject every job in the
        settled prefix — ``fits`` is unchanged, the extra-nodes budget
        is no larger (passes that loosen it rewind the prefix), and the
        ``now + walltime <= shadow`` deadline only gets harder as
        ``now`` advances. So scanning resumes at ``_resume_node`` with
        whatever backfill-depth budget the settled prefix has not
        already consumed. Starting a job here cannot shift the head's
        shadow time — EASY backfill never delays the head — so the
        fresh shadow/extra pair stays exact mid-scan.
        """
        budget = self.config.backfill_depth - self._settled_prefix
        if budget <= 0:
            return []
        free = self.pool.free_count
        if free == 0:
            # Machine full: every scanned job would be rejected on node
            # count. Leave the prefix/resume state untouched (lazily
            # unscanned) instead of walking the queue to extend it.
            return []
        queue = self._queue
        head = queue.head.spec
        sh = self._running_set.shadow(head.nodes, free)
        if sh is None:
            return []
        shadow, extra = sh
        started: list[ScheduledJob] = []
        node: QueueNode | None = self._resume_node
        scanned = 0
        rejected = 0
        loosened = False
        while node is not None and scanned < budget:
            scanned += 1
            nxt = node.next
            nodes = node.nodes
            if nodes <= free and (
                now + node.req_walltime_s <= shadow or nodes <= extra
            ):
                if nodes <= extra:
                    extra -= nodes
                    # Same extra-surplus give-back as in the full pass:
                    # carry no prefix past a loosening start.
                    if now + node.req_walltime_s < shadow:
                        loosened = True
                self._queue.remove(node)
                started.append(self._start(node.spec, now))
                free -= nodes
            else:
                rejected += 1
            node = nxt
        if loosened:
            self._settled_prefix = 0
            self._resume_node = queue.head.next
        else:
            # The settled jobs stay rejected (conditions no looser since
            # they were scanned) and this scan's rejections extend the
            # block contiguously.
            self._settled_prefix += rejected
            self._resume_node = node
        return started

    def _start(self, spec: JobSpec, now: int) -> ScheduledJob:
        node_ids = self.pool.allocate(spec.nodes)
        job = ScheduledJob(spec=spec, start_s=now, node_ids=node_ids)
        self._running[spec.job_id] = job
        self._running_set.add(spec.job_id, job.requested_end_s, spec.nodes)
        self._results.append(job)
        self._on_start(job)
        return job

    # -- subclass hooks --------------------------------------------------

    def _admissible(self, spec: JobSpec) -> bool:
        """Extra admission constraint; base engine admits everything."""
        return True

    def _on_start(self, job: ScheduledJob) -> None:
        """Called after a job is placed."""

    def _on_finish(self, job: ScheduledJob) -> None:
        """Called after a job completes and its nodes are released."""


def simulate(
    jobs: Iterable[JobSpec], num_nodes: int, backfill_depth: int = 100
) -> list[ScheduledJob]:
    """One-shot convenience wrapper around :class:`Simulator`."""
    sim = Simulator(SchedulerConfig(num_nodes=num_nodes, backfill_depth=backfill_depth))
    return sim.run(list(jobs))
