"""EASY backfilling.

With the queue head blocked, compute the head's *shadow time* — the
earliest instant enough nodes will be free assuming running jobs hold
their nodes until their requested walltime ends — and the number of
*extra* nodes spare at that instant. A queued job may jump the head iff
it fits in the currently free nodes and either (a) its requested end is
no later than the shadow time, or (b) it needs no more than the extra
nodes. This is the classic EASY rule: backfilling never delays the head.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["shadow_time"]


def shadow_time(
    head_nodes: int,
    free_now: int,
    running_end_times: Sequence[int],
    running_node_counts: Sequence[int],
) -> tuple[int, int]:
    """Return ``(shadow_t, extra_nodes)`` for a blocked queue head.

    ``running_end_times`` are *requested* (walltime-limit) end times.
    ``extra_nodes`` is how many nodes beyond the head's demand will be
    free at the shadow time.
    """
    if free_now >= head_nodes:
        raise ValueError("head is not blocked; shadow time undefined")
    if not running_end_times:
        raise ValueError("head blocked but nothing is running")
    ends = np.asarray(running_end_times, dtype=np.int64)
    counts = np.asarray(running_node_counts, dtype=np.int64)
    order = np.argsort(ends, kind="stable")
    cumulative = free_now + np.cumsum(counts[order])
    idx = int(np.argmax(cumulative >= head_nodes))
    if cumulative[idx] < head_nodes:
        raise ValueError("running jobs cannot ever free enough nodes for the head")
    return int(ends[order[idx]]), int(cumulative[idx] - head_nodes)
