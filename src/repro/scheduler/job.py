"""Scheduler-side job records."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.workload.generator import JobSpec

__all__ = ["ScheduledJob"]


@dataclass(frozen=True)
class ScheduledJob:
    """A job after placement: spec + when and where it ran."""

    spec: JobSpec
    start_s: int
    node_ids: np.ndarray

    def __post_init__(self) -> None:
        if self.start_s < self.spec.submit_s:
            raise SchedulerError(
                f"job {self.spec.job_id}: started before submission"
            )
        if len(self.node_ids) != self.spec.nodes:
            raise SchedulerError(
                f"job {self.spec.job_id}: allocated {len(self.node_ids)} nodes, "
                f"requested {self.spec.nodes}"
            )
        # set() over the id list is ~10x cheaper than np.unique for the
        # small allocations this guard sees once per job start.
        if len(set(self.node_ids.tolist())) != len(self.node_ids):
            raise SchedulerError(f"job {self.spec.job_id}: duplicate node allocation")

    @property
    def end_s(self) -> int:
        """Actual completion time."""
        return self.start_s + self.spec.runtime_s

    @property
    def requested_end_s(self) -> int:
        """Walltime-limit end the scheduler plans around."""
        return self.start_s + self.spec.req_walltime_s

    @property
    def wait_s(self) -> int:
        return self.start_s - self.spec.submit_s

    @property
    def node_seconds(self) -> int:
        return self.spec.nodes * self.spec.runtime_s
