"""The naive reference scheduler, retained verbatim for equivalence tests.

This module preserves the original list-backed, rebuild-everything
implementation of the FCFS + EASY engine exactly as it was before the
incremental rewrite of :mod:`repro.scheduler.simulator`: an O(n)
``list.pop`` queue, per-pass reconstruction of the running jobs'
``ends``/``counts`` lists, per-pass ``np.argsort`` inside
:func:`~repro.scheduler.backfill.shadow_time`, and an O(num_nodes)
``np.flatnonzero`` scan per allocation. It is deliberately slow and
must stay semantically frozen — the property tests in
``tests/scheduler/test_equivalence.py`` check the optimized engine
against it on randomized workloads, and any divergence (start times,
node ids, completion order) is a bug in the optimized engine.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.errors import AllocationError, SchedulerError
from repro.scheduler.backfill import shadow_time
from repro.scheduler.job import ScheduledJob
from repro.scheduler.simulator import SchedulerConfig
from repro.workload.generator import JobSpec

__all__ = ["ReferenceNodePool", "ReferenceSimulator", "reference_simulate"]


class ReferenceNodePool:
    """The original boolean free-map pool: O(num_nodes) scan per allocation."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise AllocationError("pool needs at least one node")
        self._free = np.ones(num_nodes, dtype=bool)
        self._free_count = num_nodes

    @property
    def free_count(self) -> int:
        """How many nodes are currently unallocated."""
        return self._free_count

    def fits(self, n: int) -> bool:
        """Whether ``n`` nodes are free right now."""
        return n <= self._free_count

    def allocate(self, n: int) -> np.ndarray:
        """Claim the ``n`` lowest-id free nodes via a full free-map scan."""
        if n < 1:
            raise AllocationError("must allocate at least one node")
        if n > self._free_count:
            raise AllocationError(
                f"requested {n} nodes but only {self._free_count} free"
            )
        ids = np.flatnonzero(self._free)[:n]
        self._free[ids] = False
        self._free_count -= n
        return ids

    def release(self, ids: np.ndarray) -> None:
        """Return nodes to the pool; double-free is an error."""
        ids = np.asarray(ids)
        if np.any(self._free[ids]):
            raise AllocationError(f"double free of nodes {ids[self._free[ids]].tolist()}")
        self._free[ids] = True
        self._free_count += len(ids)


class ReferenceSimulator:
    """FCFS + EASY backfill, original per-pass-rebuild implementation."""

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config
        self.pool = ReferenceNodePool(config.num_nodes)
        self._queue: list[JobSpec] = []
        self._running: dict[int, ScheduledJob] = {}
        self._results: list[ScheduledJob] = []

    def run(self, jobs: Sequence[JobSpec]) -> list[ScheduledJob]:
        """Schedule all jobs; returns completions in start order."""
        jobs = sorted(jobs, key=lambda j: (j.submit_s, j.job_id))
        for job in jobs:
            if job.nodes > self.config.num_nodes:
                raise SchedulerError(
                    f"job {job.job_id} requests {job.nodes} nodes; "
                    f"system has {self.config.num_nodes}"
                )
        completions: list[tuple[int, int, int]] = []
        seq = 0
        cursor = 0
        n_jobs = len(jobs)
        while cursor < n_jobs or completions or self._queue:
            next_arrival = jobs[cursor].submit_s if cursor < n_jobs else None
            next_completion = completions[0][0] if completions else None
            if next_arrival is None and next_completion is None:
                raise SchedulerError(
                    f"deadlock: {len(self._queue)} queued jobs can never start "
                    "(machine too small or admission constraint unsatisfiable)"
                )
            if next_completion is not None and (
                next_arrival is None or next_completion <= next_arrival
            ):
                now, _, job_id = heapq.heappop(completions)
                finished = self._running.pop(job_id)
                self.pool.release(finished.node_ids)
                self._on_finish(finished)
            else:
                now = next_arrival
                while cursor < n_jobs and jobs[cursor].submit_s == now:
                    self._queue.append(jobs[cursor])
                    cursor += 1
            for started in self._schedule_pass(now):
                heapq.heappush(completions, (started.end_s, seq, started.spec.job_id))
                seq += 1
        return self._results

    def _schedule_pass(self, now: int) -> list[ScheduledJob]:
        """One FCFS + backfill pass; rebuilds running-set views from scratch."""
        started: list[ScheduledJob] = []
        while (
            self._queue
            and self.pool.fits(self._queue[0].nodes)
            and self._admissible(self._queue[0])
        ):
            started.append(self._start(self._queue.pop(0), now))
        if not self._queue or not self._running:
            return started
        head = self._queue[0]
        ends = [r.requested_end_s for r in self._running.values()]
        counts = [r.spec.nodes for r in self._running.values()]
        try:
            shadow, extra = shadow_time(head.nodes, self.pool.free_count, ends, counts)
        except ValueError:
            return started
        i = 1
        scanned = 0
        while i < len(self._queue) and scanned < self.config.backfill_depth:
            job = self._queue[i]
            scanned += 1
            if (
                self.pool.fits(job.nodes)
                and self._admissible(job)
                and (now + job.req_walltime_s <= shadow or job.nodes <= extra)
            ):
                if job.nodes <= extra:
                    extra -= job.nodes
                started.append(self._start(self._queue.pop(i), now))
            else:
                i += 1
        return started

    def _start(self, spec: JobSpec, now: int) -> ScheduledJob:
        node_ids = self.pool.allocate(spec.nodes)
        job = ScheduledJob(spec=spec, start_s=now, node_ids=node_ids)
        self._running[spec.job_id] = job
        self._results.append(job)
        self._on_start(job)
        return job

    # -- subclass hooks (mirror the optimized engine) ---------------------

    def _admissible(self, spec: JobSpec) -> bool:
        """Extra admission constraint; base engine admits everything."""
        return True

    def _on_start(self, job: ScheduledJob) -> None:
        """Called after a job is placed."""

    def _on_finish(self, job: ScheduledJob) -> None:
        """Called after a job completes and its nodes are released."""


def reference_simulate(
    jobs: Iterable[JobSpec], num_nodes: int, backfill_depth: int = 100
) -> list[ScheduledJob]:
    """One-shot wrapper around :class:`ReferenceSimulator` (tests only)."""
    sim = ReferenceSimulator(
        SchedulerConfig(num_nodes=num_nodes, backfill_depth=backfill_depth)
    )
    return sim.run(list(jobs))
