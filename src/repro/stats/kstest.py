"""Two-sample Kolmogorov–Smirnov test (from scratch).

Used by the seed-robustness checks: two independently generated traces
of the same system should produce per-node power distributions the KS
test cannot tell apart at small effect sizes, while Emmy-vs-Meggie must
be flagged as different. Cross-checked against scipy.stats.ks_2samp in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KsResult", "ks_two_sample"]


@dataclass(frozen=True)
class KsResult:
    """KS statistic with its asymptotic two-sided p-value."""

    statistic: float
    pvalue: float
    n1: int
    n2: int


def _kolmogorov_sf(t: float) -> float:
    """P[K > t] for the Kolmogorov distribution (alternating series)."""
    if t <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * np.exp(-2.0 * k * k * t * t)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_two_sample(a, b) -> KsResult:
    """Two-sided, two-sample KS test with the asymptotic p-value.

    Examples
    --------
    >>> rng = __import__("numpy").random.default_rng(0)
    >>> same = ks_two_sample(rng.normal(size=500), rng.normal(size=500))
    >>> same.pvalue > 0.01
    True
    """
    x = np.sort(np.asarray(a, dtype=float).ravel())
    y = np.sort(np.asarray(b, dtype=float).ravel())
    if x.size == 0 or y.size == 0:
        raise ValueError("both samples must be non-empty")
    if np.any(~np.isfinite(x)) or np.any(~np.isfinite(y)):
        raise ValueError("samples must be finite")
    # Evaluate both ECDFs on the pooled support.
    pooled = np.concatenate([x, y])
    cdf_x = np.searchsorted(x, pooled, side="right") / x.size
    cdf_y = np.searchsorted(y, pooled, side="right") / y.size
    d = float(np.max(np.abs(cdf_x - cdf_y)))
    n_eff = x.size * y.size / (x.size + y.size)
    t = (np.sqrt(n_eff) + 0.12 + 0.11 / np.sqrt(n_eff)) * d
    return KsResult(statistic=d, pvalue=_kolmogorov_sf(float(t)),
                    n1=int(x.size), n2=int(y.size))
