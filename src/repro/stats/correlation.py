"""Rank and linear correlation with significance tests.

Spearman's rho (Table 2 of the paper) is implemented from scratch:
mid-ranks for ties, Pearson correlation of the ranks, and a two-sided
p-value from the t-distribution approximation
``t = r * sqrt((n-2) / (1-r^2))`` with ``n-2`` degrees of freedom.
The test suite cross-checks against :func:`scipy.stats.spearmanr`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import betainc

__all__ = ["CorrelationResult", "pearson", "spearman", "rankdata"]


@dataclass(frozen=True)
class CorrelationResult:
    """Correlation coefficient with its two-sided p-value."""

    statistic: float
    pvalue: float
    n: int

    def __iter__(self):
        return iter((self.statistic, self.pvalue))


def rankdata(values) -> np.ndarray:
    """Mid-ranks (1-based; ties get the average of their rank span)."""
    x = np.asarray(values, dtype=float).ravel()
    order = np.argsort(x, kind="stable")
    ranks = np.empty(x.size, dtype=float)
    ranks[order] = np.arange(1, x.size + 1, dtype=float)
    # Average ranks within tie groups.
    sorted_x = x[order]
    boundaries = np.flatnonzero(np.diff(sorted_x) != 0) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [x.size]))
    mean_ranks = (starts + ends + 1) / 2.0  # ranks are 1-based
    group_of_sorted = np.repeat(np.arange(starts.size), ends - starts)
    ranks[order] = mean_ranks[group_of_sorted]
    return ranks


def _t_sf_two_sided(t: float, df: int) -> float:
    """Two-sided tail probability of Student's t via the incomplete beta."""
    if df <= 0:
        return float("nan")
    x = df / (df + t * t)
    return float(betainc(df / 2.0, 0.5, x))


def pearson(x, y) -> CorrelationResult:
    """Pearson linear correlation with a t-test p-value."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 3:
        raise ValueError("correlation requires at least 3 observations")
    xm = x - x.mean()
    ym = y - y.mean()
    denom = np.sqrt((xm * xm).sum() * (ym * ym).sum())
    if denom == 0.0:
        raise ValueError("correlation undefined for a constant input")
    r = float(np.clip((xm * ym).sum() / denom, -1.0, 1.0))
    n = x.size
    if abs(r) == 1.0:
        p = 0.0
    else:
        t = r * np.sqrt((n - 2) / (1.0 - r * r))
        p = _t_sf_two_sided(float(t), n - 2)
    return CorrelationResult(statistic=r, pvalue=p, n=n)


def spearman(x, y) -> CorrelationResult:
    """Spearman rank correlation (mid-ranks for ties) with p-value."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    return pearson(rankdata(x), rankdata(y))
