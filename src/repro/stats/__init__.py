"""Statistics toolkit used by every analysis in the paper.

The kernels here (ECDF/PDF construction, Spearman rank correlation with
p-value, Lorenz-style concentration curves, bootstrap confidence
intervals) are implemented from scratch on NumPy and, where scipy offers
a reference implementation, cross-checked against it in the test suite.
"""

from repro.stats.binning import freedman_diaconis_bins, histogram_pdf
from repro.stats.bootstrap import bootstrap_ci
from repro.stats.concentration import lorenz_curve, overlap_fraction, top_share
from repro.stats.correlation import pearson, spearman
from repro.stats.kstest import KsResult, ks_two_sample
from repro.stats.descriptive import coefficient_of_variation, describe, weighted_mean
from repro.stats.distributions import ECDF, cdf_at, fraction_below, quantile

__all__ = [
    "ECDF",
    "cdf_at",
    "fraction_below",
    "quantile",
    "pearson",
    "spearman",
    "lorenz_curve",
    "top_share",
    "overlap_fraction",
    "bootstrap_ci",
    "describe",
    "weighted_mean",
    "coefficient_of_variation",
    "histogram_pdf",
    "freedman_diaconis_bins",
    "KsResult",
    "ks_two_sample",
]
