"""Empirical distribution machinery (ECDFs, quantiles).

Every CDF figure in the paper (Figs 7, 9, 12, 14, 15) is an empirical
CDF of a per-job or per-user metric; :class:`ECDF` is the shared
representation the analysis layer returns for those figures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ECDF", "cdf_at", "fraction_below", "quantile"]


class ECDF:
    """Right-continuous empirical CDF of a 1-D sample.

    ``ecdf(x)`` evaluates P[X <= x]; ``ecdf.quantile(q)`` inverts it.

    Examples
    --------
    >>> e = ECDF([1.0, 2.0, 3.0, 4.0])
    >>> float(e(2.0))
    0.5
    >>> float(e.quantile(0.5))
    2.0
    """

    def __init__(self, sample) -> None:
        x = np.asarray(sample, dtype=float).ravel()
        if x.size == 0:
            raise ValueError("ECDF requires a non-empty sample")
        if np.any(~np.isfinite(x)):
            raise ValueError("ECDF sample must be finite")
        self._sorted = np.sort(x)

    @property
    def sample_size(self) -> int:
        return int(self._sorted.size)

    @property
    def support(self) -> tuple[float, float]:
        return float(self._sorted[0]), float(self._sorted[-1])

    @property
    def values(self) -> np.ndarray:
        """The sorted sample (read-only view)."""
        v = self._sorted.view()
        v.flags.writeable = False
        return v

    def __call__(self, x):
        """P[X <= x] for scalar or array ``x``."""
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self._sorted, x, side="right") / self._sorted.size

    def quantile(self, q):
        """Inverse CDF: smallest sample value v with ``self(v) >= q``."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        idx = np.ceil(q * self._sorted.size).astype(int) - 1
        return self._sorted[np.clip(idx, 0, self._sorted.size - 1)]

    def mean(self) -> float:
        return float(np.mean(self._sorted))

    def steps(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) pairs suitable for a step plot."""
        n = self._sorted.size
        return self._sorted.copy(), np.arange(1, n + 1) / n


def cdf_at(sample, x) -> float:
    """One-shot P[sample <= x]."""
    return float(ECDF(sample)(x))


def fraction_below(sample, threshold: float) -> float:
    """Fraction of sample values strictly below ``threshold``."""
    x = np.asarray(sample, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("fraction_below requires a non-empty sample")
    return float(np.count_nonzero(x < threshold) / x.size)


def quantile(sample, q) -> float:
    """Scalar quantile of a sample (linear interpolation, like np.quantile)."""
    return float(np.quantile(np.asarray(sample, dtype=float), q))
