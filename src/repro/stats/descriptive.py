"""Descriptive statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "describe", "weighted_mean", "coefficient_of_variation"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of one sample."""

    count: int
    mean: float
    std: float
    min: float
    p25: float
    median: float
    p75: float
    max: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "max": self.max,
        }


def describe(values) -> Summary:
    """Summary statistics of a 1-D numeric sample."""
    x = np.asarray(values, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("describe() requires a non-empty sample")
    q = np.quantile(x, [0.25, 0.5, 0.75])
    return Summary(
        count=int(x.size),
        mean=float(np.mean(x)),
        std=float(np.std(x)),
        min=float(np.min(x)),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        max=float(np.max(x)),
    )


def weighted_mean(values, weights) -> float:
    """Mean of ``values`` weighted by ``weights`` (must be non-negative)."""
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError(f"shape mismatch: values {v.shape} vs weights {w.shape}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total == 0:
        raise ValueError("weights sum to zero")
    return float((v * w).sum() / total)


def coefficient_of_variation(values) -> float:
    """std/mean of a sample — the paper's 'std as percentage of mean' / 100.

    Returns 0.0 for a single-element sample; raises if the mean is zero.
    """
    x = np.asarray(values, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("coefficient_of_variation() requires a non-empty sample")
    mean = float(np.mean(x))
    if mean == 0.0:
        raise ValueError("coefficient_of_variation undefined for zero-mean sample")
    return float(np.std(x)) / mean
