"""Histogram/PDF construction for the paper's PDF figures (Figs 3, 10)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HistogramPDF", "histogram_pdf", "freedman_diaconis_bins"]


@dataclass(frozen=True)
class HistogramPDF:
    """A normalized histogram: density integrates to 1 over the edges."""

    edges: np.ndarray
    density: np.ndarray

    @property
    def centers(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    @property
    def widths(self) -> np.ndarray:
        return np.diff(self.edges)

    def mode(self) -> float:
        """Center of the densest bin."""
        return float(self.centers[int(np.argmax(self.density))])

    def integral(self) -> float:
        return float((self.density * self.widths).sum())


def freedman_diaconis_bins(sample, max_bins: int = 200) -> int:
    """Freedman–Diaconis rule for histogram bin count (clamped)."""
    x = np.asarray(sample, dtype=float).ravel()
    if x.size < 2:
        return 1
    iqr = float(np.subtract(*np.quantile(x, [0.75, 0.25])))
    if iqr == 0.0:
        return 1
    width = 2.0 * iqr / np.cbrt(x.size)
    span = float(np.max(x) - np.min(x))
    if span == 0.0 or width == 0.0:
        return 1
    return int(np.clip(np.ceil(span / width), 1, max_bins))


def histogram_pdf(sample, bins: int | None = None) -> HistogramPDF:
    """Normalized histogram of ``sample`` (Freedman–Diaconis by default)."""
    x = np.asarray(sample, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("histogram_pdf requires a non-empty sample")
    nbins = bins if bins is not None else freedman_diaconis_bins(x)
    density, edges = np.histogram(x, bins=nbins, density=True)
    return HistogramPDF(edges=edges, density=density)
