"""Nonparametric bootstrap confidence intervals.

Used in the calibration tests and benches to attach uncertainty bands to
the measured statistics before comparing against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    level: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    sample,
    statistic: Callable[[np.ndarray], float] = np.mean,
    level: float = 0.95,
    n_resamples: int = 1000,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Percentile bootstrap CI of ``statistic`` over ``sample``.

    The resampling loop is vectorized: one ``(n_resamples, n)`` index
    matrix is drawn and the statistic applied along axis 1 when the
    statistic supports an ``axis`` argument; otherwise a Python loop per
    resample is used.
    """
    x = np.asarray(sample, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("bootstrap_ci requires a non-empty sample")
    if not 0 < level < 1:
        raise ValueError("level must lie in (0, 1)")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    rng = rng or np.random.default_rng(0)
    idx = rng.integers(0, x.size, size=(n_resamples, x.size))
    resamples = x[idx]
    try:
        stats = np.asarray(statistic(resamples, axis=1), dtype=float)  # type: ignore[call-arg]
        if stats.shape != (n_resamples,):
            raise TypeError
    except TypeError:
        stats = np.asarray([statistic(row) for row in resamples], dtype=float)
    alpha = (1.0 - level) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=float(statistic(x)),
        low=float(low),
        high=float(high),
        level=level,
        n_resamples=n_resamples,
    )
