"""Concentration / inequality measures for user-level analysis (Fig 11).

The paper reports that the top 20% of users consume ~85% of node-hours
and energy, and that ~90% of the top-node-hour users are also top-energy
users. These are Lorenz-curve style statistics over per-user totals.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lorenz_curve", "top_share", "gini", "overlap_fraction", "top_k_ids"]


def lorenz_curve(totals) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative share curve, *descending* by consumption.

    Returns ``(user_fraction, consumption_share)`` where
    ``consumption_share[i]`` is the fraction of the grand total consumed
    by the top ``user_fraction[i]`` of users. This is the orientation
    Fig 11 plots (top-consumers first), i.e. the reflected Lorenz curve.
    """
    x = np.asarray(totals, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("lorenz_curve requires a non-empty sample")
    if np.any(x < 0):
        raise ValueError("consumption totals must be non-negative")
    total = x.sum()
    if total == 0:
        raise ValueError("total consumption is zero")
    sorted_desc = np.sort(x)[::-1]
    share = np.cumsum(sorted_desc) / total
    frac = np.arange(1, x.size + 1) / x.size
    return frac, share


def top_share(totals, fraction: float) -> float:
    """Fraction of the grand total consumed by the top ``fraction`` users."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must lie in (0, 1]")
    frac, share = lorenz_curve(totals)
    k = max(1, int(np.ceil(fraction * frac.size)))
    return float(share[k - 1])


def gini(totals) -> float:
    """Gini coefficient of the consumption distribution (0=equal, →1=concentrated)."""
    x = np.sort(np.asarray(totals, dtype=float).ravel())
    if x.size == 0:
        raise ValueError("gini requires a non-empty sample")
    if np.any(x < 0):
        raise ValueError("consumption totals must be non-negative")
    total = x.sum()
    if total == 0:
        raise ValueError("total consumption is zero")
    n = x.size
    # G = (2 * sum(i*x_i) - (n+1) * sum(x)) / (n * sum(x)), i is 1-based rank asc.
    # Cancellation between the two sums can land a hair below 0.0 for
    # near-equal samples; clamp so the [0, 1) contract holds exactly.
    i = np.arange(1, n + 1)
    return max(0.0, float((2.0 * (i * x).sum() - (n + 1) * total) / (n * total)))


def top_k_ids(ids, totals, fraction: float) -> np.ndarray:
    """Identifiers of the top ``fraction`` consumers (by total, descending)."""
    ids = np.asarray(ids)
    x = np.asarray(totals, dtype=float)
    if ids.shape != x.shape:
        raise ValueError("ids and totals must have the same shape")
    if not 0 < fraction <= 1:
        raise ValueError("fraction must lie in (0, 1]")
    k = max(1, int(np.ceil(fraction * ids.size)))
    order = np.argsort(x, kind="stable")[::-1]
    return ids[order[:k]]


def overlap_fraction(ids, totals_a, totals_b, fraction: float) -> float:
    """Fraction of the top-``fraction`` set by metric A also in the top set by B.

    The paper's "~90% of the top 20% node-hour users are also top energy
    users" is ``overlap_fraction(users, node_hours, energy, 0.2)``.
    """
    top_a = set(np.asarray(top_k_ids(ids, totals_a, fraction)).tolist())
    top_b = set(np.asarray(top_k_ids(ids, totals_b, fraction)).tolist())
    if not top_a:
        raise ValueError("empty top set")
    return len(top_a & top_b) / len(top_a)
