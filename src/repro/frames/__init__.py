"""A small NumPy-backed columnar table substrate.

pandas is not a dependency of this package; every trace and analysis
in :mod:`repro` flows through :class:`~repro.frames.table.Table`, a typed
column store with filtering, group-by aggregation, joins and CSV/NPZ I/O.
The API is deliberately narrow — exactly what the paper's analyses need —
and every operation is vectorized.
"""

from repro.frames.column import as_column, is_string_dtype
from repro.frames.groupby import GroupBy
from repro.frames.io import read_csv, read_npz, write_csv, write_npz
from repro.frames.join import join
from repro.frames.ops import quantile_table, rank_dense, value_counts
from repro.frames.table import Table, concat

__all__ = [
    "Table",
    "GroupBy",
    "concat",
    "join",
    "as_column",
    "is_string_dtype",
    "read_csv",
    "write_csv",
    "read_npz",
    "write_npz",
    "value_counts",
    "rank_dense",
    "quantile_table",
]
