"""Vectorized group-by aggregation.

Grouping uses a single ``np.unique(..., return_inverse=True)`` pass over
an integer encoding of the key tuple, then every aggregation is computed
with sort-based segment reductions — no per-group Python loop for the
built-in reducers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frames.table import Table

__all__ = ["GroupBy", "group_codes"]

_BUILTIN_AGGS = ("mean", "sum", "std", "min", "max", "count", "median", "first")


def group_codes(table: Table, keys: Sequence[str]) -> tuple[np.ndarray, Table]:
    """Encode key-tuples as dense integer codes.

    Returns ``(codes, key_table)`` where ``codes[i]`` is the group index
    of row ``i`` and ``key_table`` has one row per group holding the key
    values (sorted lexicographically by the encoding of each key column).
    """
    if not keys:
        raise FrameError("group_by requires at least one key column")
    per_key_codes = []
    per_key_values = []
    for k in keys:
        values, codes = np.unique(table[k], return_inverse=True)
        per_key_codes.append(codes.astype(np.int64))
        per_key_values.append(values)
    combined = per_key_codes[0]
    for codes, values in zip(per_key_codes[1:], per_key_values[1:]):
        combined = combined * len(values) + codes
    group_ids, inverse = np.unique(combined, return_inverse=True)
    # Decode group ids back into one representative value per key column.
    decoded: dict[str, np.ndarray] = {}
    remainder = group_ids
    for k, values in zip(reversed(keys), reversed(per_key_values)):
        decoded[k] = values[remainder % len(values)]
        remainder = remainder // len(values)
    key_table = Table({k: decoded[k] for k in keys})
    return inverse.astype(np.int64), key_table


class GroupBy:
    """Deferred group-by over a :class:`Table`.

    Examples
    --------
    >>> t = Table({"u": ["a", "a", "b"], "p": [1.0, 3.0, 5.0]})
    >>> g = t.group_by("u").agg(p=("p", "mean"))
    >>> g["p"].tolist()
    [2.0, 5.0]
    """

    def __init__(self, table: Table, keys: Sequence[str]) -> None:
        self._table = table
        self._keys = list(keys)
        self._codes, self._key_table = group_codes(table, self._keys)
        self._num_groups = len(self._key_table)
        # Sort rows by group code once; all segment reductions reuse it.
        self._order = np.argsort(self._codes, kind="stable")
        sorted_codes = self._codes[self._order]
        self._starts = np.searchsorted(sorted_codes, np.arange(self._num_groups))
        self._ends = np.searchsorted(sorted_codes, np.arange(self._num_groups), side="right")

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def keys(self) -> Table:
        """One row per group holding the key values."""
        return self._key_table

    def sizes(self) -> np.ndarray:
        """Number of rows per group."""
        return (self._ends - self._starts).astype(np.int64)

    # -- reductions -----------------------------------------------------------

    def _segments(self, column: str) -> np.ndarray:
        return self._table[column][self._order]

    def reduce(self, column: str, how: str) -> np.ndarray:
        """One built-in reduction of ``column`` per group."""
        if how == "count":
            return self.sizes()
        data = self._segments(column)
        if how == "sum":
            return np.add.reduceat(data, self._starts)
        if how == "mean":
            return np.add.reduceat(data.astype(float), self._starts) / self.sizes()
        if how == "min":
            return np.minimum.reduceat(data, self._starts)
        if how == "max":
            return np.maximum.reduceat(data, self._starts)
        if how == "first":
            return data[self._starts]
        if how == "std":
            x = data.astype(float)
            n = self.sizes().astype(float)
            s1 = np.add.reduceat(x, self._starts)
            s2 = np.add.reduceat(x * x, self._starts)
            var = np.maximum(s2 / n - (s1 / n) ** 2, 0.0)
            return np.sqrt(var)
        if how == "median":
            # Median has no reduceat; loop over group slices of the sorted
            # buffer (cheap: one np.median per group on a contiguous view).
            out = np.empty(self._num_groups, dtype=float)
            for g in range(self._num_groups):
                out[g] = np.median(data[self._starts[g] : self._ends[g]])
            return out
        raise FrameError(f"unknown aggregation {how!r}; expected one of {_BUILTIN_AGGS}")

    def apply(self, column: str, fn: Callable[[np.ndarray], float]) -> np.ndarray:
        """Custom scalar reduction of ``column`` per group."""
        data = self._segments(column)
        return np.asarray(
            [fn(data[self._starts[g] : self._ends[g]]) for g in range(self._num_groups)]
        )

    def agg(self, **named: tuple[str, object]) -> Table:
        """Aggregate several columns at once.

        Each keyword maps an output name to ``(input_column, how)`` where
        ``how`` is a built-in reducer name or a callable.
        """
        out = self._key_table.to_dict()
        for out_name, (col, how) in named.items():
            if callable(how):
                out[out_name] = self.apply(col, how)
            else:
                out[out_name] = self.reduce(col, how)
        return Table(out)

    def indices(self) -> list[np.ndarray]:
        """Row indices (into the original table) of each group."""
        return [
            self._order[self._starts[g] : self._ends[g]] for g in range(self._num_groups)
        ]
