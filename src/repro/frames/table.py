"""The :class:`Table` column store.

A :class:`Table` is an immutable-by-convention ordered mapping from
column name to a 1-D NumPy array, all of equal length. Row-wise
operations return new tables sharing column buffers where possible
(views, not copies — see the memory notes in the HPC guides).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ColumnMismatchError, FrameError
from repro.frames.column import as_column, common_length, is_numeric_dtype

__all__ = ["Table", "concat"]


class Table:
    """An ordered collection of equal-length named columns.

    Parameters
    ----------
    columns:
        Mapping of name to 1-D array-like. Insertion order is preserved
        and defines the column order for I/O and ``repr``.

    Examples
    --------
    >>> t = Table({"x": [1, 2, 3], "y": [10.0, 20.0, 30.0]})
    >>> len(t)
    3
    >>> t.filter(t["x"] > 1).to_dict()["y"].tolist()
    [20.0, 30.0]
    """

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: Mapping[str, object] | None = None) -> None:
        cols: dict[str, np.ndarray] = {}
        for name, values in (columns or {}).items():
            if not isinstance(name, str) or not name:
                raise ColumnMismatchError(f"column names must be non-empty str, got {name!r}")
            cols[name] = as_column(values, name)
        self._columns = cols
        self._length = common_length(cols)

    # -- basic protocol ---------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __getitem__(self, key):
        """``t["col"]`` → column array; ``t[mask_or_index]`` → row subset."""
        if isinstance(key, str):
            try:
                return self._columns[key]
            except KeyError:
                raise ColumnMismatchError(
                    f"no column {key!r}; available: {self.column_names}"
                ) from None
        return self.take(key)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names or len(self) != len(other):
            return False
        return all(np.array_equal(self._columns[c], other._columns[c]) for c in self)

    def __hash__(self):  # tables are mutable containers of arrays
        raise TypeError("Table is not hashable")

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{c.dtype}" for n, c in self._columns.items())
        return f"Table({len(self)} rows; {cols})"

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, object]]) -> "Table":
        """Build a table from an iterable of homogeneous row dicts."""
        rows = list(rows)
        if not rows:
            return cls({})
        names = list(rows[0])
        for i, row in enumerate(rows):
            if list(row) != names:
                raise ColumnMismatchError(
                    f"row {i} keys {list(row)} differ from row 0 keys {names}"
                )
        return cls({n: [row[n] for row in rows] for n in names})

    def copy(self) -> "Table":
        """Deep copy (column buffers are duplicated)."""
        return Table({n: c.copy() for n, c in self._columns.items()})

    # -- row-wise operations ------------------------------------------------

    def take(self, indexer) -> "Table":
        """Rows selected by boolean mask, slice, or integer index array."""
        if isinstance(indexer, np.ndarray) and indexer.dtype == bool:
            if len(indexer) != len(self):
                raise ColumnMismatchError(
                    f"boolean mask length {len(indexer)} != table length {len(self)}"
                )
        return Table({n: c[indexer] for n, c in self._columns.items()})

    def filter(self, mask) -> "Table":
        """Rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise ColumnMismatchError(f"filter mask must be boolean, got {mask.dtype}")
        return self.take(mask)

    def head(self, n: int = 5) -> "Table":
        return self.take(slice(0, n))

    def sort_by(self, *names: str, descending: bool = False) -> "Table":
        """Stable sort by one or more columns (last name varies slowest)."""
        if not names:
            raise FrameError("sort_by requires at least one column name")
        keys = [self[name] for name in names]
        order = np.lexsort(keys[::-1]) if len(keys) > 1 else np.argsort(keys[0], kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def row(self, i: int) -> dict[str, object]:
        """Row ``i`` as a plain dict of Python scalars."""
        return {n: c[i].item() if c[i].shape == () else c[i] for n, c in self._columns.items()}

    def iter_rows(self) -> Iterator[dict[str, object]]:
        for i in range(len(self)):
            yield self.row(i)

    # -- column-wise operations --------------------------------------------

    def select(self, names: Iterable[str]) -> "Table":
        """Subset of columns, in the order given."""
        names = list(names)
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise ColumnMismatchError(f"unknown columns {missing}; have {self.column_names}")
        return Table({n: self._columns[n] for n in names})

    def drop(self, *names: str) -> "Table":
        """All columns except ``names``."""
        return Table({n: c for n, c in self._columns.items() if n not in names})

    def with_column(self, name: str, values) -> "Table":
        """New table with ``name`` added or replaced."""
        col = as_column(values, name)
        if len(self._columns) and len(col) != len(self):
            raise ColumnMismatchError(
                f"column {name!r} has length {len(col)}, table has {len(self)} rows"
            )
        cols = dict(self._columns)
        cols[name] = col
        return Table(cols)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """New table with columns renamed per ``mapping``."""
        missing = [n for n in mapping if n not in self._columns]
        if missing:
            raise ColumnMismatchError(f"cannot rename unknown columns {missing}")
        return Table({mapping.get(n, n): c for n, c in self._columns.items()})

    # -- reductions and summaries -------------------------------------------

    def to_dict(self) -> dict[str, np.ndarray]:
        """Shallow dict of column arrays (buffers shared)."""
        return dict(self._columns)

    def unique(self, name: str) -> np.ndarray:
        """Sorted unique values of one column."""
        return np.unique(self[name])

    def group_by(self, *names: str) -> "GroupBy":
        """Group rows by one or more key columns; see :class:`GroupBy`."""
        from repro.frames.groupby import GroupBy

        return GroupBy(self, list(names))

    def describe(self) -> "Table":
        """Per-numeric-column summary (count/mean/std/min/median/max)."""
        names, count, mean, std, lo, med, hi = [], [], [], [], [], [], []
        for n, c in self._columns.items():
            if not is_numeric_dtype(c) or len(c) == 0:
                continue
            names.append(n)
            count.append(len(c))
            mean.append(float(np.mean(c)))
            std.append(float(np.std(c)))
            lo.append(float(np.min(c)))
            med.append(float(np.median(c)))
            hi.append(float(np.max(c)))
        return Table(
            {
                "column": names,
                "count": count,
                "mean": mean,
                "std": std,
                "min": lo,
                "median": med,
                "max": hi,
            }
        )


def concat(tables: Sequence[Table]) -> Table:
    """Stack tables with identical column names vertically."""
    tables = [t for t in tables if len(t.column_names)]
    if not tables:
        return Table({})
    names = tables[0].column_names
    for i, t in enumerate(tables):
        if t.column_names != names:
            raise ColumnMismatchError(
                f"table {i} columns {t.column_names} differ from table 0 columns {names}"
            )
    return Table({n: np.concatenate([t[n] for t in tables]) for n in names})
