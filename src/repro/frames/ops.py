"""Miscellaneous vectorized table operations."""

from __future__ import annotations

import numpy as np

from repro.errors import FrameError
from repro.frames.table import Table

__all__ = ["value_counts", "rank_dense", "quantile_table", "cut"]


def value_counts(table: Table, column: str, descending: bool = True) -> Table:
    """Distinct values of ``column`` with their row counts."""
    values, counts = np.unique(table[column], return_counts=True)
    order = np.argsort(counts, kind="stable")
    if descending:
        order = order[::-1]
    return Table({column: values[order], "count": counts[order].astype(np.int64)})


def rank_dense(values) -> np.ndarray:
    """Dense integer ranks (0-based) of ``values``; ties share a rank."""
    _, inverse = np.unique(np.asarray(values), return_inverse=True)
    return inverse.astype(np.int64)


def quantile_table(table: Table, column: str, qs=(0.0, 0.25, 0.5, 0.75, 1.0)) -> Table:
    """Selected quantiles of one numeric column as a two-column table."""
    data = table[column]
    if data.dtype.kind not in "iuf":
        raise FrameError(f"quantile_table needs a numeric column, got {data.dtype}")
    qs = np.asarray(qs, dtype=float)
    if np.any((qs < 0) | (qs > 1)):
        raise FrameError("quantiles must lie in [0, 1]")
    return Table({"q": qs, column: np.quantile(data, qs)})


def cut(values, edges) -> np.ndarray:
    """Bin ``values`` by ``edges`` (ascending); returns bin index per value.

    Values below ``edges[0]`` get bin 0; values at or above ``edges[-1]``
    get bin ``len(edges)``. Mirrors ``np.searchsorted(edges, v, 'right')``.
    """
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or len(edges) == 0:
        raise FrameError("edges must be a non-empty 1-D sequence")
    if np.any(np.diff(edges) <= 0):
        raise FrameError("edges must be strictly increasing")
    return np.searchsorted(edges, np.asarray(values, dtype=float), side="right")
