"""Column coercion and dtype utilities for :mod:`repro.frames`.

A column is a 1-D :class:`numpy.ndarray`. Numeric data stays in its
native dtype; strings are stored as NumPy unicode arrays (``dtype.kind
== 'U'``) so that equality tests, ``np.unique`` and sorting all remain
vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ColumnMismatchError

__all__ = ["as_column", "is_string_dtype", "is_numeric_dtype", "common_length"]


def as_column(values, name: str = "<column>") -> np.ndarray:
    """Coerce ``values`` into a 1-D ndarray suitable for a table column.

    Lists of str become unicode arrays; lists of bool become bool arrays;
    numeric sequences become their natural NumPy dtype. Object dtype is
    rejected because none of the downstream vectorized paths support it.
    """
    arr = np.asarray(values)
    if arr.ndim == 0:
        raise ColumnMismatchError(f"column {name!r} must be 1-D, got a scalar")
    if arr.ndim != 1:
        raise ColumnMismatchError(f"column {name!r} must be 1-D, got shape {arr.shape}")
    if arr.dtype == object:
        # Try to promote an all-string object array to unicode.
        if all(isinstance(v, str) for v in arr):
            arr = arr.astype(str)
        else:
            raise ColumnMismatchError(
                f"column {name!r} has object dtype; only numeric, bool and "
                "string columns are supported"
            )
    return arr


def is_string_dtype(arr: np.ndarray) -> bool:
    """True when ``arr`` holds unicode strings."""
    return arr.dtype.kind in ("U", "S")


def is_numeric_dtype(arr: np.ndarray) -> bool:
    """True for int/uint/float columns (bool excluded)."""
    return arr.dtype.kind in ("i", "u", "f")


def common_length(columns: dict[str, np.ndarray]) -> int:
    """Validate that all columns share one length and return it."""
    lengths = {name: len(col) for name, col in columns.items()}
    unique = set(lengths.values())
    if len(unique) > 1:
        raise ColumnMismatchError(f"columns have unequal lengths: {lengths}")
    return unique.pop() if unique else 0
