"""Hash-free vectorized joins on a single key column.

Joins use sorted-merge semantics built from ``np.argsort`` and
``np.searchsorted``; there is no per-row Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ColumnMismatchError, FrameError
from repro.frames.table import Table

__all__ = ["join"]


def join(left: Table, right: Table, on: str, how: str = "inner", suffix: str = "_right") -> Table:
    """Join two tables on one key column.

    Parameters
    ----------
    on:
        Key column name; must exist in both tables. The right table's key
        values must be unique (the common accounting-record case:
        enriching per-sample rows with per-job metadata).
    how:
        ``"inner"`` drops left rows without a match; ``"left"`` requires
        every left key to be present on the right.
    suffix:
        Appended to right-hand column names that clash with left-hand
        ones (other than the key).
    """
    if how not in ("inner", "left"):
        raise FrameError(f"how must be 'inner' or 'left', got {how!r}")
    if on not in left or on not in right:
        raise ColumnMismatchError(f"join key {on!r} missing from one side")

    rkeys = right[on]
    if len(np.unique(rkeys)) != len(rkeys):
        raise FrameError(f"right table key {on!r} must be unique")

    order = np.argsort(rkeys, kind="stable")
    sorted_keys = rkeys[order]
    lkeys = left[on]
    pos = np.searchsorted(sorted_keys, lkeys)
    pos_clipped = np.clip(pos, 0, len(sorted_keys) - 1) if len(sorted_keys) else pos
    matched = (
        (pos < len(sorted_keys)) & (sorted_keys[pos_clipped] == lkeys)
        if len(sorted_keys)
        else np.zeros(len(lkeys), dtype=bool)
    )

    if how == "left" and not matched.all():
        missing = np.unique(lkeys[~matched])[:5]
        raise FrameError(f"left join: keys missing from right table, e.g. {missing.tolist()}")

    left_rows = left if how == "left" else left.take(matched)
    right_idx = order[pos_clipped[matched] if how == "inner" else pos_clipped]

    out = left_rows.to_dict()
    for name in right.column_names:
        if name == on:
            continue
        out_name = name if name not in out else name + suffix
        out[out_name] = right[name][right_idx]
    return Table(out)
