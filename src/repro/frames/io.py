"""CSV and NPZ persistence for :class:`~repro.frames.table.Table`.

CSV is the interchange format the paper's Zenodo release uses; NPZ is
the fast binary format used for intermediate artifacts. Both round-trip
column order, and NPZ round-trips dtypes exactly.
"""

from __future__ import annotations

import csv
import io
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import FrameError
from repro.frames.table import Table

__all__ = ["write_csv", "read_csv", "write_npz", "read_npz"]


def write_csv(table: Table, path: str | os.PathLike) -> None:
    """Write ``table`` to ``path`` with a header row."""
    path = Path(path)
    names = table.column_names
    cols = [table[n] for n in names]
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for i in range(len(table)):
            writer.writerow([_render(col[i]) for col in cols])


def _render(value) -> str:
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    return str(value)


def read_csv(path: str | os.PathLike) -> Table:
    """Read a CSV written by :func:`write_csv` (or the Zenodo traces).

    Column dtypes are inferred per column: int if every cell parses as
    int, else float if every cell parses as float, else string.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            return Table({})
        raw: list[list[str]] = [[] for _ in header]
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise FrameError(
                    f"{path}:{lineno}: expected {len(header)} fields, got {len(row)}"
                )
            for cell, bucket in zip(row, raw):
                bucket.append(cell)
    return Table({name: _infer(cells) for name, cells in zip(header, raw)})


def _infer(cells: list[str]) -> np.ndarray:
    try:
        return np.asarray([int(c) for c in cells], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.asarray([float(c) for c in cells], dtype=float)
    except ValueError:
        pass
    return np.asarray(cells, dtype=str)


# Fixed zip member timestamp (the zip epoch). ``np.savez_compressed``
# stamps members with the current time, which makes two writes of the
# same table differ at the byte level; the pipeline's determinism
# guarantee (serial == parallel, cold == warm) compares artifact bytes,
# so NPZ writing pins the timestamp instead.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def write_npz(table: Table, path: str | os.PathLike, compress: bool = True) -> None:
    """Write ``table`` to an NPZ file preserving dtypes.

    Byte-deterministic: writing the same table twice produces identical
    files (member order, contents, and timestamps are all fixed).
    ``compress=False`` stores members raw (ZIP_STORED) — used for
    transient spill shards where deflate time outweighs the disk saved;
    published artifacts keep the compressed default.

    Compression is deflate level 1: on million-job artifacts level 6
    spends ~4x the CPU for a few percent of extra ratio, and NPZ write
    time is a top-line cost of the streaming compactor
    (docs/PERFORMANCE.md). The level is part of the artifact bytes, so
    it is pinned here rather than left to the zlib default.
    """
    method = zipfile.ZIP_DEFLATED if compress else zipfile.ZIP_STORED
    arrays = {f"col::{n}": np.ascontiguousarray(table[n]) for n in table.column_names}
    arrays["__order__"] = np.asarray(table.column_names, dtype=str)
    with zipfile.ZipFile(Path(path), "w", method) as zf:
        for name, arr in arrays.items():
            buf = io.BytesIO()
            np.lib.format.write_array(buf, arr, allow_pickle=False)
            info = zipfile.ZipInfo(f"{name}.npy", date_time=_ZIP_EPOCH)
            info.compress_type = method
            info.external_attr = 0o644 << 16
            zf.writestr(info, buf.getvalue(), compresslevel=1)


def read_npz(path: str | os.PathLike) -> Table:
    """Read a table written by :func:`write_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if "__order__" not in data:
            raise FrameError(f"{path} is not a frames NPZ file (missing __order__)")
        order = [str(n) for n in data["__order__"]]
        return Table({n: data[f"col::{n}"] for n in order})
