"""System specifications — Table 1 of the paper, as data.

Two medium-scale production clusters at FAU/RRZE:

* **Emmy** — 560 nodes, dual-socket Intel Xeon E5-2660 v2 (IvyBridge,
  22 nm), 210 W node TDP (CPU+DRAM), Torque/Maui, QDR InfiniBand.
* **Meggie** — 728 nodes, dual-socket Intel Xeon E5-2630 v4 (Broadwell,
  14 nm), 195 W node TDP, Slurm, OmniPath.

The paper's Sec. 2 text says Emmy "consists of 568 compute nodes" while
Table 1 lists 560; we follow Table 1 (the table is what every subsequent
per-system computation in the paper uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusterError

__all__ = ["SystemSpec", "EMMY", "MEGGIE", "get_spec", "known_systems"]


@dataclass(frozen=True)
class SystemSpec:
    """Static description of one cluster (Table 1 row set)."""

    name: str
    num_nodes: int
    node_tdp_watts: float
    processor: str
    microarchitecture: str
    process_node_nm: int
    sockets_per_node: int
    cores_per_socket: int
    memory_gb: int
    memory_type: str
    interconnect: str
    topology: str
    batch_system: str
    smt_enabled: bool
    turbo_enabled: bool
    linpack_tflops: float
    linpack_power_kw: float
    inflow_temperature_c: tuple[float, float]
    # Fraction of node power drawn by DRAM under a memory-heavy load;
    # used by the RAPL model to split PKG vs DRAM domains.
    dram_power_fraction: float = 0.18

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ClusterError(f"{self.name}: num_nodes must be positive")
        if self.node_tdp_watts <= 0:
            raise ClusterError(f"{self.name}: node TDP must be positive")
        if not 0 <= self.dram_power_fraction < 1:
            raise ClusterError(f"{self.name}: dram_power_fraction must be in [0, 1)")

    @property
    def total_tdp_watts(self) -> float:
        """Provisioned (worst-case) power of all compute nodes."""
        return self.num_nodes * self.node_tdp_watts

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    @property
    def linpack_node_power_watts(self) -> float:
        """Measured LINPACK draw divided across nodes."""
        return self.linpack_power_kw * 1e3 / self.num_nodes


EMMY = SystemSpec(
    name="emmy",
    num_nodes=560,
    node_tdp_watts=210.0,
    processor="2x Intel Xeon E5-2660 v2",
    microarchitecture="IvyBridge",
    process_node_nm=22,
    sockets_per_node=2,
    cores_per_socket=10,
    memory_gb=64,
    memory_type="DDR3-1600",
    interconnect="Mellanox QDR InfiniBand",
    topology="fat-tree",
    batch_system="torque",
    smt_enabled=True,
    turbo_enabled=True,
    linpack_tflops=191.0,
    linpack_power_kw=170.0,
    inflow_temperature_c=(26.0, 28.0),
)

MEGGIE = SystemSpec(
    name="meggie",
    num_nodes=728,
    node_tdp_watts=195.0,
    processor="2x Intel Xeon E5-2630 v4",
    microarchitecture="Broadwell",
    process_node_nm=14,
    sockets_per_node=2,
    cores_per_socket=10,
    memory_gb=64,
    memory_type="DDR4-2133",
    interconnect="100 GBit Intel OmniPath",
    topology="1:2 blocking",
    batch_system="slurm",
    smt_enabled=False,
    turbo_enabled=True,
    linpack_tflops=472.0,
    linpack_power_kw=210.0,
    inflow_temperature_c=(28.0, 30.0),
)

_REGISTRY: dict[str, SystemSpec] = {EMMY.name: EMMY, MEGGIE.name: MEGGIE}


def known_systems() -> list[str]:
    """Names of the built-in system specs."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> SystemSpec:
    """Look up a built-in spec by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ClusterError(f"unknown system {name!r}; known: {known_systems()}") from None
