"""System specifications — Table 1 of the paper, as data, plus
heterogeneous extensions.

Two medium-scale production clusters at FAU/RRZE:

* **Emmy** — 560 nodes, dual-socket Intel Xeon E5-2660 v2 (IvyBridge,
  22 nm), 210 W node TDP (CPU+DRAM), Torque/Maui, QDR InfiniBand.
* **Meggie** — 728 nodes, dual-socket Intel Xeon E5-2630 v4 (Broadwell,
  14 nm), 195 W node TDP, Slurm, OmniPath.

The paper's Sec. 2 text says Emmy "consists of 568 compute nodes" while
Table 1 lists 560; we follow Table 1 (the table is what every subsequent
per-system computation in the paper uses).

Beyond the paper, the registry carries heterogeneous GPU/ML systems
(docs/SCENARIOS.md) in the spirit of Chu et al. (arXiv:2409.08949):

* **Alex** — an A100-class ML training cluster: every node carries
  8 accelerators, the workload catalog is ML training jobs.
* **Woody** — a mixed partition: a GPU island (the first ``gpu_nodes``
  node ids) inside an otherwise CPU-only system, serving both the HPC
  and the ML job catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusterError

__all__ = [
    "SystemSpec",
    "EMMY",
    "MEGGIE",
    "ALEX",
    "WOODY",
    "get_spec",
    "known_systems",
    "WORKLOAD_PROFILES",
]

# Which job catalog a system draws from: "hpc" is the paper's generic
# application mix, "ml" the training-job catalog, "mixed" both.
WORKLOAD_PROFILES = ("hpc", "ml", "mixed")


@dataclass(frozen=True)
class SystemSpec:
    """Static description of one cluster (Table 1 row set)."""

    name: str
    num_nodes: int
    node_tdp_watts: float
    processor: str
    microarchitecture: str
    process_node_nm: int
    sockets_per_node: int
    cores_per_socket: int
    memory_gb: int
    memory_type: str
    interconnect: str
    topology: str
    batch_system: str
    smt_enabled: bool
    turbo_enabled: bool
    linpack_tflops: float
    linpack_power_kw: float
    inflow_temperature_c: tuple[float, float]
    # Fraction of node power drawn by DRAM under a memory-heavy load;
    # used by the RAPL model to split PKG vs DRAM domains.
    dram_power_fraction: float = 0.18
    # -- heterogeneous extensions (all default to "no GPUs", so the
    # paper's CPU-only systems are untouched) -------------------------
    # Accelerators per GPU-carrying node (0 = CPU-only system).
    gpus_per_node: int = 0
    # How many node ids (the *first* gpu_nodes of them) carry GPUs;
    # None means every node does, when gpus_per_node > 0.
    gpu_nodes: int | None = None
    gpu_model: str = ""
    # Board power limit of one accelerator; the GPU power model draws
    # against this the way the RAPL model draws against node TDP.
    gpu_tdp_watts: float = 0.0
    # Which job catalog this system runs (see WORKLOAD_PROFILES).
    workload_profile: str = "hpc"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ClusterError(f"{self.name}: num_nodes must be positive")
        if self.node_tdp_watts <= 0:
            raise ClusterError(f"{self.name}: node TDP must be positive")
        if not 0 <= self.dram_power_fraction < 1:
            raise ClusterError(f"{self.name}: dram_power_fraction must be in [0, 1)")
        if self.gpus_per_node < 0:
            raise ClusterError(f"{self.name}: gpus_per_node must be >= 0")
        if self.gpus_per_node > 0 and self.gpu_tdp_watts <= 0:
            raise ClusterError(f"{self.name}: GPU systems need gpu_tdp_watts > 0")
        if self.gpu_nodes is not None:
            if self.gpus_per_node == 0:
                raise ClusterError(f"{self.name}: gpu_nodes set without gpus_per_node")
            if not 0 < self.gpu_nodes <= self.num_nodes:
                raise ClusterError(
                    f"{self.name}: gpu_nodes must be in (0, num_nodes]"
                )
        if self.workload_profile not in WORKLOAD_PROFILES:
            raise ClusterError(
                f"{self.name}: workload_profile must be one of {WORKLOAD_PROFILES}"
            )

    @property
    def total_tdp_watts(self) -> float:
        """Provisioned (worst-case) power of all compute nodes."""
        return self.num_nodes * self.node_tdp_watts

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    @property
    def linpack_node_power_watts(self) -> float:
        """Measured LINPACK draw divided across nodes."""
        return self.linpack_power_kw * 1e3 / self.num_nodes

    # -- GPU inventory ----------------------------------------------------

    @property
    def has_gpus(self) -> bool:
        """Whether any node of this system carries accelerators."""
        return self.gpus_per_node > 0

    @property
    def gpu_node_count(self) -> int:
        """How many nodes carry GPUs (0 for CPU-only systems)."""
        if self.gpus_per_node == 0:
            return 0
        return self.num_nodes if self.gpu_nodes is None else self.gpu_nodes

    @property
    def total_gpus(self) -> int:
        """Accelerators across the whole system."""
        return self.gpu_node_count * self.gpus_per_node

    def gpus_on(self, node_id: int) -> int:
        """Accelerator count of one node id (GPU island = lowest ids)."""
        return self.gpus_per_node if node_id < self.gpu_node_count else 0


EMMY = SystemSpec(
    name="emmy",
    num_nodes=560,
    node_tdp_watts=210.0,
    processor="2x Intel Xeon E5-2660 v2",
    microarchitecture="IvyBridge",
    process_node_nm=22,
    sockets_per_node=2,
    cores_per_socket=10,
    memory_gb=64,
    memory_type="DDR3-1600",
    interconnect="Mellanox QDR InfiniBand",
    topology="fat-tree",
    batch_system="torque",
    smt_enabled=True,
    turbo_enabled=True,
    linpack_tflops=191.0,
    linpack_power_kw=170.0,
    inflow_temperature_c=(26.0, 28.0),
)

MEGGIE = SystemSpec(
    name="meggie",
    num_nodes=728,
    node_tdp_watts=195.0,
    processor="2x Intel Xeon E5-2630 v4",
    microarchitecture="Broadwell",
    process_node_nm=14,
    sockets_per_node=2,
    cores_per_socket=10,
    memory_gb=64,
    memory_type="DDR4-2133",
    interconnect="100 GBit Intel OmniPath",
    topology="1:2 blocking",
    batch_system="slurm",
    smt_enabled=False,
    turbo_enabled=True,
    linpack_tflops=472.0,
    linpack_power_kw=210.0,
    inflow_temperature_c=(28.0, 30.0),
)

# Heterogeneous systems beyond the paper (docs/SCENARIOS.md). Numbers
# are modeled on FAU's Alex A100 cluster and a hypothetical mixed
# partition; LINPACK figures are GPU-dominated for Alex.

ALEX = SystemSpec(
    name="alex",
    num_nodes=82,
    node_tdp_watts=360.0,
    processor="2x AMD EPYC 7713",
    microarchitecture="Zen3",
    process_node_nm=7,
    sockets_per_node=2,
    cores_per_socket=64,
    memory_gb=1024,
    memory_type="DDR4-3200",
    interconnect="HDR InfiniBand",
    topology="fat-tree",
    batch_system="slurm",
    smt_enabled=True,
    turbo_enabled=True,
    linpack_tflops=4390.0,
    linpack_power_kw=310.0,
    inflow_temperature_c=(24.0, 26.0),
    gpus_per_node=8,
    gpu_model="NVIDIA A100-SXM4-40GB",
    gpu_tdp_watts=400.0,
    workload_profile="ml",
)

WOODY = SystemSpec(
    name="woody",
    num_nodes=128,
    node_tdp_watts=240.0,
    processor="2x Intel Xeon Gold 6326",
    microarchitecture="IceLake",
    process_node_nm=10,
    sockets_per_node=2,
    cores_per_socket=16,
    memory_gb=256,
    memory_type="DDR4-3200",
    interconnect="HDR100 InfiniBand",
    topology="1:4 blocking",
    batch_system="slurm",
    smt_enabled=False,
    turbo_enabled=True,
    linpack_tflops=610.0,
    linpack_power_kw=95.0,
    inflow_temperature_c=(25.0, 27.0),
    gpus_per_node=4,
    gpu_nodes=32,
    gpu_model="NVIDIA A40",
    gpu_tdp_watts=300.0,
    workload_profile="mixed",
)

_REGISTRY: dict[str, SystemSpec] = {
    EMMY.name: EMMY,
    MEGGIE.name: MEGGIE,
    ALEX.name: ALEX,
    WOODY.name: WOODY,
}


def known_systems() -> list[str]:
    """Names of the built-in system specs."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> SystemSpec:
    """Look up a built-in spec by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ClusterError(f"unknown system {name!r}; known: {known_systems()}") from None
