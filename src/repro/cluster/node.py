"""Compute-node model."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.specs import SystemSpec
from repro.cluster.variability import VariabilityModel
from repro.errors import ClusterError

__all__ = ["Node", "build_nodes"]


@dataclass(frozen=True)
class Node:
    """One compute node: identity plus its static power personality.

    ``power_factor`` is the manufacturing-variability multiplier applied
    to any workload's nominal draw on this node; ``idle_watts`` is the
    PKG+DRAM floor when the node is allocated but the application is not
    loading it.
    """

    node_id: int
    system: str
    tdp_watts: float
    power_factor: float
    idle_watts: float
    # Accelerators physically installed in this node (0 on CPU-only
    # systems and outside a mixed partition's GPU island).
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.tdp_watts <= 0:
            raise ClusterError(f"node {self.node_id}: TDP must be positive")
        if self.power_factor <= 0:
            raise ClusterError(f"node {self.node_id}: power factor must be positive")
        if not 0 <= self.idle_watts < self.tdp_watts:
            raise ClusterError(
                f"node {self.node_id}: idle power must be in [0, TDP)"
            )
        if self.gpus < 0:
            raise ClusterError(f"node {self.node_id}: gpus must be >= 0")

    def effective_power(self, nominal_watts) -> np.ndarray:
        """Apply this node's variability factor and clip to [idle, TDP]."""
        draw = np.asarray(nominal_watts, dtype=float) * self.power_factor
        return np.clip(draw, self.idle_watts, self.tdp_watts)


# RAPL PKG+DRAM idle draw of a dual-socket Xeon node of this era is
# roughly 20-25% of TDP (uncore + DRAM refresh); the exact level only
# matters for unallocated-node accounting, which the paper excludes.
_IDLE_FRACTION = 0.22


def build_nodes(
    spec: SystemSpec,
    rng: np.random.Generator,
    variability: VariabilityModel | None = None,
) -> list[Node]:
    """Instantiate all nodes of a system with drawn variability factors."""
    variability = variability or VariabilityModel()
    factors = variability.draw_factors(spec.num_nodes, rng)
    idle = _IDLE_FRACTION * spec.node_tdp_watts
    return [
        Node(
            node_id=i,
            system=spec.name,
            tdp_watts=spec.node_tdp_watts,
            power_factor=float(f),
            idle_watts=idle,
            gpus=spec.gpus_on(i),
        )
        for i, f in enumerate(factors)
    ]
