"""Seeded GPU board-power model, the accelerator-side sibling of RAPL.

The CPU side of a node is measured by :class:`repro.cluster.rapl.RaplModel`
against the node TDP; accelerators are measured here against the board
power limit (``SystemSpec.gpu_tdp_watts``). The model is deliberately
simple and fully seeded, mirroring the two-stage GPU power framework of
arXiv:2604.02158: a job declares the fraction of board power its kernels
sustain (``gpu_fraction``), each physical GPU applies its node's
manufacturing-variability factor, and a small lognormal-ish measurement
noise rides on top. Idle boards still draw — HBM refresh and fans —
captured as a fixed fraction of the limit.

Everything is vectorized over GPUs so the telemetry sampler can fold the
per-job draw into one fused RNG pass (the layout contract that keeps the
chunked/streaming build bit-identical with the monolithic one).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.specs import SystemSpec
from repro.errors import ClusterError

__all__ = ["GpuPowerModel", "GPU_IDLE_FRACTION", "GPU_NOISE_SIGMA"]

# Idle board draw (HBM refresh, fans, uncore) as a fraction of the board
# power limit; A100 boards idle around 8-12% of their 400 W cap.
GPU_IDLE_FRACTION = 0.10

# Relative 1-sigma of the per-sample measurement noise on board power.
GPU_NOISE_SIGMA = 0.03


class GpuPowerModel:
    """Board-power model for one system's accelerators.

    Parameters
    ----------
    spec:
        The system whose GPUs are modeled; must have ``has_gpus``.
    noise_sigma:
        Relative standard deviation of per-sample measurement noise.
    """

    def __init__(self, spec: SystemSpec, noise_sigma: float = GPU_NOISE_SIGMA) -> None:
        if not spec.has_gpus:
            raise ClusterError(f"{spec.name}: system has no GPUs to model")
        self.spec = spec
        self.tdp_watts = float(spec.gpu_tdp_watts)
        self.idle_watts = GPU_IDLE_FRACTION * self.tdp_watts
        self.noise_sigma = float(noise_sigma)

    def nominal(self, gpu_fraction: float) -> float:
        """Noise- and variability-free draw of one board (clipped)."""
        draw = self.tdp_watts * float(gpu_fraction)
        return float(np.clip(draw, self.idle_watts, self.tdp_watts))

    def sample(
        self,
        gpu_fraction,
        factors,
        z,
    ) -> np.ndarray:
        """Measured per-board draw for pre-drawn standard normals ``z``.

        ``gpu_fraction`` broadcasts against ``factors`` (per-GPU
        variability multipliers) and ``z`` (standard normals, one per
        GPU). Taking ``z`` rather than an RNG keeps the draw layout in
        the caller's hands — the fused telemetry pass owns the stream.
        """
        fraction = np.asarray(gpu_fraction, dtype=float)
        factors = np.asarray(factors, dtype=float)
        z = np.asarray(z, dtype=float)
        draw = self.tdp_watts * fraction * factors * (1.0 + self.noise_sigma * z)
        return np.clip(draw, self.idle_watts, self.tdp_watts)
