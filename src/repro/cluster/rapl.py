"""RAPL measurement model.

The paper's monitoring samples Intel RAPL counters once per minute for
the PKG (CPU socket) and DRAM domains; the recorded values are
*averages over the sampling interval*, not instantaneous draws. This
module reproduces exactly those semantics:

* a continuous "true" power signal at 1 Hz resolution is averaged into
  one sample per minute,
* the averaged node power is split into PKG and DRAM domains using the
  system's DRAM power fraction, and
* a small multiplicative measurement noise models counter quantization
  and read jitter (RAPL energy counters are accurate to a few percent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.specs import SystemSpec
from repro.errors import TelemetryError
from repro.units import MINUTE

__all__ = ["RaplSample", "RaplModel", "average_to_minutes"]


@dataclass(frozen=True)
class RaplSample:
    """One per-node, per-minute averaged measurement."""

    node_id: int
    minute: int
    pkg_watts: float
    dram_watts: float

    @property
    def total_watts(self) -> float:
        return self.pkg_watts + self.dram_watts


def average_to_minutes(signal: np.ndarray, seconds_per_step: float = 1.0) -> np.ndarray:
    """Average a fine-grained power signal into per-minute samples.

    ``signal`` may be 1-D (one node) or 2-D ``(nodes, time)``. A trailing
    partial minute is averaged over the steps it actually contains —
    matching how a RAPL energy-counter difference over a short final
    interval behaves.
    """
    sig = np.asarray(signal, dtype=float)
    squeeze = sig.ndim == 1
    if squeeze:
        sig = sig[None, :]
    if sig.ndim != 2:
        raise TelemetryError(f"signal must be 1-D or 2-D, got shape {sig.shape}")
    steps_per_minute = int(round(MINUTE / seconds_per_step))
    if steps_per_minute < 1:
        raise TelemetryError("seconds_per_step must be <= 60")
    if steps_per_minute == 1:
        # One step per minute: the mean of each single-sample window is
        # the sample itself (x / 1.0 is exact), so skip the reshape and
        # reduction. Copy to keep the fresh-output contract.
        out = sig.copy()
        return out[0] if squeeze else out
    n_nodes, n_steps = sig.shape
    n_minutes = int(np.ceil(n_steps / steps_per_minute))
    out = np.empty((n_nodes, n_minutes), dtype=float)
    full = n_steps // steps_per_minute
    if full:
        out[:, :full] = sig[:, : full * steps_per_minute].reshape(
            n_nodes, full, steps_per_minute
        ).mean(axis=2)
    if n_minutes > full:
        out[:, full] = sig[:, full * steps_per_minute :].mean(axis=1)
    return out[0] if squeeze else out


@dataclass(frozen=True)
class RaplModel:
    """Per-minute averaged PKG/DRAM measurement of node power.

    Parameters
    ----------
    spec:
        System whose DRAM power split applies.
    noise_sigma:
        Relative std of multiplicative measurement noise (default 1%).
    """

    spec: SystemSpec
    noise_sigma: float = 0.01

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise TelemetryError("noise_sigma must be >= 0")

    def measure(
        self,
        true_power: np.ndarray,
        rng: np.random.Generator,
        seconds_per_step: float = 60.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Measured (pkg, dram) per-minute matrices from a true-power signal.

        ``true_power`` has shape ``(nodes, steps)`` at ``seconds_per_step``
        resolution. Output matrices have shape ``(nodes, minutes)``.
        """
        avg = average_to_minutes(true_power, seconds_per_step)
        if self.noise_sigma > 0:
            avg = avg * rng.normal(1.0, self.noise_sigma, size=avg.shape)
        avg = np.clip(avg, 0.0, None)
        dram = avg * self.spec.dram_power_fraction
        pkg = avg - dram
        return pkg, dram

    def measure_total(
        self,
        true_power: np.ndarray,
        rng: np.random.Generator,
        seconds_per_step: float = 60.0,
    ) -> np.ndarray:
        """PKG+DRAM combined per-minute measurement (the analyses' input)."""
        pkg, dram = self.measure(true_power, rng, seconds_per_step)
        return pkg + dram
