"""Manufacturing variability across nodes.

Process variation makes nominally identical CPUs draw measurably
different power at the same work point — the paper cites this (together
with workload imbalance) as the driver of its surprising spatial-variance
findings, and prior work (Inadomi et al., SC'15; Acun et al., HPCA'19)
reports chip-to-chip power differences of roughly 10–20% at the same
frequency. We model each node as carrying a static multiplicative power
factor drawn once per machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusterError

__all__ = ["VariabilityModel"]


@dataclass(frozen=True)
class VariabilityModel:
    """Static per-node power multipliers.

    Parameters
    ----------
    sigma:
        Standard deviation of the multiplicative factor (mean 1.0).
        Default 0.03 ⇒ roughly ±6% spread across a large machine,
        consistent with the published chip-variation range.
    clip:
        Factors are clipped to ``[1-clip, 1+clip]`` so a pathological
        draw cannot exceed physical bounds.
    """

    sigma: float = 0.03
    clip: float = 0.15

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ClusterError("variability sigma must be >= 0")
        if not 0 < self.clip <= 0.5:
            raise ClusterError("variability clip must be in (0, 0.5]")

    def draw_factors(self, num_nodes: int, rng: np.random.Generator) -> np.ndarray:
        """One multiplicative power factor per node (mean ≈ 1)."""
        if num_nodes <= 0:
            raise ClusterError("num_nodes must be positive")
        factors = rng.normal(loc=1.0, scale=self.sigma, size=num_nodes)
        return np.clip(factors, 1.0 - self.clip, 1.0 + self.clip)
