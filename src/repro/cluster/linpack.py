"""LINPACK reference workload.

The paper uses LINPACK as the power yardstick: it draws "more than 95%
of the TDP" while production jobs average 59–71%. This module provides
that reference draw, used by benches to contextualize the per-node power
distributions and by the over-provisioning policy as the worst-case job.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.specs import SystemSpec
from repro.errors import ClusterError

__all__ = ["LINPACK_TDP_FRACTION", "linpack_power_draw"]

LINPACK_TDP_FRACTION: float = 0.96


def linpack_power_draw(
    spec: SystemSpec,
    num_nodes: int,
    duration_minutes: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Per-node, per-minute power of a LINPACK run: ``(nodes, minutes)``.

    LINPACK's draw is nearly flat at ~96% of TDP with a short warm-up
    ramp and small (±1%) jitter.
    """
    if num_nodes <= 0 or duration_minutes <= 0:
        raise ClusterError("num_nodes and duration_minutes must be positive")
    rng = rng or np.random.default_rng(0)
    level = LINPACK_TDP_FRACTION * spec.node_tdp_watts
    power = np.full((num_nodes, duration_minutes), level, dtype=float)
    # Warm-up: first minute at 80% while the matrix is generated.
    power[:, 0] = 0.8 * level
    power *= rng.normal(1.0, 0.01, size=power.shape)
    return np.clip(power, 0.0, spec.node_tdp_watts)
