"""Machine models of the two production clusters the paper studies.

:mod:`repro.cluster.specs` encodes Table 1 verbatim; the rest of the
subpackage turns those specs into simulatable objects: nodes with
manufacturing variability, a RAPL measurement model with one-minute
averaged sampling, and a LINPACK reference workload.
"""

from repro.cluster.gpu import GPU_IDLE_FRACTION, GPU_NOISE_SIGMA, GpuPowerModel
from repro.cluster.linpack import linpack_power_draw
from repro.cluster.node import Node, build_nodes
from repro.cluster.rapl import RaplModel, RaplSample
from repro.cluster.specs import (
    ALEX,
    EMMY,
    MEGGIE,
    WOODY,
    WORKLOAD_PROFILES,
    SystemSpec,
    get_spec,
    known_systems,
)
from repro.cluster.system import Cluster
from repro.cluster.variability import VariabilityModel

__all__ = [
    "SystemSpec",
    "EMMY",
    "MEGGIE",
    "ALEX",
    "WOODY",
    "WORKLOAD_PROFILES",
    "get_spec",
    "known_systems",
    "Node",
    "build_nodes",
    "Cluster",
    "VariabilityModel",
    "RaplModel",
    "RaplSample",
    "linpack_power_draw",
    "GpuPowerModel",
    "GPU_IDLE_FRACTION",
    "GPU_NOISE_SIGMA",
]
