"""Whole-cluster container tying spec, nodes, and power accounting."""

from __future__ import annotations

import numpy as np

from repro.cluster.node import Node, build_nodes
from repro.cluster.specs import SystemSpec, get_spec
from repro.cluster.variability import VariabilityModel
from repro.errors import ClusterError
from repro.rng import RngFactory

__all__ = ["Cluster"]


class Cluster:
    """A simulatable cluster: spec + instantiated nodes.

    Examples
    --------
    >>> c = Cluster.from_name("emmy", seed=1)
    >>> c.num_nodes
    560
    >>> round(c.total_tdp_watts / 1e3)  # kW provisioned
    118
    """

    def __init__(
        self,
        spec: SystemSpec,
        seed: int = 0,
        variability: VariabilityModel | None = None,
        num_nodes: int | None = None,
    ) -> None:
        if num_nodes is not None:
            if num_nodes <= 0:
                raise ClusterError("num_nodes override must be positive")
            # Scaled-down replica used by tests/benches: same per-node
            # characteristics, fewer nodes. A mixed partition's GPU
            # island scales proportionally so the replica keeps the
            # same heterogeneity (never dropping to zero GPU nodes).
            overrides: dict = {"num_nodes": num_nodes}
            if spec.gpu_nodes is not None:
                overrides["gpu_nodes"] = min(
                    num_nodes,
                    max(1, round(spec.gpu_nodes * num_nodes / spec.num_nodes)),
                )
            spec = SystemSpec(
                **{
                    **{f: getattr(spec, f) for f in spec.__dataclass_fields__},
                    **overrides,
                }
            )
        self.spec = spec
        rng = RngFactory(seed).get(f"cluster.{spec.name}.variability")
        self.nodes: list[Node] = build_nodes(spec, rng, variability)
        self._factors = np.asarray([n.power_factor for n in self.nodes])
        self._gpu_counts = np.asarray([n.gpus for n in self.nodes], dtype=np.int64)
        if spec.has_gpus:
            # Per-node GPU variability comes from its own seeded stream
            # so CPU-only byte-identity (emmy/meggie goldens) and the
            # CPU factor sequence are untouched by the GPU inventory.
            gpu_rng = RngFactory(seed).get(f"cluster.{spec.name}.gpu")
            raw = (variability or VariabilityModel()).draw_factors(
                spec.num_nodes, gpu_rng
            )
            self._gpu_factors = np.where(self._gpu_counts > 0, raw, 1.0)
        else:
            self._gpu_factors = np.ones(spec.num_nodes)

    @classmethod
    def from_name(cls, name: str, seed: int = 0, num_nodes: int | None = None) -> "Cluster":
        """Build a cluster from a registered spec name (see known_systems)."""
        return cls(get_spec(name), seed=seed, num_nodes=num_nodes)

    # -- convenience accessors -------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    @property
    def node_tdp_watts(self) -> float:
        return self.spec.node_tdp_watts

    @property
    def total_tdp_watts(self) -> float:
        return self.spec.total_tdp_watts

    @property
    def power_factors(self) -> np.ndarray:
        """Static variability multiplier per node (read-only view)."""
        v = self._factors.view()
        v.flags.writeable = False
        return v

    @property
    def gpu_counts(self) -> np.ndarray:
        """Accelerators installed per node id (read-only view)."""
        v = self._gpu_counts.view()
        v.flags.writeable = False
        return v

    @property
    def gpu_factors(self) -> np.ndarray:
        """Per-node GPU variability multiplier (1.0 on GPU-less nodes)."""
        v = self._gpu_factors.view()
        v.flags.writeable = False
        return v

    @property
    def total_gpus(self) -> int:
        """Accelerators across the instantiated nodes."""
        return int(self._gpu_counts.sum())

    def node(self, node_id: int) -> Node:
        if not 0 <= node_id < self.num_nodes:
            raise ClusterError(f"node id {node_id} out of range [0, {self.num_nodes})")
        return self.nodes[node_id]

    def __repr__(self) -> str:
        return (
            f"Cluster({self.name!r}, nodes={self.num_nodes}, "
            f"tdp={self.node_tdp_watts:.0f}W/node)"
        )
