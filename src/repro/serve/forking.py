"""Pre-forked multi-process serve front-end (SO_REUSEPORT sharding).

One GIL-bound :class:`~http.server.ThreadingHTTPServer` tops out far
below what the array-backed model math can deliver, so the production
front-end runs **N worker processes**, each owning a full serving stack
(socket → handler threads → :class:`~repro.serve.service.PredictionService`
→ :class:`~repro.serve.batching.MicroBatcher` →
:class:`~repro.serve.registry.ModelRegistry`). Every worker binds the
*same* ``host:port`` with ``SO_REUSEPORT``; the kernel hash-shards
accepted connections across the listening sockets, so no userspace
proxy, no shared accept lock, and a dead worker never wedges the
others.

Shared-nothing by design, with three thin seams:

* **models** — workers load trained artifacts from the shared on-disk
  :class:`~repro.pipeline.ArtifactCache`; :meth:`ForkingServer.start`
  pre-trains the warm models once in the parent so workers cold-start
  by disk-loading the *same* artifact (bit-identical predictions across
  workers — asserted by the fan-in test). A worker that races past the
  cache retrains deterministically from the same frozen scenario, which
  produces the same model.
* **metrics** — each worker periodically snapshots its process-local
  :data:`~repro.obs.metrics.REGISTRY` into the pool's ``metrics_dir``;
  ``GET /metrics`` on *any* worker merges every snapshot with
  :func:`repro.obs.metrics.render_merged` into one fleet exposition.
* **supervision** — the parent supervises workers the way the
  :class:`~repro.serve.batching.MicroBatcher` supervises its worker
  thread (PR-4 machinery, one level up): an unexpectedly dead worker is
  restarted with the same worker id, up to ``max_restarts`` times, and
  graceful shutdown SIGTERMs the pool and reaps every child.

Workers are started with the multiprocessing *spawn* method: a forked
interpreter would inherit the parent's live threads/locks (batcher
workers, metric locks) in undefined states, while a spawned one builds
its stack from scratch.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ServeError
from repro.spec import ScenarioSpec, as_scenario

__all__ = ["WorkerConfig", "ForkingServer", "worker_main"]

_READY_POLL_S = 0.05


def _require_reuseport() -> None:
    if not hasattr(socket, "SO_REUSEPORT"):
        raise ServeError(
            "this platform lacks SO_REUSEPORT; the forked front-end "
            "needs kernel socket sharding (Linux / macOS)"
        )


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs, in picklable form.

    Shipped to the spawned child as the single argument of
    :func:`worker_main`; every field is a plain value so the config
    crosses the spawn boundary without importing the serving stack in
    the parent's hot path.
    """

    scenario: Mapping[str, Any]
    host: str
    port: int
    worker_id: int
    n_workers: int
    metrics_dir: str
    cache_dir: str | None = None
    max_batch: int = 64
    max_wait_ms: float = 2.0
    warm: tuple[str, ...] = ("BDT",)
    snapshot_interval_s: float = 0.5
    verbose: bool = False
    #: Attach a ModelLifecycle in each worker. The journal lives under
    #: ``lifecycle_dir`` (default: the shared cache's ``lifecycle/``
    #: subtree), so every worker replays the same fsync'd event log —
    #: a promote on any worker flips the active version pool-wide.
    lifecycle: bool = False
    lifecycle_dir: str | None = None

    def spec(self) -> ScenarioSpec:
        """The scenario the worker serves."""
        return ScenarioSpec.from_dict(dict(self.scenario))


class _SnapshotWriter(threading.Thread):
    """Daemon thread dumping the worker's registry for /metrics fan-in."""

    def __init__(self, path: Path, interval_s: float) -> None:
        super().__init__(name="repro-metrics-snapshot", daemon=True)
        self.path = path
        self.interval_s = max(interval_s, 0.05)
        self._stop = threading.Event()

    def write_once(self) -> None:
        """Atomically replace the snapshot file with the current state."""
        from repro.obs.metrics import REGISTRY

        tmp = self.path.with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(REGISTRY.dump()))
            os.replace(tmp, self.path)
        except OSError:
            pass  # a missed snapshot only staves the aggregation briefly

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write_once()

    def stop(self) -> None:
        """Stop the loop and write one final snapshot."""
        self._stop.set()
        self.write_once()


def worker_main(config: WorkerConfig) -> int:
    """Entry point of one spawned worker process.

    Builds the full serving stack against ``config``, binds the shared
    port with ``SO_REUSEPORT``, warms the configured models (from the
    shared artifact cache when the parent pre-trained them), drops a
    ``ready-<id>.json`` marker for the parent, then serves until
    SIGTERM. On SIGTERM the HTTP server stops accepting, in-flight
    batches drain through :meth:`PredictionService.close`, and the final
    metrics snapshot is flushed so the fleet exposition stays complete.
    """
    # Imports happen here, inside the spawned child, so the parent can
    # construct WorkerConfig without touching numpy or the ML layer.
    from repro.serve.http import PredictionServer
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import PredictionService

    metrics_dir = Path(config.metrics_dir)
    spec = config.spec()
    registry = ModelRegistry(
        cache_dir=Path(config.cache_dir) if config.cache_dir else None
    )
    lifecycle = None
    if config.lifecycle or config.lifecycle_dir is not None:
        from repro.serve.lifecycle import ModelLifecycle

        lifecycle = ModelLifecycle(
            spec, registry=registry, lifecycle_dir=config.lifecycle_dir
        )
    service = PredictionService(
        spec,
        registry=registry,
        max_batch=config.max_batch,
        max_wait_s=config.max_wait_ms / 1e3,
        lifecycle=lifecycle,
    )
    server = PredictionServer(
        service,
        host=config.host,
        port=config.port,
        verbose=config.verbose,
        reuse_port=True,
        worker_id=config.worker_id,
        metrics_dir=metrics_dir,
    )
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent coordinates ^C

    if config.warm:
        service.warm(tuple(config.warm))
    writer = _SnapshotWriter(
        metrics_dir / f"metrics-{config.worker_id}.json",
        config.snapshot_interval_s,
    )
    writer.write_once()
    writer.start()
    server.serve_in_background()
    ready = metrics_dir / f"ready-{config.worker_id}.json"
    ready.write_text(json.dumps({"pid": os.getpid(), "port": server.port}))

    stop.wait()
    writer.stop()
    server.close()
    return 0


class ForkingServer:
    """Supervised pool of SO_REUSEPORT worker processes on one port.

    Parameters
    ----------
    scenario / scenario_kwargs:
        Anything :func:`repro.spec.as_scenario` accepts; every worker
        serves this default scenario.
    workers:
        Worker process count. Each runs a complete single-process stack.
    host / port:
        Shared bind address. ``port=0`` reserves an ephemeral port
        before the first worker starts (the parent holds a bound,
        *non-listening* ``SO_REUSEPORT`` socket for the pool's lifetime,
        so the port cannot be stolen while workers restart).
    cache_dir:
        Shared artifact cache; defaults to the pipeline's. Warm models
        are pre-trained into it by :meth:`start` so workers disk-load
        identical artifacts.
    max_batch / max_wait_ms / warm:
        Per-worker serving knobs (see :func:`repro.serve.create_server`).
    max_restarts:
        Total unexpected-worker-death restarts before the pool gives up
        restarting (the survivors keep serving).

    Use as a context manager, or ``start()`` … ``close()``.
    """

    def __init__(
        self,
        scenario: "ScenarioSpec | Mapping | str" = "emmy",
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        warm: Sequence[str] = ("BDT",),
        max_restarts: int = 5,
        snapshot_interval_s: float = 0.5,
        verbose: bool = False,
        lifecycle: bool = False,
        lifecycle_dir=None,
        **scenario_kwargs: Any,
    ) -> None:
        if workers < 1:
            raise ServeError("workers must be >= 1")
        _require_reuseport()
        self.scenario = as_scenario(scenario, **scenario_kwargs)
        self.workers = workers
        self.host = host
        self._requested_port = port
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.warm = tuple(warm)
        self.lifecycle = bool(lifecycle) or lifecycle_dir is not None
        self.lifecycle_dir = (
            str(lifecycle_dir) if lifecycle_dir is not None else None
        )
        self.max_restarts = max_restarts
        self.snapshot_interval_s = snapshot_interval_s
        self.verbose = verbose
        self.restarts = 0
        self._procs: dict[int, Any] = {}
        self._reserve: socket.socket | None = None
        self._metrics_dir: Path | None = None
        self._supervisor: threading.Thread | None = None
        self._closing = threading.Event()
        self._started = False
        self.port = port

    # -- lifecycle -------------------------------------------------------

    def start(self, timeout: float = 120.0) -> "ForkingServer":
        """Reserve the port, pre-train warm models, spawn + await workers."""
        if self._started:
            return self
        self._metrics_dir = Path(
            tempfile.mkdtemp(prefix="repro-serve-pool-")
        )
        self._reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        self._reserve.bind((self.host, self._requested_port))
        # Never listen(): a bound-but-closed-state TCP socket is invisible
        # to the kernel's reuseport listener selection, so it only pins
        # the port number for restarting workers.
        self.port = self._reserve.getsockname()[1]
        self._pretrain()
        ctx = multiprocessing.get_context("spawn")
        for worker_id in range(self.workers):
            self._spawn(ctx, worker_id)
        self._await_ready(timeout)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._supervisor.start()
        self._started = True
        return self

    def _pretrain(self) -> None:
        """Train the warm models once so every worker disk-loads them."""
        if not self.warm:
            return
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry(cache_dir=self.cache_dir)
        for model in self.warm:
            registry.get(self.scenario, model)

    def _config(self, worker_id: int) -> WorkerConfig:
        assert self._metrics_dir is not None
        return WorkerConfig(
            scenario=self.scenario.to_dict(),
            host=self.host,
            port=self.port,
            worker_id=worker_id,
            n_workers=self.workers,
            metrics_dir=str(self._metrics_dir),
            cache_dir=str(self.cache_dir) if self.cache_dir else None,
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            warm=self.warm,
            snapshot_interval_s=self.snapshot_interval_s,
            verbose=self.verbose,
            lifecycle=self.lifecycle,
            lifecycle_dir=self.lifecycle_dir,
        )

    def _spawn(self, ctx, worker_id: int) -> None:
        process = ctx.Process(
            target=worker_main,
            args=(self._config(worker_id),),
            name=f"repro-serve-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self._procs[worker_id] = process

    def _await_ready(self, timeout: float) -> None:
        assert self._metrics_dir is not None
        deadline = time.monotonic() + timeout
        pending = set(self._procs)
        while pending and time.monotonic() < deadline:
            for worker_id in sorted(pending):
                if (self._metrics_dir / f"ready-{worker_id}.json").is_file():
                    pending.discard(worker_id)
                elif not self._procs[worker_id].is_alive():
                    self.close()
                    raise ServeError(
                        f"serve worker {worker_id} died during startup "
                        f"(exit {self._procs[worker_id].exitcode})"
                    )
            if pending:
                time.sleep(_READY_POLL_S)
        if pending:
            self.close()
            raise ServeError(
                f"serve workers {sorted(pending)} not ready within {timeout}s"
            )

    def _supervise(self) -> None:
        """Restart unexpectedly dead workers, PR-4 style, until closing."""
        ctx = multiprocessing.get_context("spawn")
        while not self._closing.wait(0.2):
            for worker_id, process in list(self._procs.items()):
                if process.is_alive() or self._closing.is_set():
                    continue
                if self.restarts >= self.max_restarts:
                    return  # survivors keep serving; pool stops healing
                self.restarts += 1
                assert self._metrics_dir is not None
                ready = self._metrics_dir / f"ready-{worker_id}.json"
                try:
                    ready.unlink()
                except OSError:
                    pass
                self._spawn(ctx, worker_id)

    def close(self, timeout: float = 10.0) -> None:
        """SIGTERM the pool, reap every worker, release port + scratch."""
        self._closing.set()
        for process in self._procs.values():
            if process.is_alive():
                process.terminate()  # SIGTERM → graceful worker shutdown
        deadline = time.monotonic() + timeout
        for process in self._procs.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        if self._supervisor is not None and self._supervisor.is_alive():
            self._supervisor.join(timeout=2.0)
        if self._reserve is not None:
            self._reserve.close()
            self._reserve = None
        if self._metrics_dir is not None:
            import shutil

            shutil.rmtree(self._metrics_dir, ignore_errors=True)
            self._metrics_dir = None
        self._started = False

    def __enter__(self) -> "ForkingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- inspection ------------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` string of the shared listening address."""
        return f"{self.host}:{self.port}"

    def alive_workers(self) -> int:
        """How many worker processes are currently running."""
        return sum(1 for p in self._procs.values() if p.is_alive())

    def stats(self) -> dict[str, Any]:
        """Pool-level state: address, worker liveness, restart count."""
        return {
            "address": self.address,
            "workers": self.workers,
            "alive": self.alive_workers(),
            "restarts": self.restarts,
            "pids": {
                worker_id: process.pid
                for worker_id, process in self._procs.items()
            },
            "scenario": self.scenario.to_dict(),
        }
