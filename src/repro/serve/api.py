"""The one documented predict surface: ``PredictRequest`` in, ``PredictResponse`` out.

Before PR 8 the serving stack had three parallel predict entry points
(``Servable.predict_records``, ``MicroBatcher.predict/predict_many``,
``PredictionService.predict*``) with three slightly different calling
conventions. They all still exist — batching and vectorized inference
are implementation layers — but every one of them now funnels through
:meth:`repro.serve.service.PredictionService.predict_request`, which
takes a :class:`PredictRequest` and returns a :class:`PredictResponse`.

The shims mirror :func:`repro.spec.as_scenario`: existing call sites
keep working unchanged.

* :func:`as_predict_request` coerces a mapping, a bare record list, or
  an existing request into a canonical frozen :class:`PredictRequest`;
* :class:`PredictResponse` supports **mapping-style access**
  (``response["predictions"]``, ``response["degraded"]``, …) so code
  written against the old ``predict_detailed`` dicts reads it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ServeError

__all__ = ["PredictRequest", "PredictResponse", "as_predict_request"]

#: The execution modes a request may name. ``batched`` submits each
#: record to the micro-batcher (single-job requests coalesce across
#: clients); ``bulk`` answers the caller-assembled batch with one
#: vectorized call on the calling thread (the NDJSON path).
PREDICT_MODES = ("batched", "bulk")


@dataclass(frozen=True)
class PredictRequest:
    """One prediction request, in canonical frozen form.

    Parameters
    ----------
    records:
        The job records to predict for (each needs ``user``, ``nodes``,
        ``req_walltime_s``; the ``GPU`` track model additionally needs
        ``gpus``, the per-node board count). Stored as a tuple so
        requests are hashable and immutable.
    model:
        Model name from :data:`repro.serve.registry.SERVE_MODELS`.
    scenario:
        Optional scenario override/overlay, anything
        :meth:`PredictionService.resolve_scenario` accepts.
    mode:
        ``"batched"`` (default — coalescing micro-batcher) or ``"bulk"``
        (one vectorized call, no queue).
    timeout:
        Per-request result timeout (batched mode only).
    version:
        Explicit lineage version to serve from, or ``None`` (default)
        to resolve the active version through the lifecycle journal
        (version 1 when no lifecycle is attached) — docs/LIFECYCLE.md.
    """

    records: tuple[Mapping[str, Any], ...]
    model: str = "BDT"
    scenario: Any = None
    mode: str = "batched"
    timeout: float | None = 30.0
    version: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))
        if self.mode not in PREDICT_MODES:
            raise ServeError(
                f"unknown predict mode {self.mode!r}; known: {PREDICT_MODES}"
            )

    def __len__(self) -> int:
        return len(self.records)


def as_predict_request(request: Any = None, /, **kwargs: Any) -> PredictRequest:
    """Coerce anything request-shaped into a :class:`PredictRequest`.

    Accepts (mirroring :func:`repro.spec.as_scenario`):

    * an existing :class:`PredictRequest` (returned as-is, or replaced
      field-wise when ``kwargs`` are given);
    * a mapping with a ``records`` (or legacy ``jobs``) key plus any
      other request fields;
    * a bare sequence of record mappings, with request fields in
      ``kwargs`` (``as_predict_request(records, model="KNN")``).
    """
    if isinstance(request, PredictRequest):
        if not kwargs:
            return request
        from dataclasses import replace

        return replace(request, **kwargs)
    if request is None:
        payload = dict(kwargs)
    elif isinstance(request, Mapping):
        payload = {**request, **kwargs}
    else:  # a bare sequence of records
        payload = {"records": request, **kwargs}
    if "jobs" in payload and "records" not in payload:
        payload["records"] = payload.pop("jobs")
    records = payload.pop("records", None)
    if records is None:
        raise ServeError("a predict request needs records")
    unknown = sorted(
        set(payload) - {"model", "scenario", "mode", "timeout", "version"}
    )
    if unknown:
        raise ServeError(f"unknown predict-request fields {unknown}")
    return PredictRequest(records=tuple(records), **payload)


@dataclass(frozen=True)
class PredictResponse:
    """One prediction response: values plus serving provenance.

    Field access works both attribute-style (``response.predictions``)
    and mapping-style (``response["predictions"]``) — the latter keeps
    every call site written against the old ``predict_detailed`` dict
    shape working unchanged.
    """

    predictions: Any  # np.ndarray, request order
    degraded: bool
    served_by: str  # model name that actually answered
    model: str  # model name that was requested
    version: int = 1  # lineage version that answered (1 = base)
    latency_s: float = 0.0
    extras: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        try:
            return self.to_dict()[key]
        except KeyError:
            raise KeyError(key) from None

    def __contains__(self, key: object) -> bool:
        return key in self.to_dict()

    def __iter__(self) -> Iterator[str]:
        return iter(self.to_dict())

    def keys(self) -> Sequence[str]:
        """Mapping-shim view of the response fields."""
        return tuple(self.to_dict())

    def get(self, key: str, default: Any = None) -> Any:
        """Mapping-shim ``get``."""
        return self.to_dict().get(key, default)

    def to_dict(self) -> dict[str, Any]:
        """The legacy ``predict_detailed`` dict shape (plus lineage)."""
        return {
            "predictions": self.predictions,
            "degraded": self.degraded,
            "served_by": self.served_by,
            "model": self.model,
            "version": self.version,
            "latency_s": self.latency_s,
            **dict(self.extras),
        }
