"""Drift-aware model lifecycle: feedback, drift, shadow eval, promote/rollback.

The registry serves *immutable* artifacts; this module decides **which**
artifact serves. It is the production layer the paper's deployment
argument (RQ7–RQ9: user-history models are "light-weight and easy to
maintain/update") calls for, following the continuously-retrained power
models of Sîrbu & Babaoglu (arXiv:1601.05961) and the online
candidate-evaluation stage of the NERSC two-stage framework
(arXiv:2604.02158):

* **Feedback ingest** — :meth:`ModelLifecycle.feedback` (HTTP:
  ``POST /v1/feedback``; offline: :func:`replay_feedback`) appends
  observed ``(job, actual power)`` records to a per-scenario JSONL
  feedback log and updates a live
  :class:`~repro.ml.OnlinePowerPredictor` *prequentially*
  (predict-then-observe, O(1) per job) — deterministic given the feed
  order, so two replicas fed the same stream hold bit-identical state.
* **Drift detection** — :class:`DriftDetector` derives rolling
  prediction-error and feature-distribution windows from
  :meth:`repro.obs.metrics.MetricsRegistry.snapshot` /
  :meth:`~repro.obs.metrics.MetricsRegistry.delta`; a tripped threshold
  rule latches the ``repro_drift_active`` gauge, counts a
  ``repro_drift_events_total`` series, structured-logs the event, and
  records it in the journal.
* **Shadow evaluation** — when a candidate version is registered, the
  service mirrors every live request to it off the hot path (through
  the candidate's own micro-batcher); paired live/candidate deltas
  accumulate in ``repro_shadow_abs_diff`` and surface as the promote
  evidence (:meth:`ModelLifecycle.shadow_report`).
* **Promote / rollback with an audit trail** — the ``active`` pointer
  per ``(scenario, model)`` lives in a :class:`LineageJournal`
  (append-only JSONL, fsync'd). :meth:`ModelLifecycle.promote` and
  :meth:`~ModelLifecycle.rollback` append who/when/why plus the shadow
  evidence; every serving process — including all forked workers —
  picks the flip up on its next (stat-throttled) journal refresh, and
  rollback restores bit-identical predictions because versions are
  immutable content-addressed artifacts.

See docs/LIFECYCLE.md for the full flow and the journal format.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ServeError, ValidationError
from repro.obs.logs import JsonLogger
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import trace_span
from repro.serve.registry import SERVE_MODELS, ModelRegistry, OnlineServable
from repro.spec import as_scenario

__all__ = [
    "ModelRef",
    "LineageJournal",
    "DriftDetector",
    "ModelLifecycle",
    "replay_feedback",
    "default_lifecycle_dir",
]

_LOG = JsonLogger("repro.serve.lifecycle")

#: Fields one feedback record must carry (the predict fields + outcome).
FEEDBACK_FIELDS = ("user", "nodes", "req_walltime_s", "power_w")

#: Absolute-fractional-error buckets for feedback/shadow histograms.
ERROR_BUCKETS: tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.15, 0.25, 0.4, 0.6, 1.0, 2.0,
)

#: Coarse value buckets for feature-distribution histograms (the drift
#: windows only use the exact sum/count, never the bucket shape).
FEATURE_BUCKETS: tuple[float, ...] = (1.0, 4.0, 16.0, 64.0, 256.0, 1e3, 1e4, 1e5, 1e6)


def default_lifecycle_dir(cache_root: "Path | str") -> Path:
    """The journal/feedback directory inside an artifact-cache root."""
    return Path(cache_root) / "lifecycle"


@dataclass(frozen=True)
class ModelRef:
    """Lineage address of one served model: scenario × model × version.

    This is the unit the journal, the registry, and the service agree
    on: ``scenario_digest`` is the pipeline dataset digest (the same
    content key the registry stores under), ``version`` the immutable
    lineage version. ``version=1`` is the base artifact trained from
    the frozen scenario dataset.
    """

    scenario_digest: str
    model: str
    version: int = 1

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ServeError(f"model version must be >= 1, got {self.version}")

    @property
    def label(self) -> str:
        """Human-readable ``model@v<version> (digest…)`` form."""
        return f"{self.model}@v{self.version} ({self.scenario_digest[:12]}…)"

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (journal events, ``/v1/models``)."""
        return {
            "scenario_digest": self.scenario_digest,
            "model": self.model,
            "version": self.version,
        }


class LineageJournal:
    """Append-only, fsync'd JSONL journal of lifecycle events.

    The journal is the *only* mutable state in the lifecycle layer:
    model artifacts are immutable, so "which version is active" is fully
    determined by replaying the journal. Appends write one JSON line,
    flush, and ``fsync`` (a sub-pipe-buf single ``write`` on an
    ``O_APPEND`` descriptor, so concurrent workers' appends interleave
    whole lines). Reads are incremental: :meth:`refresh` stats the file
    and only parses bytes past the last consumed offset, throttled to
    ``poll_s`` so per-request active-pointer lookups cost at most one
    ``stat``.

    Damaged lines (a torn write, external corruption) are *skipped and
    counted*, never fatal — a journal must survive the same disk
    trouble the ``cache.corrupt`` fault point simulates for pickles.
    """

    def __init__(self, path: "Path | str", poll_s: float = 0.05, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.poll_s = poll_s
        self.fsync = fsync
        self._lock = threading.RLock()
        self._offset = 0
        self._pending = b""  # trailing partial line awaiting its newline
        self._events: list[dict] = []
        self._active: dict[str, int] = {}
        self._registered: dict[str, dict[int, str | None]] = {}
        self._retired: dict[str, set[int]] = {}
        self._damaged_lines = 0
        self._last_poll = 0.0
        self.refresh(force=True)

    # -- reading ---------------------------------------------------------

    def refresh(self, force: bool = False) -> int:
        """Fold any new journal bytes in; returns the new-event count.

        Throttled by ``poll_s`` unless forced. A journal that shrank
        (external truncation) is re-read from the start.
        """
        now = time.monotonic()
        with self._lock:
            if not force and now - self._last_poll < self.poll_s:
                return 0
            self._last_poll = now
            try:
                size = self.path.stat().st_size
            except OSError:
                return 0
            if size < self._offset:
                self._reset_state()
            if size == self._offset:
                return 0
            try:
                with self.path.open("rb") as fh:
                    fh.seek(self._offset)
                    chunk = fh.read(size - self._offset)
            except OSError:
                return 0
            self._offset += len(chunk)
            data = self._pending + chunk
            lines = data.split(b"\n")
            self._pending = lines.pop()  # b"" when data ends in newline
            applied = 0
            for line in lines:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict) or "event" not in record:
                        raise ValueError("not an event object")
                except ValueError:
                    self._damaged_lines += 1
                    continue
                self._apply(record)
                applied += 1
            return applied

    def _reset_state(self) -> None:
        self._offset = 0
        self._pending = b""
        self._events = []
        self._active = {}
        self._registered = {}
        self._retired = {}
        self._damaged_lines = 0

    def _apply(self, record: dict) -> None:
        self._events.append(record)
        event = record.get("event")
        model = record.get("model")
        if not isinstance(model, str):
            return
        version = record.get("version")
        if event == "register" and isinstance(version, int):
            self._registered.setdefault(model, {})[version] = record.get(
                "trained_at_key"
            )
        elif event == "promote" and isinstance(version, int):
            self._active[model] = version
            self._retired.setdefault(model, set()).discard(version)
        elif event == "rollback" and isinstance(version, int):
            self._active[model] = version
            retired_from = record.get("from_version")
            if isinstance(retired_from, int):
                # A rolled-back-from version was rejected in production:
                # it stops being a shadow candidate.
                self._retired.setdefault(model, set()).add(retired_from)

    # -- writing ---------------------------------------------------------

    def append(self, event: str, model: str, **fields: Any) -> dict:
        """Append one event (fsync'd) and return the full record."""
        with self._lock:
            self.refresh(force=True)
            record = {
                "seq": len(self._events) + self._damaged_lines + 1,
                "ts": round(time.time(), 3),
                "event": event,
                "model": model,
                **fields,
            }
            line = json.dumps(record, sort_keys=True) + "\n"
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            self.refresh(force=True)
            return record

    # -- derived state ---------------------------------------------------

    def active_version(self, model: str, refresh: bool = True) -> int:
        """The version serving live traffic for ``model`` (default 1)."""
        if refresh:
            self.refresh()
        with self._lock:
            return self._active.get(model, 1)

    def candidate_version(self, model: str, refresh: bool = True) -> int | None:
        """The newest registered, non-retired version ahead of active."""
        if refresh:
            self.refresh()
        with self._lock:
            active = self._active.get(model, 1)
            retired = self._retired.get(model, set())
            ahead = [
                v
                for v in self._registered.get(model, {})
                if v > active and v not in retired
            ]
            return max(ahead) if ahead else None

    def registered_versions(self, model: str) -> dict[int, str | None]:
        """``{version: trained_at_key}`` of every registered snapshot."""
        self.refresh()
        with self._lock:
            return dict(self._registered.get(model, {}))

    def max_version(self, model: str) -> int:
        """Highest version the journal knows (1 when none registered)."""
        self.refresh()
        with self._lock:
            versions = self._registered.get(model, {})
            return max([1, self._active.get(model, 1), *versions])

    def previous_active(self, model: str) -> int:
        """The version active before the most recent promote (default 1)."""
        self.refresh()
        with self._lock:
            for record in reversed(self._events):
                if record.get("model") == model and record.get("event") == "promote":
                    prior = record.get("from_version")
                    return int(prior) if isinstance(prior, int) else 1
            return 1

    def history(self, model: str | None = None) -> list[dict]:
        """Every journal event (optionally for one model), oldest first."""
        self.refresh()
        with self._lock:
            return [
                dict(e)
                for e in self._events
                if model is None or e.get("model") == model
            ]

    @property
    def damaged_lines(self) -> int:
        """Journal lines skipped as unparseable (torn/corrupt writes)."""
        with self._lock:
            return self._damaged_lines


class DriftDetector:
    """Threshold rules over rolling metric windows for one (scenario, model).

    Built on the observability layer's window machinery: the detector
    keeps the :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` taken
    at the start of the current window; :meth:`check` diffs it against a
    fresh snapshot (:meth:`~repro.obs.metrics.MetricsRegistry.delta`) to
    get the window's exact mean prediction error and feature means
    (Δsum / Δcount of the feedback histograms). The first completed
    window after (re)activation becomes the *reference*; later windows
    fire when

    * ``error`` rule — window mean absolute fractional error exceeds
      ``error_floor``, or ``error_ratio`` × the reference mean;
    * ``feature:<name>`` rule — a feature's window mean drifts more
      than ``feature_tolerance`` (relative) from the reference mean.

    A fired rule latches ``repro_drift_active`` at 1 until
    :meth:`reset` (promote/rollback clear it).
    """

    def __init__(
        self,
        scenario_label: str,
        model: str,
        metrics: MetricsRegistry = REGISTRY,
        min_window: int = 32,
        error_floor: float = 0.35,
        error_ratio: float = 1.5,
        feature_tolerance: float = 0.25,
        features: Sequence[str] = ("nodes", "req_walltime_s"),
    ) -> None:
        if min_window < 1:
            raise ServeError("drift min_window must be >= 1")
        self.scenario = scenario_label
        self.model = model
        self.metrics = metrics
        self.min_window = min_window
        self.error_floor = error_floor
        self.error_ratio = error_ratio
        self.feature_tolerance = feature_tolerance
        self.features = tuple(features)
        self._gauge = metrics.gauge(
            "repro_drift_active",
            "1 while a drift rule is latched for (scenario, model).",
            labelnames=("scenario", "model"),
        )
        self._events = metrics.counter(
            "repro_drift_events_total",
            "Drift-rule firings by (scenario, model, rule).",
            labelnames=("scenario", "model", "rule"),
        )
        self._lock = threading.Lock()
        self._window_start = metrics.snapshot()
        self._reference: dict[str, float] | None = None
        self._latched = False
        self._gauge.set(0, scenario=self.scenario, model=self.model)

    # -- window plumbing -------------------------------------------------

    def _labels_error(self) -> tuple[str, str]:
        return (self.scenario, self.model)

    def _window_stats(self, delta: Mapping[str, Mapping]) -> dict[str, float] | None:
        """Exact window means from a snapshot delta, or None if short."""
        err_count = delta.get("repro_feedback_abs_error_count", {}).get(
            self._labels_error(), 0.0
        )
        if err_count < self.min_window:
            return None
        err_sum = delta.get("repro_feedback_abs_error_sum", {}).get(
            self._labels_error(), 0.0
        )
        stats = {"count": err_count, "error_mean": err_sum / err_count}
        for feature in self.features:
            key = (self.scenario, feature)
            n = delta.get("repro_feedback_feature_count", {}).get(key, 0.0)
            total = delta.get("repro_feedback_feature_sum", {}).get(key, 0.0)
            stats[f"feature_{feature}"] = total / n if n else 0.0
        return stats

    def check(self) -> dict[str, Any] | None:
        """Evaluate the rules if the current window is complete.

        Returns the drift event payload when a rule fired, else None.
        Called by the lifecycle manager after each feedback batch —
        never on the serving hot path.
        """
        with self._lock:
            delta = MetricsRegistry.delta(self._window_start, self.metrics.snapshot())
            stats = self._window_stats(delta)
            if stats is None:
                return None
            # Window complete: roll to the next one regardless of outcome.
            self._window_start = self.metrics.snapshot()
            if self._reference is None:
                self._reference = stats
                return None
            fired: list[str] = []
            ref = self._reference
            if stats["error_mean"] >= self.error_floor or (
                ref["error_mean"] > 0
                and stats["error_mean"] >= self.error_ratio * ref["error_mean"]
            ):
                fired.append("error")
            for feature in self.features:
                key = f"feature_{feature}"
                base = abs(ref.get(key, 0.0))
                if base > 0 and abs(stats[key] - ref[key]) > self.feature_tolerance * base:
                    fired.append(f"feature:{feature}")
            if not fired:
                return None
            self._latched = True
            self._gauge.set(1, scenario=self.scenario, model=self.model)
            for rule in fired:
                self._events.inc(scenario=self.scenario, model=self.model, rule=rule)
            return {
                "rules": fired,
                "window": {k: round(v, 6) for k, v in stats.items()},
                "reference": {k: round(v, 6) for k, v in ref.items()},
            }

    @property
    def latched(self) -> bool:
        """True while a fired rule has not been reset."""
        with self._lock:
            return self._latched

    def reset(self) -> None:
        """Clear the latch and start a fresh reference (post-promote)."""
        with self._lock:
            self._latched = False
            self._reference = None
            self._window_start = self.metrics.snapshot()
            self._gauge.set(0, scenario=self.scenario, model=self.model)


class ModelLifecycle:
    """The per-scenario lifecycle manager: learner, journal, detectors.

    Parameters
    ----------
    scenario:
        The scenario this manager governs (anything
        :func:`repro.spec.as_scenario` accepts).
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` versions are
        stored in (shared with the service); built against ``cache_dir``
        when omitted.
    lifecycle_dir:
        Root for the journal and feedback log; defaults to
        ``<cache root>/lifecycle``. Each scenario gets its own
        subdirectory keyed by dataset digest, so every process (and
        forked worker) pointing at the same cache shares one journal.
    watch_models:
        Models whose prediction error feeds the drift windows. The
        ``online`` model is evaluated prequentially through the live
        learner; estimator models are evaluated with one vectorized
        predict per feedback batch (off the serving path).
    seed_learner_from_active:
        Seed the live online learner from the active ``online``
        artifact's frozen state (the production default). ``False``
        starts it empty — a pure fold over the feedback stream.
    metrics:
        Metrics registry for feedback/drift/shadow series (the
        process-wide default; tests may isolate with a private one).
    """

    def __init__(
        self,
        scenario: "ScenarioSpec | Mapping | str" = "emmy",
        registry: ModelRegistry | None = None,
        cache_dir=None,
        lifecycle_dir=None,
        watch_models: Sequence[str] = ("online",),
        seed_learner_from_active: bool = True,
        metrics: MetricsRegistry = REGISTRY,
        min_window: int = 32,
        error_floor: float = 0.35,
        error_ratio: float = 1.5,
        feature_tolerance: float = 0.25,
        journal_poll_s: float = 0.05,
        fsync: bool = True,
    ) -> None:
        self.scenario = as_scenario(scenario)
        self.registry = registry or ModelRegistry(cache_dir=cache_dir)
        for model in watch_models:
            self.registry.check_model_name(model)
        self.watch_models = tuple(watch_models)
        self.seed_learner_from_active = seed_learner_from_active
        self.metrics = metrics
        root = (
            Path(lifecycle_dir)
            if lifecycle_dir is not None
            else default_lifecycle_dir(self.registry.cache.root)
        )
        self.dir = root / self.scenario.dataset_digest[:16]
        self.dir.mkdir(parents=True, exist_ok=True)
        self.journal = LineageJournal(
            self.dir / "journal.jsonl", poll_s=journal_poll_s, fsync=fsync
        )
        self.feedback_path = self.dir / "feedback.jsonl"
        self.scenario_label = self.scenario.dataset_digest[:12]
        self._lock = threading.RLock()
        self._learner = None  # live OnlinePowerPredictor, lazily seeded
        self._learner_seed_version: int | None = None
        self._drift_kwargs = {
            "min_window": min_window,
            "error_floor": error_floor,
            "error_ratio": error_ratio,
            "feature_tolerance": feature_tolerance,
        }
        self._detectors: dict[str, DriftDetector] = {}
        # Feedback / shadow metric families (get-or-create: shared with
        # every manager on the same metrics registry).
        self._m_feedback = metrics.counter(
            "repro_feedback_records_total",
            "Observed-outcome feedback records ingested, per scenario.",
            labelnames=("scenario",),
        )
        self._m_error = metrics.histogram(
            "repro_feedback_abs_error",
            "Absolute fractional prediction error on feedback records, "
            "per (scenario, model) — the drift detector's error window.",
            buckets=ERROR_BUCKETS,
            labelnames=("scenario", "model"),
        )
        self._m_feature = metrics.histogram(
            "repro_feedback_feature",
            "Feedback job feature values, per (scenario, feature) — the "
            "drift detector's feature-distribution window.",
            buckets=FEATURE_BUCKETS,
            labelnames=("scenario", "feature"),
        )
        self._m_shadow = metrics.histogram(
            "repro_shadow_abs_diff",
            "Absolute fractional difference between the candidate's and "
            "the active version's predictions on mirrored live traffic.",
            buckets=ERROR_BUCKETS,
            labelnames=("scenario", "model"),
        )
        self._m_shadow_n = metrics.counter(
            "repro_shadow_requests_total",
            "Live records mirrored to a shadow candidate.",
            labelnames=("scenario", "model"),
        )
        self._m_shadow_drop = metrics.counter(
            "repro_shadow_dropped_total",
            "Mirrored records dropped (full candidate queue, predict "
            "failure) — shadow loss never touches the live path.",
            labelnames=("scenario", "model"),
        )
        self._m_events = metrics.counter(
            "repro_lifecycle_events_total",
            "Journal events appended, by event type.",
            labelnames=("event",),
        )
        self._m_active = metrics.gauge(
            "repro_active_version",
            "Active lineage version per (scenario, model).",
            labelnames=("scenario", "model"),
        )
        # Detectors start watching *now*: created eagerly so the very
        # first feedback batch counts toward the reference window (a
        # lazy detector would snapshot after that batch and lose it).
        for model in self.watch_models:
            self.detector(model)

    # -- addressing ------------------------------------------------------

    def active_version(self, model: str) -> int:
        """The journal's active pointer for ``model`` (default 1)."""
        return self.journal.active_version(model)

    def active_ref(self, model: str) -> ModelRef:
        """The :class:`ModelRef` currently serving live traffic."""
        return ModelRef(
            self.scenario.dataset_digest, model, self.active_version(model)
        )

    def candidate_version(self, model: str) -> int | None:
        """The registered version currently shadow-evaluating, if any."""
        return self.journal.candidate_version(model)

    def detector(self, model: str) -> DriftDetector:
        """The (lazily created) drift detector for one watched model."""
        with self._lock:
            detector = self._detectors.get(model)
            if detector is None:
                detector = DriftDetector(
                    self.scenario_label, model, metrics=self.metrics,
                    **self._drift_kwargs,
                )
                self._detectors[model] = detector
            return detector

    # -- feedback ingest -------------------------------------------------

    def _ensure_learner(self):
        from repro.ml import OnlinePowerPredictor

        with self._lock:
            if self._learner is None:
                if self.seed_learner_from_active:
                    active = self.active_version("online")
                    servable = self.registry.get(self.scenario, "online", active)
                    self._learner = servable.predictor.copy()
                    self._learner_seed_version = active
                else:
                    self._learner = OnlinePowerPredictor()
                    self._learner_seed_version = None
            return self._learner

    @staticmethod
    def _validate_feedback(records: Sequence[Mapping]) -> None:
        if not records:
            raise ServeError("feedback needs at least one record")
        for i, record in enumerate(records):
            missing = [f for f in FEEDBACK_FIELDS if f not in record]
            if missing:
                raise ServeError(f"feedback record {i} lacks fields {missing}")
            try:
                power = float(record["power_w"])
                int(record["nodes"])
                float(record["req_walltime_s"])
            except (TypeError, ValueError):
                raise ServeError(
                    f"feedback record {i}: nodes, req_walltime_s and "
                    "power_w must be numeric"
                ) from None
            if power <= 0:
                raise ServeError(f"feedback record {i}: power_w must be positive")

    def feedback(self, records: Sequence[Mapping]) -> dict[str, Any]:
        """Ingest observed outcomes: log, learn, and check for drift.

        Prequential and deterministic: each record is predicted *before*
        it is folded into the live online learner, in feed order, so the
        learner state after a feed is a pure function of the feed. The
        error and feature histograms drive the drift windows; completed
        windows are checked once per batch (never on the serving path).
        Returns ``{"accepted", "learner_jobs", "drift": [events...]}``.
        """
        self._validate_feedback(records)
        with trace_span("lifecycle.feedback", n_records=len(records)):
            with self._lock:
                learner = self._ensure_learner()
                lines: list[str] = []
                for record in records:
                    user = str(record["user"])
                    nodes = int(record["nodes"])
                    wall = int(float(record["req_walltime_s"]))
                    actual = float(record["power_w"])
                    predicted = learner.predict(user, nodes, wall)
                    error = (
                        abs(actual - predicted) / actual if predicted > 0 else 1.0
                    )
                    learner.observe(user, nodes, wall, actual)
                    self._m_error.observe(
                        error, scenario=self.scenario_label, model="online"
                    )
                    self._m_feature.observe(
                        nodes, scenario=self.scenario_label, feature="nodes"
                    )
                    self._m_feature.observe(
                        wall, scenario=self.scenario_label, feature="req_walltime_s"
                    )
                    lines.append(
                        json.dumps(
                            {
                                "user": user,
                                "nodes": nodes,
                                "req_walltime_s": wall,
                                "power_w": actual,
                            },
                            sort_keys=True,
                        )
                    )
                self._m_feedback.inc(len(records), scenario=self.scenario_label)
                self._score_watched_estimators(records)
                with self.feedback_path.open("a", encoding="utf-8") as fh:
                    fh.write("\n".join(lines) + "\n")
                    fh.flush()
                drift_events = self._check_drift()
                return {
                    "accepted": len(records),
                    "learner_jobs": learner.jobs_seen,
                    "drift": drift_events,
                }

    def _score_watched_estimators(self, records: Sequence[Mapping]) -> None:
        """Fold the active estimators' batch errors into the windows."""
        for model in self.watch_models:
            if model == "online":
                continue  # scored prequentially through the learner
            try:
                servable = self.registry.get(
                    self.scenario, model, self.active_version(model)
                )
                predictions = servable.predict_records(records)
            except Exception:  # noqa: BLE001 — scoring must not fail ingest
                continue
            for record, predicted in zip(records, predictions):
                actual = float(record["power_w"])
                error = (
                    abs(actual - float(predicted)) / actual if predicted > 0 else 1.0
                )
                self._m_error.observe(
                    error, scenario=self.scenario_label, model=model
                )

    def _check_drift(self) -> list[dict[str, Any]]:
        events = []
        for model in self.watch_models:
            fired = self.detector(model).check()
            if fired is None:
                continue
            record = self.journal.append(
                "drift",
                model,
                version=self.active_version(model),
                rules=fired["rules"],
                window=fired["window"],
                reference=fired["reference"],
            )
            self._m_events.inc(event="drift")
            _LOG.warning(
                "drift detected",
                scenario=self.scenario_label,
                model=model,
                rules=fired["rules"],
                window=fired["window"],
            )
            events.append(record)
        return events

    def drift_active(self, model: str) -> bool:
        """Is the drift gauge latched for ``model``?"""
        with self._lock:
            detector = self._detectors.get(model)
        return detector.latched if detector is not None else False

    def learner_digest(self) -> str:
        """SHA-256 of the live learner state (prequential determinism)."""
        return self._ensure_learner().state_digest()

    # -- candidates / promote / rollback ---------------------------------

    def create_candidate(
        self, model: str = "online", who: str = "", why: str = ""
    ) -> int:
        """Freeze a new immutable version and register it for shadowing.

        For ``online`` the candidate is a snapshot of the live
        feedback-updated learner; estimator models retrain from the
        frozen scenario dataset (deterministic). Returns the new
        version number; the journal records the artifact key.
        """
        self.registry.check_model_name(model)
        with self._lock:
            # Next free slot past both the journal's lineage AND any
            # artifact already on disk — a reset journal over a
            # persistent cache must not collide with old snapshots.
            stored = self.registry.versions(self.scenario, model)
            version = max(self.journal.max_version(model) + 1, max(stored) + 1, 2)
            extras: dict[str, Any] = {}
            if model == "online":
                learner = self._ensure_learner()
                servable = OnlineServable(learner.copy(), n_train=learner.jobs_seen)
                extras["state_digest"] = learner.state_digest()
            else:
                servable = self.registry.train(self.scenario, model)
            disk_key = self.registry.put(
                self.scenario, model, servable, version,
                meta={"who": who, "why": why},
            )
            record = self.journal.append(
                "register",
                model,
                version=version,
                trained_at_key=disk_key,
                who=who,
                why=why,
                n_train=servable.n_train,
                **extras,
            )
            self._m_events.inc(event="register")
            _LOG.info(
                "candidate registered",
                scenario=self.scenario_label,
                model=model,
                version=version,
                seq=record["seq"],
            )
            return version

    def promote(
        self, model: str, version: int, who: str = "", why: str = ""
    ) -> dict[str, Any]:
        """Flip the active pointer to ``version``; record the evidence.

        The shadow-evaluation report at promote time rides in the
        journal event, so the audit trail answers "why was this version
        trusted?" as well as who/when. Resets the drift detector (the
        new version starts a fresh reference window).
        """
        self.registry.check_model_name(model)
        with self._lock:
            current = self.active_version(model)
            if version == current:
                raise ServeError(
                    f"model {model!r} version {version} is already active"
                )
            if not self.registry.has_version(self.scenario, model, version):
                raise ServeError(
                    f"model {model!r} version {version} has no stored "
                    "artifact; create_candidate first"
                )
            record = self.journal.append(
                "promote",
                model,
                version=version,
                from_version=current,
                who=who,
                why=why,
                evidence=self.shadow_report(model),
            )
            self._finish_flip(model, version)
            self._m_events.inc(event="promote")
            _LOG.info(
                "promoted", scenario=self.scenario_label, model=model,
                version=version, from_version=current,
            )
            return record

    def rollback(
        self,
        model: str,
        to_version: int | None = None,
        who: str = "",
        why: str = "",
    ) -> dict[str, Any]:
        """Restore a previous version (default: the pre-promote active).

        Because versions are immutable artifacts, serving after a
        rollback is *bit-identical* to serving before the promote. The
        rolled-back-from version is retired: it stops being a shadow
        candidate until re-registered.
        """
        self.registry.check_model_name(model)
        with self._lock:
            current = self.active_version(model)
            target = (
                int(to_version)
                if to_version is not None
                else self.journal.previous_active(model)
            )
            if target == current:
                raise ServeError(
                    f"model {model!r} is already at version {target}"
                )
            if not self.registry.has_version(self.scenario, model, target):
                raise ServeError(
                    f"model {model!r} version {target} has no stored artifact"
                )
            record = self.journal.append(
                "rollback",
                model,
                version=target,
                from_version=current,
                who=who,
                why=why,
            )
            self._finish_flip(model, target)
            if model == "online":
                # Re-seed the live learner so future feedback continues
                # from the restored state, not the rejected one.
                servable = self.registry.get(self.scenario, model, target)
                self._learner = servable.predictor.copy()
                self._learner_seed_version = target
            self._m_events.inc(event="rollback")
            _LOG.warning(
                "rolled back", scenario=self.scenario_label, model=model,
                version=target, from_version=current,
            )
            return record

    def _finish_flip(self, model: str, version: int) -> None:
        self._m_active.set(version, scenario=self.scenario_label, model=model)
        with self._lock:
            detector = self._detectors.get(model)
        if detector is not None:
            detector.reset()

    # -- shadow accounting -----------------------------------------------

    def record_shadow(self, model: str, live_value: float, future) -> None:
        """Done-callback folding one mirrored prediction into the stats.

        Runs on the candidate batcher's worker thread — never on the
        live request path. Failures count as drops; they never raise.
        """
        try:
            candidate_value = float(future.result())
        except BaseException:  # noqa: BLE001 — shadow loss is non-fatal
            self._m_shadow_drop.inc(scenario=self.scenario_label, model=model)
            return
        base = abs(live_value)
        diff = abs(candidate_value - live_value) / base if base > 0 else 0.0
        self._m_shadow.observe(diff, scenario=self.scenario_label, model=model)
        self._m_shadow_n.inc(scenario=self.scenario_label, model=model)

    def count_shadow_drop(self, model: str) -> None:
        """Count a mirror that could not even be submitted (full queue)."""
        self._m_shadow_drop.inc(scenario=self.scenario_label, model=model)

    def shadow_report(self, model: str) -> dict[str, Any] | None:
        """Paired live/candidate evidence accumulated so far, or None."""
        labels = {"scenario": self.scenario_label, "model": model}
        n = self._m_shadow.count(**labels)
        if n == 0:
            return None
        return {
            "candidate": self.candidate_version(model),
            "n": int(n),
            "dropped": int(self._m_shadow_drop.value(**labels)),
            "mean_abs_diff": round(self._m_shadow.mean(**labels), 6),
            "p50_abs_diff": round(self._m_shadow.quantile(0.5, **labels), 6),
            "p99_abs_diff": round(self._m_shadow.quantile(0.99, **labels), 6),
        }

    # -- inspection ------------------------------------------------------

    def lineage(self) -> list[dict[str, Any]]:
        """Per-model lineage rows (the ``/v1/models`` payload core)."""
        rows = []
        for model in SERVE_MODELS:
            active = self.active_version(model)
            registered = self.journal.registered_versions(model)
            trained_at_key = registered.get(active)
            if trained_at_key is None and active == 1:
                trained_at_key = self.registry.model_key(self.scenario, model, 1)
            candidate = self.candidate_version(model)
            rows.append(
                {
                    "model": model,
                    "active": active,
                    "versions": sorted({1, active, *registered}),
                    "candidate": candidate,
                    "trained_at_key": trained_at_key,
                    "shadow": self.shadow_report(model),
                    "drift": self.drift_active(model),
                }
            )
        return rows

    def summary(self) -> dict[str, Any]:
        """Structured manager state (``stats()``, smoke harness)."""
        learner = self._learner
        return {
            "dir": str(self.dir),
            "journal_events": len(self.journal.history()),
            "journal_damaged_lines": self.journal.damaged_lines,
            "learner_jobs": learner.jobs_seen if learner is not None else 0,
            "watch_models": list(self.watch_models),
            "active": {
                model: self.active_version(model) for model in SERVE_MODELS
            },
        }

    def history(self, model: str | None = None) -> list[dict]:
        """The audit trail (journal events), oldest first."""
        return self.journal.history(model)


def replay_feedback(
    lifecycle: ModelLifecycle,
    jobs,
    limit: int | None = None,
    batch: int = 256,
) -> dict[str, Any]:
    """Feed a job table's completed jobs to the lifecycle in submit order.

    The offline replay driver: sorts ``jobs`` (a
    :class:`~repro.frames.Table` with the dataset's job columns) by
    ``submit_s`` and streams them through
    :meth:`ModelLifecycle.feedback` in batches — exactly what a live
    scheduler hook would send as jobs complete. Deterministic: the same
    table and ``limit`` produce a bit-identical learner state.
    Returns ``{"replayed", "learner_jobs", "drift_events"}``.
    """
    if batch < 1:
        raise ValidationError("replay batch must be >= 1")
    required = {"user", "nodes", "req_walltime_s", "submit_s", "pernode_power_w"}
    missing = required - set(jobs.column_names)
    if missing:
        raise ValidationError(f"job table lacks columns {sorted(missing)}")
    ordered = jobs.sort_by("submit_s")
    n = len(ordered) if limit is None else min(int(limit), len(ordered))
    users = ordered["user"]
    nodes = ordered["nodes"]
    walls = ordered["req_walltime_s"]
    power = ordered["pernode_power_w"].astype(float)
    drift_events: list[dict] = []
    done = 0
    while done < n:
        stop = min(done + batch, n)
        records = [
            {
                "user": str(users[i]),
                "nodes": int(nodes[i]),
                "req_walltime_s": int(walls[i]),
                "power_w": float(power[i]),
            }
            for i in range(done, stop)
        ]
        outcome = lifecycle.feedback(records)
        drift_events.extend(outcome["drift"])
        done = stop
    return {
        "replayed": done,
        "learner_jobs": lifecycle._ensure_learner().jobs_seen,
        "drift_events": drift_events,
    }
