"""Micro-batching executor: coalesce concurrent requests into one predict.

Requests arrive one record at a time from N client threads; a single
worker thread drains them into batches and issues *one* vectorized
``predict_fn(records)`` call per batch. Because every model's per-row
prediction is independent of its batch-mates (tree walks, KNN distances
against the frozen training set, FLDA projections), a batched prediction
is bit-identical to the prediction the same record would get alone —
batching is purely a throughput lever.

Batch formation is bounded by two knobs:

* ``max_batch`` — hard cap on records per vectorized call;
* ``max_wait_s`` — how long the worker holds an open batch waiting for
  more requests. ``0`` still coalesces whatever is already queued (the
  backlog-drain behavior that gives adaptive batching under load) but
  never waits.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ServeError

__all__ = ["BatchStats", "MicroBatcher"]

_SENTINEL = object()


class BatchStats:
    """Thread-safe counters describing how well batching is working."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.n_requests = 0
        self.n_batches = 0
        self.max_batch_seen = 0

    def record(self, batch_size: int) -> None:
        """Fold one executed batch into the counters."""
        with self._lock:
            self.n_requests += batch_size
            self.n_batches += 1
            if batch_size > self.max_batch_seen:
                self.max_batch_seen = batch_size

    def snapshot(self) -> dict[str, Any]:
        """Plain-JSON view (``/models`` endpoint, bench harness)."""
        with self._lock:
            mean = self.n_requests / self.n_batches if self.n_batches else 0.0
            return {
                "n_requests": self.n_requests,
                "n_batches": self.n_batches,
                "mean_batch": round(mean, 3),
                "max_batch": self.max_batch_seen,
            }


class MicroBatcher:
    """One worker thread turning single-record submissions into batches.

    Parameters
    ----------
    predict_fn:
        ``records -> sequence of floats``, called on the worker thread
        with 1..max_batch records.
    max_batch:
        Upper bound on records per ``predict_fn`` call.
    max_wait_s:
        How long to hold an open batch for stragglers once the first
        record arrived.
    max_queue:
        Bound on queued-but-unbatched records; a full queue fails the
        submit with :class:`~repro.errors.ServeError` instead of letting
        latency grow without bound.
    """

    def __init__(
        self,
        predict_fn: Callable[[Sequence[Mapping]], Sequence[float]],
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        max_queue: int = 4096,
        name: str = "batcher",
    ) -> None:
        if max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ServeError("max_wait_s must be >= 0")
        self._predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.name = name
        self.stats = BatchStats()
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-serve-{name}", daemon=True
        )
        self._thread.start()

    # -- client side -----------------------------------------------------

    def submit(self, record: Mapping) -> "Future[float]":
        """Enqueue one record; returns a future resolving to its prediction."""
        if self._closed:
            raise ServeError(f"batcher {self.name!r} is closed")
        future: Future[float] = Future()
        try:
            self._queue.put_nowait((record, future))
        except queue.Full:
            raise ServeError(
                f"batcher {self.name!r} queue full "
                f"({self._queue.maxsize} pending requests)"
            ) from None
        return future

    def predict(self, record: Mapping, timeout: float | None = 30.0) -> float:
        """Blocking single-record convenience around :meth:`submit`."""
        return self.submit(record).result(timeout=timeout)

    def predict_many(
        self, records: Sequence[Mapping], timeout: float | None = 30.0
    ) -> list[float]:
        """Submit every record, then gather results in request order."""
        futures = [self.submit(r) for r in records]
        return [f.result(timeout=timeout) for f in futures]

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker; pending requests fail with ServeError."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SENTINEL)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side -----------------------------------------------------

    def _gather(self) -> list[tuple[Mapping, Future]] | None:
        """Block for the first record, then fill the batch until the
        deadline passes or ``max_batch`` is reached. None means shutdown."""
        item = self._queue.get()
        if item is _SENTINEL:
            return None
        batch = [item]
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                item = (
                    self._queue.get(timeout=remaining)
                    if remaining > 0
                    else self._queue.get_nowait()
                )
            except queue.Empty:
                break
            if item is _SENTINEL:
                # Re-post so the outer loop sees the shutdown after this
                # batch completes.
                self._queue.put(_SENTINEL)
                break
            batch.append(item)
        return batch

    def _loop(self) -> None:
        while True:
            batch = self._gather()
            if batch is None:
                break
            records = [record for record, _ in batch]
            try:
                predictions = self._predict_fn(records)
            except BaseException as exc:  # propagate to every waiter
                for _, future in batch:
                    future.set_exception(exc)
                continue
            if len(predictions) != len(batch):
                exc = ServeError(
                    f"predict_fn returned {len(predictions)} results "
                    f"for a batch of {len(batch)}"
                )
                for _, future in batch:
                    future.set_exception(exc)
                continue
            for (_, future), value in zip(batch, predictions):
                future.set_result(float(value))
            self.stats.record(len(batch))
        # Fail anything still queued after shutdown.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SENTINEL:
                item[1].set_exception(ServeError(f"batcher {self.name!r} closed"))
