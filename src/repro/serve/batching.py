"""Micro-batching executor: coalesce concurrent requests into one predict.

Requests arrive one record at a time from N client threads; a single
worker thread drains them into batches and issues *one* vectorized
``predict_fn(records)`` call per batch. Because every model's per-row
prediction is independent of its batch-mates (tree walks, KNN distances
against the frozen training set, FLDA projections), a batched prediction
is bit-identical to the prediction the same record would get alone —
batching is purely a throughput lever.

Batch formation is bounded by two knobs:

* ``max_batch`` — hard cap on records per vectorized call;
* ``max_wait_s`` — how long the worker holds an open batch waiting for
  more requests. ``0`` still coalesces whatever is already queued (the
  backlog-drain behavior that gives adaptive batching under load) but
  never waits.

The queue is a plain deque guarded by one :class:`threading.Condition`:
an idle worker sleeps in ``Condition.wait`` until a submit notifies it —
no polling loop, no wakeups while the queue is empty — and the
straggler wait inside an open batch is a bounded ``wait(timeout)``
against the batch deadline rather than a sleep/check spin. Going
through one lock for both the queue and the closed flag also removes a
lock acquisition per request relative to the old ``queue.Queue``-based
implementation.

The worker is *supervised*: if the loop machinery itself dies (a bug, or
the ``batcher.crash`` fault-injection point), the supervisor re-queues
the in-flight batch and restarts the loop, so no accepted request is
ever lost to a worker crash (``predict_fn`` exceptions are not crashes —
they propagate to exactly the waiters of that batch, as before). On
:meth:`~MicroBatcher.close`, anything still queued fails promptly with
:class:`~repro.errors.ServiceClosed` instead of hanging until the client
timeout.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ServeError, ServiceClosed
from repro.faults.injector import maybe_fire
from repro.obs.metrics import REGISTRY

__all__ = ["BatchStats", "MicroBatcher"]

_SENTINEL = object()

# Batching observability (docs/OBSERVABILITY.md): batch-size
# distribution, batch/request throughput, live queue depth per batcher,
# and supervised worker restarts.
_BATCH_SIZE = REGISTRY.histogram(
    "repro_batch_size",
    "Records per executed micro-batch.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)
_BATCHES = REGISTRY.counter(
    "repro_batches_total",
    "Micro-batches executed (vectorized predict_fn calls).",
)
_BATCH_REQUESTS = REGISTRY.counter(
    "repro_batch_requests_total",
    "Records answered through micro-batches.",
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_batch_queue_depth",
    "Queued-but-unbatched records, per batcher.",
    labelnames=("batcher",),
)
_CRASHES = REGISTRY.counter(
    "repro_batcher_crashes_total",
    "Supervised batcher worker-loop restarts, per batcher.",
    labelnames=("batcher",),
)


class BatchStats:
    """Thread-safe counters describing how well batching is working."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.n_requests = 0
        self.n_batches = 0
        self.max_batch_seen = 0

    def record(self, batch_size: int) -> None:
        """Fold one executed batch into the counters."""
        with self._lock:
            self.n_requests += batch_size
            self.n_batches += 1
            if batch_size > self.max_batch_seen:
                self.max_batch_seen = batch_size

    def snapshot(self) -> dict[str, Any]:
        """Plain-JSON view (``/models`` endpoint, bench harness)."""
        with self._lock:
            mean = self.n_requests / self.n_batches if self.n_batches else 0.0
            return {
                "n_requests": self.n_requests,
                "n_batches": self.n_batches,
                "mean_batch": round(mean, 3),
                "max_batch": self.max_batch_seen,
            }


class MicroBatcher:
    """One supervised worker thread turning submissions into batches.

    Parameters
    ----------
    predict_fn:
        ``records -> sequence of floats``, called on the worker thread
        with 1..max_batch records.
    max_batch:
        Upper bound on records per ``predict_fn`` call.
    max_wait_s:
        How long to hold an open batch for stragglers once the first
        record arrived.
    max_queue:
        Bound on queued-but-unbatched records; a full queue fails the
        submit with :class:`~repro.errors.ServeError` instead of letting
        latency grow without bound.
    """

    def __init__(
        self,
        predict_fn: Callable[[Sequence[Mapping]], Sequence[float]],
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        max_queue: int = 4096,
        name: str = "batcher",
    ) -> None:
        if max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ServeError("max_wait_s must be >= 0")
        self._predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self.name = name
        self.stats = BatchStats()
        self.crashes = 0  # supervised worker-loop restarts
        # One condition guards the deque AND the closed flag, so a
        # future can never slip into the queue after the shutdown drain
        # already ran, and an idle worker sleeps in wait() instead of
        # polling.
        self._cond = threading.Condition()
        self._items: deque = deque()
        self._closed = False
        # The batch the worker currently holds outside the queue; the
        # supervisor re-queues it when the loop crashes mid-batch.
        self._inflight: list[tuple[Mapping, Future]] = []
        self._thread = threading.Thread(
            target=self._run, name=f"repro-serve-{name}", daemon=True
        )
        self._thread.start()

    # -- client side -----------------------------------------------------

    def submit(self, record: Mapping) -> "Future[float]":
        """Enqueue one record; returns a future resolving to its prediction."""
        future: Future[float] = Future()
        with self._cond:
            if self._closed:
                raise ServiceClosed(f"batcher {self.name!r} is closed")
            if len(self._items) >= self.max_queue:
                raise ServeError(
                    f"batcher {self.name!r} queue full "
                    f"({self.max_queue} pending requests)"
                )
            self._items.append((record, future))
            depth = len(self._items)
            self._cond.notify()
        _QUEUE_DEPTH.set(depth, batcher=self.name)
        return future

    def predict(self, record: Mapping, timeout: float | None = 30.0) -> float:
        """Blocking single-record convenience around :meth:`submit`."""
        return self.submit(record).result(timeout=timeout)

    def predict_many(
        self, records: Sequence[Mapping], timeout: float | None = 30.0
    ) -> list[float]:
        """Submit every record, then gather results in request order."""
        futures = [self.submit(r) for r in records]
        return [f.result(timeout=timeout) for f in futures]

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker; anything unserved fails with ServiceClosed.

        Safe against the submit race: once ``_closed`` is set under the
        condition's lock no new futures can enter the queue, and
        everything still queued after the worker exits (or the join
        times out) is failed promptly here instead of hanging until the
        client-side request timeout.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._items.append(_SENTINEL)
            self._cond.notify_all()
        self._thread.join(timeout=timeout)
        self._fail_pending()
        if self._thread.is_alive():
            # The worker is wedged inside predict_fn and the drain above
            # consumed its shutdown sentinel; re-post one so it still
            # exits cleanly once the in-flight call returns.
            with self._cond:
                self._items.append(_SENTINEL)
                self._cond.notify_all()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def alive(self) -> bool:
        """True while the supervised worker thread is running."""
        return self._thread.is_alive()

    @property
    def pending(self) -> int:
        """Requests queued but not yet picked up by the worker."""
        with self._cond:
            return sum(1 for item in self._items if item is not _SENTINEL)

    # -- worker side -----------------------------------------------------

    def _fail_pending(self) -> None:
        """Fail every still-queued future with ServiceClosed."""
        with self._cond:
            items, self._items = list(self._items), deque()
        for item in items:
            if item is not _SENTINEL:
                item[1].set_exception(
                    ServiceClosed(f"batcher {self.name!r} closed")
                )

    def _gather(self) -> list[tuple[Mapping, Future]] | None:
        """Sleep for the first record, then fill the batch until the
        deadline passes or ``max_batch`` is reached. None means shutdown.

        The first wait is unbounded (an idle worker costs nothing); the
        straggler waits are bounded by the remaining slice of
        ``max_wait_s``, re-checked after every wakeup, so the worker
        never busy-sleeps and never oversleeps the batch deadline.
        """
        with self._cond:
            while not self._items:
                self._cond.wait()
            item = self._items.popleft()
            if item is _SENTINEL:
                return None
            batch = [item]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch:
                if self._items:
                    item = self._items.popleft()
                    if item is _SENTINEL:
                        # Re-post so the outer loop sees the shutdown
                        # after this batch completes.
                        self._items.appendleft(_SENTINEL)
                        break
                    batch.append(item)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            return batch

    def _requeue(self, inflight: list[tuple[Mapping, Future]]) -> None:
        """Put a crashed loop's in-flight batch back on the queue."""
        overflow: list[Future] = []
        with self._cond:
            for item in inflight:
                # Re-queue rather than fail: every record's result is
                # independent, so a retried prediction is bit-identical
                # to the one the crashed loop would have produced.
                if len(self._items) >= self.max_queue:
                    overflow.append(item[1])
                else:
                    self._items.append(item)
            self._cond.notify_all()
        for future in overflow:
            future.set_exception(
                ServeError(f"batcher {self.name!r} crashed with a full queue")
            )

    def _run(self) -> None:
        """Supervisor: restart a crashed loop without losing requests."""
        while True:
            try:
                self._loop()
                break  # clean sentinel shutdown
            except BaseException:
                self.crashes += 1
                _CRASHES.inc(batcher=self.name)
                inflight, self._inflight = self._inflight, []
                self._requeue(inflight)
                if self._closed:
                    break
        self._fail_pending()

    def _loop(self) -> None:
        while True:
            batch = self._gather()
            with self._cond:
                depth = len(self._items)
            _QUEUE_DEPTH.set(depth, batcher=self.name)
            if batch is None:
                return
            self._inflight = batch
            if maybe_fire("batcher.crash"):
                raise RuntimeError(
                    f"injected fault: batcher.crash in {self.name!r}"
                )
            maybe_fire("batcher.latency")  # injector sleeps when it fires
            records = [record for record, _ in batch]
            try:
                # Coerce inside the try so a misbehaving predict_fn (wrong
                # type, unsized result) fails this batch's waiters instead
                # of crash-looping the supervisor.
                values = [float(v) for v in self._predict_fn(records)]
                if len(values) != len(batch):
                    raise ServeError(
                        f"predict_fn returned {len(values)} results "
                        f"for a batch of {len(batch)}"
                    )
            except BaseException as exc:  # propagate to every waiter
                self._inflight = []
                for _, future in batch:
                    future.set_exception(exc)
                continue
            self._inflight = []
            for (_, future), value in zip(batch, values):
                future.set_result(value)
            self.stats.record(len(batch))
            _BATCH_SIZE.observe(len(batch))
            _BATCHES.inc()
            _BATCH_REQUESTS.inc(len(batch))
