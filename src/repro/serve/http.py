"""Stdlib HTTP/JSON front-end for the prediction service.

A :class:`~http.server.ThreadingHTTPServer` whose handler threads feed
the shared :class:`~repro.serve.service.PredictionService` — so N
concurrent HTTP clients become N producer threads whose single-job
requests coalesce in the micro-batcher. No third-party web framework.

Endpoints (see docs/SERVICE.md for payloads):

* ``GET /healthz`` — liveness + request counters + latency snapshot;
* ``GET /models``  — warm models, registry counters, batcher stats;
* ``GET /metrics`` — Prometheus text exposition of the process-wide
  :data:`repro.obs.metrics.REGISTRY` (docs/OBSERVABILITY.md);
* ``POST /predict`` — ``{"model": "BDT", "jobs": [{"user": ...,
  "nodes": ..., "req_walltime_s": ...}, ...]}`` (or a single ``"job"``)
  with an optional ``"scenario"`` overlay; responds with predictions in
  request order plus per-request latency.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Any, Mapping

from repro.errors import ReproError, ScenarioError, ServeError, ValidationError
from repro.faults.injector import active_injector
from repro.obs.metrics import REGISTRY
from repro.serve.service import PredictionService

__all__ = ["PredictionServer", "create_server"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Request errors that map to HTTP 400 (caller's fault, not the server's).
_BAD_REQUEST_ERRORS = (ServeError, ScenarioError, ValidationError)

#: The Prometheus text exposition content type (/metrics responses).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_KNOWN_ENDPOINTS = frozenset({"/healthz", "/models", "/metrics", "/predict"})

_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests received, by endpoint (unknown paths count as 'other').",
    labelnames=("endpoint",),
)
_HTTP_RESPONSES = REGISTRY.counter(
    "repro_http_responses_total",
    "HTTP responses sent, by endpoint and status code.",
    labelnames=("endpoint", "status"),
)


def _endpoint_label(path: str) -> str:
    """Bounded-cardinality endpoint label for the HTTP counters."""
    return path if path in _KNOWN_ENDPOINTS else "other"


class _Handler(BaseHTTPRequestHandler):
    """Routes the three endpoints onto the shared service."""

    server: "PredictionServer"
    protocol_version = "HTTP/1.1"

    # -- helpers ---------------------------------------------------------

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        _HTTP_RESPONSES.inc(endpoint=_endpoint_label(self.path), status=status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServeError("request body required")
        if length > _MAX_BODY_BYTES:
            raise ServeError(f"request body over {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"invalid JSON body: {exc}") from None

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        _HTTP_REQUESTS.inc(endpoint=_endpoint_label(self.path))
        service = self.server.service
        if self.path == "/metrics":
            self._send_body(
                200, REGISTRY.render().encode("utf-8"), METRICS_CONTENT_TYPE
            )
        elif self.path == "/healthz":
            snap = service.latency.snapshot()
            payload = {
                **service.health(),
                "requests": snap["count"],
                "latency": snap,
            }
            injector = active_injector()
            if injector is not None:
                payload["faults"] = injector.snapshot()
            self._send_json(200, payload)
        elif self.path == "/models":
            self._send_json(200, service.stats())
        else:
            self._send_error_json(404, f"no such endpoint {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802
        _HTTP_REQUESTS.inc(endpoint=_endpoint_label(self.path))
        if self.path != "/predict":
            self._send_error_json(404, f"no such endpoint {self.path!r}")
            return
        t0 = perf_counter()
        try:
            payload = self._read_json()
            if not isinstance(payload, Mapping):
                raise ServeError("request body must be a JSON object")
            jobs = payload.get("jobs")
            if jobs is None:
                job = payload.get("job")
                jobs = [job] if job is not None else None
            if not jobs or not isinstance(jobs, list):
                raise ServeError('request needs "jobs": [...] or "job": {...}')
            model = payload.get("model", "BDT")
            scenario = payload.get("scenario")
            detail = self.server.service.predict_detailed(
                jobs, model=model, scenario=scenario
            )
        except _BAD_REQUEST_ERRORS as exc:
            self._send_error_json(400, str(exc))
            return
        except ReproError as exc:
            self._send_error_json(500, str(exc))
            return
        except Exception as exc:  # a handler thread must never die silently
            self._send_error_json(500, f"internal error: {exc}")
            return
        spec = self.server.service.resolve_scenario(scenario)
        self._send_json(
            200,
            {
                "model": model,
                "served_by": detail["served_by"],
                "degraded": detail["degraded"],
                "dataset_digest": spec.dataset_digest,
                # repr-based JSON floats round-trip exactly: the decoded
                # predictions are bit-identical to the in-process ones.
                "predictions": [float(p) for p in detail["predictions"]],
                "n": len(detail["predictions"]),
                "latency_ms": round((perf_counter() - t0) * 1e3, 3),
            },
        )


class PredictionServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`PredictionService`.

    ``port=0`` binds an ephemeral port (tests, the bench harness);
    :attr:`address` reports the resolved ``host:port``. Use as a context
    manager, or call :meth:`shutdown` then :meth:`server_close`.
    """

    daemon_threads = True

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self._serving = False
        super().__init__((host, port), _Handler)

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Blocking serve loop (``close`` from another thread stops it)."""
        self._serving = True
        super().serve_forever(poll_interval=poll_interval)

    @property
    def port(self) -> int:
        """The bound TCP port (resolved, even when constructed with 0)."""
        return self.server_address[1]

    @property
    def address(self) -> str:
        """``host:port`` string of the bound socket."""
        return f"{self.server_address[0]}:{self.port}"

    def serve_in_background(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread and return it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop serving, close the socket, and shut the service down."""
        if self._serving:
            self.shutdown()
            self._serving = False
        self.server_close()
        self.service.close()

    def __exit__(self, *exc_info) -> None:
        self.close()


def create_server(
    scenario="emmy",
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir=None,
    registry=None,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    warm: tuple[str, ...] = (),
    verbose: bool = False,
    **scenario_kwargs,
) -> PredictionServer:
    """Build a ready-to-serve :class:`PredictionServer` for one scenario.

    ``scenario``/``scenario_kwargs`` go through the
    :func:`repro.spec.as_scenario` shim, so both a
    :class:`~repro.spec.ScenarioSpec` and the legacy keyword style work.
    ``warm`` names models to train/load before the socket starts
    answering (e.g. ``("BDT",)``). The caller owns the lifecycle: call
    ``serve_forever`` (or :meth:`PredictionServer.serve_in_background`)
    and :meth:`PredictionServer.close`.
    """
    from repro.spec import as_scenario

    service = PredictionService(
        as_scenario(scenario, **scenario_kwargs),
        registry=registry,
        cache_dir=cache_dir,
        max_batch=max_batch,
        max_wait_s=max_wait_ms / 1e3,
    )
    server = PredictionServer(service, host=host, port=port, verbose=verbose)
    if warm:
        service.warm(warm)
    return server
