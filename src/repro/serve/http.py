"""Stdlib HTTP/JSON front-end for the prediction service.

A :class:`~http.server.ThreadingHTTPServer` whose handler threads feed
the shared :class:`~repro.serve.service.PredictionService` — so N
concurrent HTTP clients become N producer threads whose single-job
requests coalesce in the micro-batcher. No third-party web framework.
With ``reuse_port=True`` several such servers (one per worker process)
bind the same port and the kernel shards accepted connections across
them — see :mod:`repro.serve.forking`.

The HTTP surface is **versioned under** ``/v1/`` (see docs/API.md and
docs/SERVICE.md for payloads):

* ``GET /v1/healthz`` — liveness + request counters + latency snapshot
  (+ ``worker`` id under the forked front-end);
* ``GET /v1/models``  — per-model **lineage**: active version,
  registered versions, shadow candidate + paired-eval evidence, drift
  latch (docs/LIFECYCLE.md);
* ``GET /v1/metrics`` — Prometheus text exposition; process-local by
  default, fleet-aggregated across workers when the server was given a
  ``metrics_dir`` of peer snapshots (docs/OBSERVABILITY.md);
* ``POST /v1/predict`` — ``{"model": "BDT", "jobs": [{"user": ...,
  "nodes": ..., "req_walltime_s": ...}, ...]}`` (or a single ``"job"``)
  with optional ``"scenario"`` overlay and ``"version"`` pin; responds
  with predictions in request order plus per-request latency;
* ``POST /v1/predict/bulk`` — persistent-connection NDJSON bulk mode:
  one job object per body line, one bare-float prediction per response
  line, answered by one vectorized predict (no micro-batcher);
* ``POST /v1/feedback`` — observed job outcomes
  (``{"jobs": [{..., "power_w": ...}]}``) into the lifecycle layer;
* ``POST /v1/admin/promote`` / ``POST /v1/admin/rollback`` — flip the
  active version (journaled, with who/why + shadow evidence);
* ``GET /v1/admin/history`` — the audit journal.

The pre-``/v1`` paths (``/healthz``, ``/models``, ``/metrics``,
``/predict``, ``/predict/bulk``) still answer — they are **deprecation
shims**: same handlers, plus a ``Deprecation: true`` header, a ``Link:
…; rel="successor-version"`` pointer, and a
``repro_http_deprecated_requests_total`` count. Legacy ``/models``
keeps its original service-stats payload; the lineage view is
``/v1/models`` only.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from typing import Any, Mapping
from urllib.parse import parse_qs

from repro.errors import ReproError, ScenarioError, ServeError, ValidationError
from repro.faults.injector import active_injector
from repro.obs.metrics import REGISTRY, render_merged
from repro.serve.registry import ModelRegistry
from repro.serve.service import PredictionService

__all__ = ["PredictionServer", "create_server"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Request errors that map to HTTP 400 (caller's fault, not the server's).
_BAD_REQUEST_ERRORS = (ServeError, ScenarioError, ValidationError)

#: The Prometheus text exposition content type (/metrics responses).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: The NDJSON content type the bulk endpoint speaks, both directions.
NDJSON_CONTENT_TYPE = "application/x-ndjson"

#: Legacy path → canonical ``/v1`` successor (the deprecation shims).
_LEGACY_PATHS = {
    "/healthz": "/v1/healthz",
    "/models": "/v1/models",
    "/metrics": "/v1/metrics",
    "/predict": "/v1/predict",
    "/predict/bulk": "/v1/predict/bulk",
}

_KNOWN_ENDPOINTS = frozenset(_LEGACY_PATHS) | frozenset(
    {
        "/v1/healthz",
        "/v1/models",
        "/v1/metrics",
        "/v1/predict",
        "/v1/predict/bulk",
        "/v1/feedback",
        "/v1/admin/promote",
        "/v1/admin/rollback",
        "/v1/admin/history",
    }
)

_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests received, by endpoint (unknown paths count as 'other').",
    labelnames=("endpoint",),
)
_HTTP_RESPONSES = REGISTRY.counter(
    "repro_http_responses_total",
    "HTTP responses sent, by endpoint and status code.",
    labelnames=("endpoint", "status"),
)
_HTTP_DEPRECATED = REGISTRY.counter(
    "repro_http_deprecated_requests_total",
    "Requests answered through a pre-/v1 deprecation-shim path.",
    labelnames=("endpoint",),
)


def _endpoint_label(path: str) -> str:
    """Bounded-cardinality endpoint label for the HTTP counters."""
    path = path.partition("?")[0]
    return path if path in _KNOWN_ENDPOINTS else "other"


def _float_repr(value: float) -> str:
    """Shortest round-tripping decimal form of one prediction.

    ``repr`` floats parse back bit-identically (and are valid JSON for
    finite values), so NDJSON response lines carry exact predictions
    without the dict/format overhead of ``json.dumps``.
    """
    return repr(float(value))


class _Handler(BaseHTTPRequestHandler):
    """Routes the versioned endpoints (and their shims) onto the service."""

    server: "PredictionServer"
    protocol_version = "HTTP/1.1"

    #: Set per request when the legacy path was used: the successor URL
    #: advertised in the deprecation headers.
    _successor: str | None = None

    # -- helpers ---------------------------------------------------------

    def _route(self, path: str) -> str:
        """Canonical ``/v1`` path for a request path; flags legacy use."""
        self._successor = None
        successor = _LEGACY_PATHS.get(path)
        if successor is not None:
            self._successor = successor
            _HTTP_DEPRECATED.inc(endpoint=path)
            return successor
        return path

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        _HTTP_RESPONSES.inc(endpoint=_endpoint_label(self.path), status=status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._successor is not None:
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f'<{self._successor}>; rel="successor-version"'
            )
        if self.server.worker_id is not None:
            self.send_header("X-Worker", str(self.server.worker_id))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServeError("request body required")
        if length > _MAX_BODY_BYTES:
            raise ServeError(f"request body over {_MAX_BODY_BYTES} bytes")
        return self.rfile.read(length)

    def _read_json(self) -> Any:
        try:
            return json.loads(self._read_body())
        except json.JSONDecodeError as exc:
            raise ServeError(f"invalid JSON body: {exc}") from None

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        raw_path, _, query = self.path.partition("?")
        _HTTP_REQUESTS.inc(endpoint=_endpoint_label(raw_path))
        path = self._route(raw_path)
        service = self.server.service
        if path == "/v1/metrics":
            self._send_body(
                200, self.server.render_metrics().encode("utf-8"),
                METRICS_CONTENT_TYPE,
            )
        elif path == "/v1/healthz":
            snap = service.latency.snapshot()
            payload = {
                **service.health(),
                "requests": snap["count"],
                "latency": snap,
            }
            if self.server.worker_id is not None:
                payload["worker"] = self.server.worker_id
            injector = active_injector()
            if injector is not None:
                payload["faults"] = injector.snapshot()
            self._send_json(200, payload)
        elif path == "/v1/models":
            # The legacy path keeps its original service-stats payload;
            # the canonical path answers with the lineage view.
            if raw_path == "/models":
                payload = service.stats()
            else:
                payload = service.lineage_stats()
            if self.server.worker_id is not None:
                payload["worker"] = self.server.worker_id
            self._send_json(200, payload)
        elif path == "/v1/admin/history":
            lifecycle = service.lifecycle
            if lifecycle is None:
                self._send_error_json(400, "lifecycle disabled on this server")
                return
            params = parse_qs(query)
            model = params.get("model", [None])[0]
            try:
                events = lifecycle.history(model)
            except _BAD_REQUEST_ERRORS as exc:
                self._send_error_json(400, str(exc))
                return
            self._send_json(
                200,
                {
                    "events": events,
                    "journal": str(lifecycle.journal.path),
                    "damaged_lines": lifecycle.journal.damaged_lines,
                },
            )
        else:
            self._send_error_json(404, f"no such endpoint {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802
        raw_path, _, query = self.path.partition("?")
        _HTTP_REQUESTS.inc(endpoint=_endpoint_label(raw_path))
        path = self._route(raw_path)
        if path == "/v1/predict/bulk":
            self._post_bulk(query)
            return
        if path == "/v1/feedback":
            self._post_feedback()
            return
        if path in ("/v1/admin/promote", "/v1/admin/rollback"):
            self._post_admin(path.rsplit("/", 1)[1])
            return
        if path != "/v1/predict":
            self._send_error_json(404, f"no such endpoint {self.path!r}")
            return
        t0 = perf_counter()
        try:
            payload = self._read_json()
            if not isinstance(payload, Mapping):
                raise ServeError("request body must be a JSON object")
            jobs = payload.get("jobs")
            if jobs is None:
                job = payload.get("job")
                jobs = [job] if job is not None else None
            if not jobs or not isinstance(jobs, list):
                raise ServeError('request needs "jobs": [...] or "job": {...}')
            model = payload.get("model", "BDT")
            scenario = payload.get("scenario")
            version = payload.get("version")
            detail = self.server.service.predict_request(
                jobs, model=model, scenario=scenario, version=version
            )
        except _BAD_REQUEST_ERRORS as exc:
            self._send_error_json(400, str(exc))
            return
        except ReproError as exc:
            self._send_error_json(500, str(exc))
            return
        except Exception as exc:  # a handler thread must never die silently
            self._send_error_json(500, f"internal error: {exc}")
            return
        spec = self.server.service.resolve_scenario(scenario)
        self._send_json(
            200,
            {
                "model": model,
                "served_by": detail.served_by,
                "version": detail.version,
                "degraded": detail.degraded,
                "dataset_digest": spec.dataset_digest,
                # repr-based JSON floats round-trip exactly: the decoded
                # predictions are bit-identical to the in-process ones.
                "predictions": [float(p) for p in detail.predictions],
                "n": len(detail.predictions),
                "latency_ms": round((perf_counter() - t0) * 1e3, 3),
            },
        )

    def _post_feedback(self) -> None:
        """``POST /v1/feedback``: observed outcomes into the lifecycle."""
        try:
            payload = self._read_json()
            if not isinstance(payload, Mapping):
                raise ServeError("request body must be a JSON object")
            jobs = payload.get("jobs", payload.get("records"))
            if not jobs or not isinstance(jobs, list):
                raise ServeError('feedback needs "jobs": [...]')
            outcome = self.server.service.feedback(jobs)
        except _BAD_REQUEST_ERRORS as exc:
            self._send_error_json(400, str(exc))
            return
        except ReproError as exc:
            self._send_error_json(500, str(exc))
            return
        except Exception as exc:  # a handler thread must never die silently
            self._send_error_json(500, f"internal error: {exc}")
            return
        self._send_json(200, outcome)

    def _post_admin(self, verb: str) -> None:
        """``POST /v1/admin/promote|rollback``: journaled version flips."""
        lifecycle = self.server.service.lifecycle
        if lifecycle is None:
            self._send_error_json(400, "lifecycle disabled on this server")
            return
        try:
            payload = self._read_json()
            if not isinstance(payload, Mapping):
                raise ServeError("request body must be a JSON object")
            model = payload.get("model")
            if not isinstance(model, str):
                raise ServeError('admin request needs "model"')
            who = str(payload.get("who", "http"))
            why = str(payload.get("why", ""))
            if verb == "promote":
                version = payload.get("version")
                if not isinstance(version, int):
                    raise ServeError('promote needs an integer "version"')
                event = lifecycle.promote(model, version, who=who, why=why)
            else:
                to_version = payload.get("to_version")
                if to_version is not None and not isinstance(to_version, int):
                    raise ServeError('"to_version" must be an integer')
                event = lifecycle.rollback(model, to_version, who=who, why=why)
        except _BAD_REQUEST_ERRORS as exc:
            self._send_error_json(400, str(exc))
            return
        except ReproError as exc:
            self._send_error_json(500, str(exc))
            return
        except Exception as exc:  # a handler thread must never die silently
            self._send_error_json(500, f"internal error: {exc}")
            return
        self._send_json(200, {"event": event, "active": lifecycle.active_version(model)})

    def _post_bulk(self, query: str) -> None:
        """The NDJSON bulk mode: one job per body line, one float per
        response line.

        Model and scenario overlay travel in the query string
        (``/predict/bulk?model=BDT``) so the body stays a pure stream of
        job objects. The body is split once and each line is decoded
        straight from its bytes — no intermediate envelope dict, no
        per-record response objects — and the whole batch is answered by
        one vectorized :meth:`PredictionService.predict_bulk` call.
        Response lines are ``repr``-formatted floats (valid JSON), so
        decoded predictions are bit-identical to the in-process ones;
        batch-level metadata rides in ``X-Model`` / ``X-Served-By`` /
        ``X-Degraded`` headers.
        """
        try:
            params = parse_qs(query)
            model = params.get("model", ["BDT"])[0]
            scenario = None
            if "scenario" in params:
                scenario = json.loads(params["scenario"][0])
                if not isinstance(scenario, Mapping):
                    raise ServeError("scenario query param must be a JSON object")
            version = None
            if "version" in params:
                try:
                    version = int(params["version"][0])
                except ValueError:
                    raise ServeError(
                        "version query param must be an integer"
                    ) from None
            raw = self._read_body()
            records: list[Any] = []
            for lineno, line in enumerate(raw.split(b"\n"), start=1):
                if not line or line.isspace():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ServeError(
                        f"invalid NDJSON on line {lineno}: {exc}"
                    ) from None
                if not isinstance(record, Mapping):
                    raise ServeError(
                        f"line {lineno} must be a JSON job object"
                    )
                records.append(record)
            if not records:
                raise ServeError("bulk request body has no job lines")
            detail = self.server.service.predict_request(
                records, model=model, scenario=scenario, mode="bulk",
                version=version,
            )
        except _BAD_REQUEST_ERRORS as exc:
            self._send_error_json(400, str(exc))
            return
        except ReproError as exc:
            self._send_error_json(500, str(exc))
            return
        except Exception as exc:  # a handler thread must never die silently
            self._send_error_json(500, f"internal error: {exc}")
            return
        body = "\n".join(
            _float_repr(p) for p in detail.predictions
        ).encode("ascii") + b"\n"
        _HTTP_RESPONSES.inc(endpoint=_endpoint_label(self.path), status=200)
        self.send_response(200)
        self.send_header("Content-Type", NDJSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Model", model)
        self.send_header("X-Served-By", detail.served_by)
        self.send_header("X-Version", str(detail.version))
        self.send_header("X-Degraded", "1" if detail.degraded else "0")
        self.send_header("X-N", str(len(detail.predictions)))
        if self._successor is not None:
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f'<{self._successor}>; rel="successor-version"'
            )
        if self.server.worker_id is not None:
            self.send_header("X-Worker", str(self.server.worker_id))
        self.end_headers()
        self.wfile.write(body)


class PredictionServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`PredictionService`.

    ``port=0`` binds an ephemeral port (tests, the bench harness);
    :attr:`address` reports the resolved ``host:port``. Use as a context
    manager, or call :meth:`shutdown` then :meth:`server_close`.

    Multi-process mode (:mod:`repro.serve.forking`) passes three extra
    knobs: ``reuse_port`` makes the bind set ``SO_REUSEPORT`` so sibling
    worker processes share one port and the kernel load-balances
    accepted connections; ``worker_id`` tags ``/healthz`` and
    ``/models`` responses; ``metrics_dir`` points at the directory of
    peer metric snapshots that :meth:`render_metrics` merges into a
    fleet-wide ``/metrics`` exposition.
    """

    daemon_threads = True

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        reuse_port: bool = False,
        worker_id: int | None = None,
        metrics_dir: "Path | str | None" = None,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self.worker_id = worker_id
        self.metrics_dir = Path(metrics_dir) if metrics_dir is not None else None
        # socketserver.TCPServer applies this in server_bind (3.11+).
        self.allow_reuse_port = reuse_port
        self._serving = False
        super().__init__((host, port), _Handler)

    def render_metrics(self) -> str:
        """The ``/metrics`` exposition body.

        Process-local registry by default; when ``metrics_dir`` is set,
        the live local registry is merged with every peer worker's
        latest on-disk snapshot (``metrics-<worker>.json``) so any
        worker answers for the whole fleet. A torn or half-written peer
        snapshot is skipped — stale-but-consistent beats corrupt.
        """
        if self.metrics_dir is None:
            return REGISTRY.render()
        states = [REGISTRY.dump()]
        own = (
            None
            if self.worker_id is None
            else self.metrics_dir / f"metrics-{self.worker_id}.json"
        )
        for path in sorted(self.metrics_dir.glob("metrics-*.json")):
            if own is not None and path == own:
                continue  # our own snapshot is stale vs the live registry
            try:
                states.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue
        return render_merged(states)

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Blocking serve loop (``close`` from another thread stops it)."""
        self._serving = True
        super().serve_forever(poll_interval=poll_interval)

    @property
    def port(self) -> int:
        """The bound TCP port (resolved, even when constructed with 0)."""
        return self.server_address[1]

    @property
    def address(self) -> str:
        """``host:port`` string of the bound socket."""
        return f"{self.server_address[0]}:{self.port}"

    def serve_in_background(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread and return it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop serving, close the socket, and shut the service down."""
        if self._serving:
            self.shutdown()
            self._serving = False
        self.server_close()
        self.service.close()

    def __exit__(self, *exc_info) -> None:
        self.close()


def create_server(
    scenario="emmy",
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir=None,
    registry=None,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    warm: tuple[str, ...] = (),
    verbose: bool = False,
    lifecycle: bool = False,
    lifecycle_dir=None,
    **scenario_kwargs,
) -> PredictionServer:
    """Build a ready-to-serve :class:`PredictionServer` for one scenario.

    ``scenario``/``scenario_kwargs`` go through the
    :func:`repro.spec.as_scenario` shim, so both a
    :class:`~repro.spec.ScenarioSpec` and the legacy keyword style work.
    ``warm`` names models to train/load before the socket starts
    answering (e.g. ``("BDT",)``). ``lifecycle=True`` (or a
    ``lifecycle_dir``) attaches a
    :class:`~repro.serve.lifecycle.ModelLifecycle`, enabling
    ``/v1/feedback``, shadow evaluation, and the admin verbs
    (docs/LIFECYCLE.md). The caller owns the server: call
    ``serve_forever`` (or :meth:`PredictionServer.serve_in_background`)
    and :meth:`PredictionServer.close`.
    """
    from repro.spec import as_scenario

    spec = as_scenario(scenario, **scenario_kwargs)
    if registry is None:
        registry = ModelRegistry(cache_dir=cache_dir)
    manager = None
    if lifecycle or lifecycle_dir is not None:
        from repro.serve.lifecycle import ModelLifecycle

        manager = ModelLifecycle(
            spec, registry=registry, lifecycle_dir=lifecycle_dir
        )
    service = PredictionService(
        spec,
        registry=registry,
        max_batch=max_batch,
        max_wait_s=max_wait_ms / 1e3,
        lifecycle=manager,
    )
    server = PredictionServer(service, host=host, port=port, verbose=verbose)
    if warm:
        service.warm(warm)
    return server
