"""Array-backed BDT inference: the serving layer's fast tree walk.

The fitted :class:`~repro.ml.tree.DecisionTreeRegressor` predicts by
recursing over Python ``_Node`` objects — fine for the offline protocol,
but on the serving hot path every batch pays thousands of attribute
lookups and recursive calls. :class:`FlatBDT` flattens the fitted tree
once into contiguous NumPy arrays (feature / threshold / child indices /
leaf values, plus a boolean membership matrix for categorical splits)
and descends *level-synchronously*: one vectorized step per tree level
moves every still-active row to its child node, so a whole batch is
predicted in ``O(depth)`` NumPy ops regardless of batch size.

Bit-identity is the contract, not a goal: the flat walk evaluates the
exact same ``col <= threshold`` comparisons and the exact same category
memberships the object tree evaluates, and leaves carry bit-copied
predictions — so ``FlatBDT.predict(X)`` equals
``DecisionTreeRegressor.predict(X)`` to the last bit, and the offline
:func:`~repro.ml.pipeline.evaluate_models` protocol remains the oracle
for every served prediction (enforced by a hypothesis property in
``tests/serve/test_flat_bdt.py``).

:class:`FlatBDTServable` is the registry-facing wrapper: it shares the
wrapped :class:`~repro.ml.pipeline.FittedPredictor`'s encoders (so the
encode path is *the same code*, not a re-implementation) and swaps only
the tree walk.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ServeError

__all__ = ["FlatBDT", "FlatBDTServable"]


class FlatBDT:
    """One fitted regression tree in structure-of-arrays form.

    Arrays (all length ``n_nodes``, level-order):

    * ``feature`` — split feature index, ``-1`` for leaves;
    * ``threshold`` — numeric split threshold (``col <= threshold`` goes
      left), unused for categorical nodes;
    * ``left`` / ``right`` — child node indices (``-1`` for leaves);
    * ``value`` — node prediction (answered when the walk lands here);
    * ``cat_row`` — row into :attr:`cat_mask` for categorical nodes,
      ``-1`` otherwise;
    * ``cat_mask`` — ``(n_categorical_nodes, n_codes)`` boolean matrix;
      ``cat_mask[row, code]`` is True when ``code`` goes left.

    Build one with :meth:`from_tree`; :meth:`predict` is the vectorized
    level-order descent.
    """

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "value",
        "cat_row",
        "cat_mask",
        "n_features",
    )

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        cat_row: np.ndarray,
        cat_mask: np.ndarray,
        n_features: int,
    ) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.cat_row = cat_row
        self.cat_mask = cat_mask
        self.n_features = n_features

    # -- construction ----------------------------------------------------

    @classmethod
    def from_tree(cls, tree) -> "FlatBDT":
        """Flatten a fitted :class:`~repro.ml.tree.DecisionTreeRegressor`.

        Level-order (BFS) so sibling subtrees sit adjacently and the
        descent touches monotonically increasing node indices.
        """
        root = tree.root  # raises ModelError when not fitted
        nodes = [root]
        order = 0
        # BFS assigning indices; children discovered after their parent.
        while order < len(nodes):
            node = nodes[order]
            order += 1
            if not node.is_leaf:
                nodes.append(node.left)
                nodes.append(node.right)
        index_of = {id(node): i for i, node in enumerate(nodes)}

        n = len(nodes)
        feature = np.full(n, -1, dtype=np.int32)
        threshold = np.zeros(n, dtype=np.float64)
        left = np.full(n, -1, dtype=np.int32)
        right = np.full(n, -1, dtype=np.int32)
        value = np.empty(n, dtype=np.float64)
        cat_row = np.full(n, -1, dtype=np.int32)

        cat_sets: list[frozenset] = []
        for i, node in enumerate(nodes):
            value[i] = node.prediction
            if node.is_leaf:
                continue
            feature[i] = node.feature
            left[i] = index_of[id(node.left)]
            right[i] = index_of[id(node.right)]
            if node.left_categories is not None:
                cat_row[i] = len(cat_sets)
                cat_sets.append(node.left_categories)
            else:
                threshold[i] = node.threshold

        width = 1 + max(
            (int(c) for cats in cat_sets for c in cats), default=-1
        )
        cat_mask = np.zeros((len(cat_sets), max(width, 1)), dtype=bool)
        for row, cats in enumerate(cat_sets):
            for c in cats:
                cat_mask[row, int(c)] = True
        return cls(
            feature,
            threshold,
            left,
            right,
            value,
            cat_row,
            cat_mask,
            n_features=tree._n_features,
        )

    # -- inference -------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total flattened node count (leaves included)."""
        return len(self.value)

    def predict(self, X) -> np.ndarray:
        """Vectorized level-order descent; bit-identical to the object tree.

        Each loop iteration advances every still-active row one level:
        gather the rows' current nodes, evaluate their split condition in
        bulk (numeric compare or categorical mask lookup), and index into
        the child arrays. Rows parked on leaves drop out of the active
        set, so the loop runs at most ``depth`` times.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ServeError(
                f"flat BDT expects (n, {self.n_features}) inputs, "
                f"got {X.shape}"
            )
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int32)
        active = (
            np.arange(n, dtype=np.intp)
            if self.feature[0] >= 0
            else np.empty(0, dtype=np.intp)
        )
        while active.size:
            current = node[active]
            col = X[active, self.feature[current]]
            go_left = col <= self.threshold[current]
            rows = self.cat_row[current]
            is_cat = rows >= 0
            if is_cat.any():
                codes = col[is_cat].astype(np.int64)
                in_range = (codes >= 0) & (codes < self.cat_mask.shape[1])
                safe = np.where(in_range, codes, 0)
                go_left[is_cat] = self.cat_mask[rows[is_cat], safe] & in_range
            nxt = np.where(go_left, self.left[current], self.right[current])
            node[active] = nxt
            active = active[self.feature[nxt] >= 0]
        return self.value[node]


class FlatBDTServable:
    """Registry servable answering BDT requests through :class:`FlatBDT`.

    Wraps a fitted :class:`~repro.ml.pipeline.FittedPredictor` whose
    estimator is a :class:`~repro.ml.tree.DecisionTreeRegressor`; the
    encode path (category codes, log1p numerics) is delegated to the
    wrapped predictor so served features can never drift from the
    offline protocol's features. Only the tree walk is swapped for the
    array descent. The registry stores the *wrapped predictor* on disk
    (artifact format unchanged) and re-wraps on load.
    """

    def __init__(self, predictor) -> None:
        from repro.ml.tree import DecisionTreeRegressor

        if not isinstance(getattr(predictor, "model", None), DecisionTreeRegressor):
            raise ServeError(
                "FlatBDTServable wraps a FittedPredictor holding a "
                f"DecisionTreeRegressor, got {type(predictor).__name__}"
            )
        self.predictor = predictor
        self.flat = FlatBDT.from_tree(predictor.model)
        self.n_train = predictor.n_train
        # Keep the wrapped predictor's identity ("BDT", or a track model
        # like "GPU"/"FAIL") so responses report the right served_by.
        self.model_name = getattr(predictor, "model_name", "BDT")

    @property
    def known_users(self) -> frozenset[str]:
        """Users the wrapped predictor's encoders saw at fit time."""
        return self.predictor.known_users

    @property
    def feature_spec(self):
        """The wrapped predictor's feature spec (drives request validation)."""
        return self.predictor.feature_spec

    def describe(self) -> dict[str, Any]:
        """Shape summary for /models-style introspection."""
        return {
            "model": self.model_name,
            "n_train": self.n_train,
            "n_nodes": self.flat.n_nodes,
            "backend": "flat-array",
        }

    def predict_records(self, records: Sequence[Mapping]) -> np.ndarray:
        """Encode request rows via the shared path, predict via arrays."""
        X = self.predictor.encode_records(records)
        return self.flat.predict(X)

    def predict_table(self, jobs) -> np.ndarray:
        """Vectorized predictions for a whole job table (tests, tools)."""
        X = self.predictor.encode_table(jobs)
        return self.flat.predict(X)
