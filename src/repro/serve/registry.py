"""Model registry: trained predictors keyed by dataset content address.

A served model's identity is the full lineage tuple ``(dataset digest,
model name, code version, lineage version)``:

* the **dataset digest** is exactly the pipeline cache key of the
  scenario's ``dataset`` stage
  (:attr:`repro.spec.ScenarioSpec.dataset_digest`) — two scenarios that
  hash to the same dataset share trained models;
* the **code version** (:data:`_MODEL_VERSIONS`) invalidates cached
  artifacts when training *semantics* change;
* the **lineage version** distinguishes successive trained states of
  the *same* model under the lifecycle layer
  (docs/LIFECYCLE.md): version 1 is the base artifact trained from the
  scenario dataset, versions 2+ are immutable snapshots committed via
  :meth:`ModelRegistry.put` (e.g. a feedback-updated online predictor).
  Which version serves live traffic is *not* the registry's business —
  the :class:`~repro.serve.lifecycle.LineageJournal` owns the ``active``
  pointer; the registry only stores and retrieves immutable artifacts.

Every component of the identity is threaded through **both** the warm
LRU key and the on-disk content key, so bumping either version can
never serve a stale warm entry (the PR-8 eviction fix).

Lookup order on :meth:`ModelRegistry.get`:

1. **warm LRU** — an in-memory ``OrderedDict`` of fitted predictors;
2. **artifact cache** — pickled predictors stored under the ``model``
   stage of the same :class:`~repro.pipeline.ArtifactCache` the pipeline
   uses (``pipeline status`` lists them, ``pipeline clean --stage model``
   drops them);
3. **train** — version 1 only: build the scenario's dataset through the
   cached pipeline (:func:`repro.pipeline.build_dataset`), fit via the
   shared :func:`repro.ml.fit_predictor` path, commit to the artifact
   cache. Versions 2+ are snapshots, not re-derivable — a missing
   artifact raises instead of silently retraining something different.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import CacheError, ServeError, ValidationError
from repro.faults.injector import maybe_fire
from repro.obs.metrics import DEFAULT_SECONDS_BUCKETS, REGISTRY
from repro.obs.tracing import trace_span
from repro.spec import ScenarioSpec, as_scenario

__all__ = [
    "MODEL_STAGE",
    "SERVE_MODELS",
    "MeanPowerServable",
    "OnlineServable",
    "ModelRegistry",
]

MODEL_STAGE = "model"

# Bump a model's version to invalidate its cached fitted artifacts when
# training semantics change (mirrors pipeline STAGE_VERSIONS).
_MODEL_VERSIONS: dict[str, int] = {
    "BDT": 1,
    "KNN": 1,
    "FLDA": 1,
    "GPU": 1,
    "FAIL": 1,
    "online": 1,
}

#: The model names the serving layer can train: the paper models on the
#: per-node power track, the heterogeneous tracks' BDTs (``GPU`` board
#: power, ``FAIL`` failure probability — docs/SCENARIOS.md), and the
#: deployment-order hierarchical-mean predictor.
SERVE_MODELS: tuple[str, ...] = tuple(_MODEL_VERSIONS)

# Models backed by a fitted DecisionTreeRegressor: these get the
# array-backed FlatBDT inference swap in _specialize.
_TREE_BACKED = ("BDT", "GPU", "FAIL")

_ONLINE_FIELDS = ("user", "nodes", "req_walltime_s")

# Mean node draw as a fraction of TDP when even the scenario dataset is
# unbuildable — roughly the production mean the paper reports (Fig 3).
_FALLBACK_TDP_FRACTION = 0.6

# Registry observability (docs/OBSERVABILITY.md): where lookups were
# served from (warm LRU / disk artifact / fresh training) and how long
# training takes when it happens.
_LOOKUPS = REGISTRY.counter(
    "repro_model_registry_lookups_total",
    "Registry gets by source: hit (warm LRU), disk (artifact cache), "
    "trained (fresh fit).",
    labelnames=("outcome",),
)
_TRAIN_SECONDS = REGISTRY.histogram(
    "repro_model_train_seconds",
    "Wall time of one model training (dataset build + fit).",
    buckets=DEFAULT_SECONDS_BUCKETS,
    labelnames=("model",),
)


class OnlineServable:
    """The A4 online hierarchical-mean model in servable form.

    Wraps an :class:`~repro.ml.OnlinePowerPredictor` whose levels were
    populated by one submit-order sweep over the scenario's job table.
    Unlike the estimator models it backs off gracefully for users it has
    never seen (``known_users`` is ``None`` — no pre-validation needed).
    """

    model_name = "online"
    known_users: frozenset[str] | None = None

    def __init__(self, predictor, n_train: int) -> None:
        self._predictor = predictor
        self.n_train = n_train

    @property
    def predictor(self):
        """The wrapped :class:`~repro.ml.OnlinePowerPredictor`.

        The lifecycle layer reads this to seed its live learner from the
        active version's frozen state (a copy — the artifact itself is
        immutable).
        """
        return self._predictor

    def predict_records(self, records: Sequence[Mapping]) -> np.ndarray:
        """Per-record hierarchical-mean lookups (O(1) each)."""
        missing = [f for f in _ONLINE_FIELDS if any(f not in r for r in records)]
        if missing:
            raise ValidationError(f"records lack feature fields {missing}")
        return np.asarray(
            [
                self._predictor.predict(
                    str(r["user"]), int(r["nodes"]), int(r["req_walltime_s"])
                )
                for r in records
            ],
            dtype=float,
        )


class MeanPowerServable:
    """Degraded-mode baseline: one mean per-node power for every job.

    When the registry cannot produce the requested model (training keeps
    failing under injected or real faults), the service answers from
    this constant-mean predictor instead of erroring — the paper's
    "deployment order" ends at exactly this baseline. Responses built
    from it carry ``degraded: true`` (docs/FAULTS.md).
    """

    model_name = "mean-baseline"
    known_users: frozenset[str] | None = None

    def __init__(self, mean_power_w: float, n_train: int = 0) -> None:
        if not mean_power_w > 0:
            raise ServeError("mean baseline needs a positive mean power")
        self.mean_power_w = float(mean_power_w)
        self.n_train = n_train

    def predict_records(self, records: Sequence[Mapping]) -> np.ndarray:
        """The scenario-wide mean, once per record."""
        return np.full(len(records), self.mean_power_w, dtype=float)


def _fit_online(jobs) -> OnlineServable:
    from repro.ml import OnlinePowerPredictor

    predictor = OnlinePowerPredictor()
    ordered = jobs.sort_by("submit_s")
    users = ordered["user"]
    nodes = ordered["nodes"]
    walls = ordered["req_walltime_s"]
    power = ordered["pernode_power_w"].astype(float)
    for i in range(len(ordered)):
        predictor.observe(users[i], int(nodes[i]), int(walls[i]), float(power[i]))
    return OnlineServable(predictor, n_train=len(ordered))


class ModelRegistry:
    """Warm LRU + artifact-cache-backed store of fitted predictors.

    Parameters
    ----------
    cache_dir:
        Artifact cache root shared with the pipeline (default:
        :func:`repro.pipeline.default_cache_dir`). ``None`` with
        ``use_disk=False`` keeps everything in memory.
    capacity:
        Warm-LRU size in fitted models; the least recently served model
        is evicted first (its disk artifact survives).
    use_disk:
        Disable to skip the artifact cache entirely (tests).
    load_retries / retry_backoff_s:
        Resilience knobs for disk loads: a failed artifact read (IO
        error, injected ``cache.read`` fault, corrupted pickle) is
        retried up to ``load_retries`` times with exponential backoff
        starting at ``retry_backoff_s``; if every attempt fails the
        registry falls back to retraining instead of erroring.
    """

    def __init__(
        self,
        cache_dir=None,
        capacity: int = 8,
        use_disk: bool = True,
        load_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        if capacity < 1:
            raise ServeError("registry capacity must be >= 1")
        if load_retries < 0:
            raise ServeError("load_retries must be >= 0")
        from repro.pipeline import ArtifactCache, default_cache_dir

        self.capacity = capacity
        self.use_disk = use_disk
        self.load_retries = load_retries
        self.retry_backoff_s = retry_backoff_s
        self.cache = ArtifactCache(cache_dir if cache_dir is not None else default_cache_dir())
        # LRU keys carry the full lineage (digest, model, code version,
        # lineage version) — the same components as the disk key — so a
        # version bump can never hit a stale warm entry.
        self._lru: "OrderedDict[tuple[str, str, int, int], Any]" = OrderedDict()
        self._fallbacks: dict[str, MeanPowerServable] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.disk_loads = 0
        self.trained = 0
        self.load_failures = 0  # disk-load attempts that raised
        self.store_failures = 0  # artifact commits that raised (non-fatal)
        self.dataset_fallbacks = 0  # cached builds that fell back in-memory
        self.last_train_seconds = 0.0

    # -- addressing ------------------------------------------------------

    @staticmethod
    def check_model_name(model: str) -> str:
        """Validate and return ``model``; raises ServeError when unknown."""
        if model not in _MODEL_VERSIONS:
            raise ServeError(
                f"unknown model {model!r}; known: {list(SERVE_MODELS)}"
            )
        return model

    @staticmethod
    def check_version(version: int) -> int:
        """Validate and return a lineage ``version`` (must be >= 1)."""
        version = int(version)
        if version < 1:
            raise ServeError(f"model version must be >= 1, got {version}")
        return version

    def model_key(self, scenario: ScenarioSpec, model: str, version: int = 1) -> str:
        """Content address of one (scenario dataset, model, version) artifact.

        Version 1 (the base artifact trained from the scenario dataset)
        keys exactly as before the lifecycle redesign, so pre-existing
        on-disk caches stay valid; versions 2+ add the lineage field.
        """
        from repro.pipeline.cache import content_key

        self.check_model_name(model)
        version = self.check_version(version)
        payload = {
            "format": 1,
            "stage": MODEL_STAGE,
            "dataset": scenario.dataset_digest,
            "model": model,
            "version": _MODEL_VERSIONS[model],
        }
        if version != 1:
            payload["lineage"] = version
        return content_key(payload)

    # -- lookup / training -----------------------------------------------

    def get(self, scenario, model: str = "BDT", version: int = 1):
        """The fitted predictor for (scenario, model, version).

        ``scenario`` is anything :func:`repro.spec.as_scenario` accepts.
        Version 1 trains on first use; versions 2+ are immutable
        lifecycle snapshots and raise :class:`~repro.errors.ServeError`
        when their artifact is missing (they cannot be re-derived).
        Thread-safe; concurrent misses on the same key train once.
        """
        spec = as_scenario(scenario)
        self.check_model_name(model)
        version = self.check_version(version)
        key = (spec.dataset_digest, model, _MODEL_VERSIONS[model], version)
        with self._lock:
            servable = self._lru.get(key)
            if servable is not None:
                self._lru.move_to_end(key)
                self.hits += 1
                _LOOKUPS.inc(outcome="hit")
                return servable
            self.misses += 1
            disk_key = self.model_key(spec, model, version)
            servable = self._load_cached(disk_key) if self.use_disk else None
            if servable is None:
                if version != 1:
                    raise ServeError(
                        f"model {model!r} version {version} for scenario "
                        f"{spec.label} has no stored artifact (snapshots "
                        "cannot be retrained; roll back to a version that "
                        "exists)"
                    )
                servable = self._train(spec, model)
                self.trained += 1
                _LOOKUPS.inc(outcome="trained")
                if self.use_disk:
                    self._store(spec, model, disk_key, servable, version)
            else:
                _LOOKUPS.inc(outcome="disk")
            servable = self._specialize(servable, model)
            self._lru[key] = servable
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
            return servable

    def put(self, scenario, model: str, servable, version: int, meta=None):
        """Commit an immutable lineage snapshot as ``version``.

        The lifecycle layer calls this to freeze a candidate (e.g. the
        feedback-updated online predictor) as a content-addressed
        artifact. Versions are write-once: committing over an existing
        version raises instead of mutating history. Returns the disk
        key (also stored in the journal's ``register`` event as
        ``trained_at_key``).
        """
        spec = as_scenario(scenario)
        self.check_model_name(model)
        version = self.check_version(version)
        disk_key = self.model_key(spec, model, version)
        key = (spec.dataset_digest, model, _MODEL_VERSIONS[model], version)
        with self._lock:
            exists = key in self._lru or (
                self.use_disk and self.cache.has(MODEL_STAGE, disk_key)
            )
            if exists:
                raise ServeError(
                    f"model {model!r} version {version} already exists for "
                    f"scenario {spec.label}; versions are immutable"
                )
            if self.use_disk:
                self._store(spec, model, disk_key, servable, version, meta)
            self._lru[key] = self._specialize(servable, model)
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
        return disk_key

    def has_version(self, scenario, model: str, version: int) -> bool:
        """Is this lineage version available (warm or on disk)?"""
        spec = as_scenario(scenario)
        self.check_model_name(model)
        version = self.check_version(version)
        if version == 1:
            return True  # always derivable from the frozen scenario
        key = (spec.dataset_digest, model, _MODEL_VERSIONS[model], version)
        with self._lock:
            if key in self._lru:
                return True
            return self.use_disk and self.cache.has(
                MODEL_STAGE, self.model_key(spec, model, version)
            )

    def versions(self, scenario, model: str) -> list[int]:
        """Sorted lineage versions available for (scenario, model)."""
        spec = as_scenario(scenario)
        self.check_model_name(model)
        found = {1}
        with self._lock:
            for (digest, lru_model, code, version) in self._lru:
                if digest == spec.dataset_digest and lru_model == model and \
                        code == _MODEL_VERSIONS[model]:
                    found.add(version)
        if self.use_disk:
            try:
                for entry in self.cache.entries(MODEL_STAGE):
                    meta = entry.meta
                    if (
                        meta.get("dataset_key") == spec.dataset_digest
                        and meta.get("model") == model
                    ):
                        found.add(int(meta.get("lineage_version", 1)))
            except Exception:  # noqa: BLE001 — a damaged cache lists less
                pass
        return sorted(found)

    def train(self, scenario, model: str):
        """Train a fresh (unspecialized) servable from the frozen dataset.

        Deterministic given the scenario: the lifecycle layer uses this
        to mint new estimator candidates without touching the LRU or the
        cache (committing the result is :meth:`put`'s job).
        """
        spec = as_scenario(scenario)
        self.check_model_name(model)
        return self._train(spec, model)

    @staticmethod
    def _specialize(servable, model: str):
        """Swap in the array-backed inference backend where one exists.

        BDT predictors are wrapped in
        :class:`~repro.serve.flat_bdt.FlatBDTServable` (vectorized
        level-order descent, bit-identical outputs) *after* disk
        load/train, so the on-disk artifact format stays the plain
        :class:`~repro.ml.pipeline.FittedPredictor` pickle — old caches
        load fine and the offline oracle opens the same artifact.
        """
        if model not in _TREE_BACKED:
            return servable
        from repro.serve.flat_bdt import FlatBDTServable

        if isinstance(servable, FlatBDTServable):
            return servable
        return FlatBDTServable(servable)

    def _load_cached(self, disk_key: str):
        """Disk-cached servable, with bounded retry; None means retrain.

        Transient read errors (NFS hiccups, the injected ``cache.read``
        fault) are retried with exponential backoff; a corrupted pickle
        (truncated write, the injected ``cache.corrupt`` fault) raises
        on every attempt and likewise resolves to retraining — a bad
        artifact must never take the service down.
        """
        for attempt in range(self.load_retries + 1):
            try:
                if not self.cache.has(MODEL_STAGE, disk_key):
                    return None
                servable = self.cache.load_pickle(MODEL_STAGE, disk_key)
                self.disk_loads += 1
                return servable
            except Exception:  # noqa: BLE001 — unpickling can raise anything
                self.load_failures += 1
                if attempt < self.load_retries:
                    time.sleep(self.retry_backoff_s * (2**attempt))
        return None

    def _store(
        self,
        spec: ScenarioSpec,
        model: str,
        disk_key: str,
        servable,
        version: int = 1,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        """Commit a fitted servable; a failed write never fails the get."""
        try:
            self.cache.store_pickle(
                MODEL_STAGE,
                disk_key,
                servable,
                {
                    "config": spec.to_dict(),
                    "label": f"{spec.label}/{model}"
                    + (f"@v{version}" if version != 1 else ""),
                    "model": model,
                    "dataset_key": spec.dataset_digest,
                    "lineage_version": version,
                    "n_items": servable.n_train,
                    **dict(meta or ()),
                },
            )
        except CacheError:
            # Serve from memory; the next cold registry simply retrains.
            self.store_failures += 1

    def _train(self, spec: ScenarioSpec, model: str):
        """Build the scenario's dataset (cached) and fit one model on it."""
        if maybe_fire("registry.train"):
            raise ServeError(f"injected fault: registry.train {spec.label}/{model}")
        t0 = time.perf_counter()
        with trace_span("registry.train", model=model, scenario=spec.label):
            dataset = self._build_dataset(spec)
            if model == "online":
                servable = _fit_online(dataset.jobs)
            elif model in ("GPU", "FAIL"):
                from repro.analysis.prediction import default_models, failure_models
                from repro.ml import FAILURE_TRACK, GPU_POWER_TRACK, fit_predictor

                # Track BDTs: same estimator family, the track's target
                # and features. track.select raises a clear error when
                # the scenario's system doesn't model the columns.
                track = GPU_POWER_TRACK if model == "GPU" else FAILURE_TRACK
                factory = (
                    default_models()["BDT"]
                    if model == "GPU"
                    else failure_models()["BDT"]
                )
                servable = fit_predictor(
                    track.select(dataset.jobs),
                    factory,
                    model_name=model,
                    feature_spec=track.feature_spec(),
                    target_column=track.target_column,
                )
            else:
                from repro.analysis.prediction import default_models
                from repro.ml import fit_predictor

                servable = fit_predictor(
                    dataset.jobs, default_models()[model], model_name=model
                )
        self.last_train_seconds = round(time.perf_counter() - t0, 4)
        _TRAIN_SECONDS.observe(time.perf_counter() - t0, model=model)
        return servable

    def _build_dataset(self, spec: ScenarioSpec):
        from repro.telemetry import generate_dataset

        if self.use_disk:
            from repro.pipeline import build_dataset

            try:
                return build_dataset(**spec.dataset_kwargs(), cache_dir=self.cache.root)
            except CacheError:
                # The staged cache is unusable (disk trouble, injected
                # cache faults): fall back to the in-memory pipeline,
                # which builds the byte-identical dataset cache-free.
                self.dataset_fallbacks += 1
        return generate_dataset(**spec.dataset_kwargs())

    def fallback(self, scenario) -> MeanPowerServable:
        """The degraded-mode mean-power baseline for a scenario.

        Preferred source is the scenario dataset's own mean per-node
        power (deterministic); if even that cannot be built, a constant
        fraction of the system's TDP keeps the service answering.
        """
        spec = as_scenario(scenario)
        with self._lock:
            servable = self._fallbacks.get(spec.dataset_digest)
            if servable is not None:
                return servable
            try:
                jobs = self._build_dataset(spec).jobs
                servable = MeanPowerServable(
                    float(jobs["pernode_power_w"].astype(float).mean()),
                    n_train=len(jobs),
                )
            except Exception:  # noqa: BLE001 — last line of defense
                from repro.cluster import get_spec

                servable = MeanPowerServable(
                    _FALLBACK_TDP_FRACTION * get_spec(spec.system).node_tdp_watts
                )
            self._fallbacks[spec.dataset_digest] = servable
            return servable

    # -- inspection ------------------------------------------------------

    def loaded(self) -> list[dict[str, Any]]:
        """Descriptors of every warm model (``/models`` endpoint)."""
        with self._lock:
            return [
                {
                    "dataset_digest": digest,
                    "model": model,
                    "version": version,
                    "n_train": servable.n_train,
                }
                for (digest, model, _code, version), servable in self._lru.items()
            ]

    def stats(self) -> dict[str, Any]:
        """Counter snapshot: hits/misses/disk loads/trains, fault recovery."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "warm": len(self._lru),
                "hits": self.hits,
                "misses": self.misses,
                "disk_loads": self.disk_loads,
                "trained": self.trained,
                "load_failures": self.load_failures,
                "store_failures": self.store_failures,
                "dataset_fallbacks": self.dataset_fallbacks,
            }
