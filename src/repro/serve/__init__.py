"""Online power-prediction serving: the paper's deployment story (§VII).

Answers "what will this job draw per node?" at job-submit time, as a
long-lived concurrent service rather than an offline batch evaluation:

* :class:`~repro.serve.registry.ModelRegistry` — trains/loads
  BDT/KNN/FLDA/online models keyed by the pipeline's content-addressed
  dataset digest, with a warm LRU over an on-disk artifact cache;
* :class:`~repro.serve.batching.MicroBatcher` — coalesces concurrent
  single-job requests into vectorized predict calls (bit-identical to
  unbatched predictions);
* :class:`~repro.serve.flat_bdt.FlatBDT` /
  :class:`~repro.serve.flat_bdt.FlatBDTServable` — the fitted BDT
  flattened into contiguous arrays with a vectorized level-order
  descent (bit-identical to the object tree, ~10× the throughput);
* :class:`~repro.serve.api.PredictRequest` /
  :class:`~repro.serve.api.PredictResponse` /
  :func:`~repro.serve.api.as_predict_request` — the one canonical
  predict surface every entry point funnels through;
* :class:`~repro.serve.service.PredictionService` — the embeddable
  facade (validation, per-request latency accounting, bulk path,
  stats); :meth:`~repro.serve.service.PredictionService.predict_request`
  is the single entry point;
* :class:`~repro.serve.lifecycle.ModelLifecycle` /
  :class:`~repro.serve.lifecycle.LineageJournal` /
  :class:`~repro.serve.lifecycle.DriftDetector` — drift-aware online
  serving: feedback ingest, shadow evaluation of candidate versions,
  and journaled promote/rollback (docs/LIFECYCLE.md);
* :class:`~repro.serve.http.PredictionServer` /
  :func:`~repro.serve.http.create_server` — the stdlib HTTP/JSON
  front-end (``repro-power serve``; ``/v1/predict``,
  ``/v1/predict/bulk``, ``/v1/models``, ``/v1/healthz``,
  ``/v1/feedback``, ``/v1/admin/*``, plus pre-``/v1`` deprecation
  shims);
* :class:`~repro.serve.forking.ForkingServer` — the pre-forked
  multi-process front-end: N ``SO_REUSEPORT`` workers on one port,
  fleet-aggregated ``/metrics``, supervised restarts, graceful
  shutdown (``repro-power serve --workers N``).

See docs/SERVICE.md for endpoints, batching knobs, cache layout, and
the load-generator harness (``tools/serve_bench.py``); docs/LIFECYCLE.md
covers the feedback/drift/promote loop.

Every symbol resolves lazily (PEP 562) so importing :mod:`repro` or the
CLI's bookkeeping commands never pays for numpy or the ML layer.
"""

__all__ = [
    "BatchStats",
    "DriftDetector",
    "FlatBDT",
    "FlatBDTServable",
    "ForkingServer",
    "LatencyStats",
    "LineageJournal",
    "MeanPowerServable",
    "MicroBatcher",
    "ModelLifecycle",
    "ModelRef",
    "ModelRegistry",
    "OnlineServable",
    "PredictRequest",
    "PredictResponse",
    "PredictionServer",
    "PredictionService",
    "SERVE_MODELS",
    "WorkerConfig",
    "as_predict_request",
    "create_server",
    "replay_feedback",
]

# Lazy attribute map (PEP 562): name -> defining module.
_LAZY_ATTRS = {
    "BatchStats": "repro.serve.batching",
    "MicroBatcher": "repro.serve.batching",
    "FlatBDT": "repro.serve.flat_bdt",
    "FlatBDTServable": "repro.serve.flat_bdt",
    "ForkingServer": "repro.serve.forking",
    "WorkerConfig": "repro.serve.forking",
    "MeanPowerServable": "repro.serve.registry",
    "ModelRegistry": "repro.serve.registry",
    "OnlineServable": "repro.serve.registry",
    "SERVE_MODELS": "repro.serve.registry",
    "PredictRequest": "repro.serve.api",
    "PredictResponse": "repro.serve.api",
    "as_predict_request": "repro.serve.api",
    "DriftDetector": "repro.serve.lifecycle",
    "LineageJournal": "repro.serve.lifecycle",
    "ModelLifecycle": "repro.serve.lifecycle",
    "ModelRef": "repro.serve.lifecycle",
    "replay_feedback": "repro.serve.lifecycle",
    "LatencyStats": "repro.serve.service",
    "PredictionService": "repro.serve.service",
    "PredictionServer": "repro.serve.http",
    "create_server": "repro.serve.http",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so later lookups skip this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_ATTRS))
