"""The embeddable prediction service: registry + micro-batchers + stats.

:class:`PredictionService` is the piece both the HTTP front-end and
in-process callers (tests, the bench harness, notebooks) drive. It owns

* a :class:`~repro.serve.registry.ModelRegistry` (shared, or private),
* one :class:`~repro.serve.batching.MicroBatcher` per served
  (dataset digest, model) pair, created lazily, and
* :class:`LatencyStats` — structured per-request latency accounting
  (count, exact mean, and bucket-derived p50/p99 — see
  :class:`repro.obs.metrics.Histogram`).

Requests are validated *before* they enter a batch: an unknown user (for
the estimator models, whose category encoders are frozen at fit time)
fails that request alone instead of poisoning the vectorized call its
batch-mates share.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ReproError, ServeError, ServiceClosed
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, REGISTRY, Histogram
from repro.obs.tracing import trace_span
from repro.serve.batching import MicroBatcher
from repro.serve.registry import ModelRegistry
from repro.spec import ScenarioSpec, as_scenario

__all__ = ["LatencyStats", "PredictionService"]

_REQUIRED_FIELDS = ("user", "nodes", "req_walltime_s")

# Serving observability (docs/OBSERVABILITY.md). The conservation
# invariant the chaos auditor checks: every request counted in
# repro_requests_total lands in exactly one outcome series of
# repro_predict_outcomes_total (ok / degraded / failed).
_REQUESTS = REGISTRY.counter(
    "repro_requests_total",
    "Prediction requests submitted to PredictionService.predict*.",
)
_OUTCOMES = REGISTRY.counter(
    "repro_predict_outcomes_total",
    "Prediction request outcomes: ok, degraded (baseline-served), failed.",
    labelnames=("outcome",),
)
_LATENCY = REGISTRY.histogram(
    "repro_request_latency_seconds",
    "End-to-end latency of answered prediction requests.",
    buckets=DEFAULT_LATENCY_BUCKETS,
)
_BULK = REGISTRY.counter(
    "repro_bulk_calls_total",
    "Bulk prediction calls (one vectorized predict per call, no batcher).",
)
_BULK_SIZE = REGISTRY.histogram(
    "repro_bulk_batch_size",
    "Records per bulk prediction call.",
    buckets=(1, 4, 16, 64, 256, 1024, 4096),
)


class LatencyStats:
    """Histogram-backed latency accounting (thread-safe).

    Backed by a private fixed-bucket
    :class:`~repro.obs.metrics.Histogram`: the count and mean are exact
    (lifetime sum/count), p50/p99 are bucket-interpolated estimates —
    the same numbers a Prometheus ``histogram_quantile`` over the
    ``/metrics`` exposition yields. :meth:`snapshot` keeps the record
    shape the ``/healthz`` endpoint and the bench harness report.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self._hist = Histogram(
            "latency_seconds", "per-service request latency", buckets=buckets
        )

    @property
    def count(self) -> int:
        """Lifetime number of recorded requests."""
        return self._hist.count()

    @property
    def total_s(self) -> float:
        """Lifetime sum of recorded request latencies (seconds)."""
        return self._hist.sum()

    def record(self, seconds: float) -> None:
        """Fold one request's wall time in."""
        self._hist.observe(seconds)

    def snapshot(self) -> dict[str, Any]:
        """count / exact mean / bucket-derived p50 and p99 (ms)."""
        count = self._hist.count()
        if count == 0:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0}
        return {
            "count": count,
            "mean_ms": round(self._hist.mean() * 1e3, 3),
            "p50_ms": round(self._hist.quantile(0.50) * 1e3, 3),
            "p99_ms": round(self._hist.quantile(0.99) * 1e3, 3),
        }


class PredictionService:
    """Micro-batched power prediction for one default scenario.

    Parameters
    ----------
    scenario:
        The default :class:`~repro.spec.ScenarioSpec` requests are
        answered against (anything :func:`repro.spec.as_scenario`
        accepts). Individual requests may override it.
    registry:
        Share a :class:`ModelRegistry` across services, or let the
        service build its own against ``cache_dir``.
    max_batch / max_wait_s / max_queue:
        Batching knobs, passed to every per-model
        :class:`~repro.serve.batching.MicroBatcher`.
    """

    def __init__(
        self,
        scenario: "ScenarioSpec | Mapping | str" = "emmy",
        registry: ModelRegistry | None = None,
        cache_dir=None,
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        max_queue: int = 4096,
    ) -> None:
        self.scenario = as_scenario(scenario)
        self.registry = registry or ModelRegistry(cache_dir=cache_dir)
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self.latency = LatencyStats()
        self._batchers: dict[tuple[str, str], MicroBatcher] = {}
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._closed = False
        self.n_degraded = 0  # lifetime count of fallback-served requests
        self._degraded_active = False  # was the most recent request degraded?

    # -- plumbing --------------------------------------------------------

    def _batcher(self, spec: ScenarioSpec, model: str) -> MicroBatcher:
        """The lazily created micro-batcher for one (scenario, model)."""
        servable = self.registry.get(spec, model)  # outside our lock: may train
        key = (spec.dataset_digest, model)
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            batcher = self._batchers.get(key)
            if batcher is None:
                batcher = MicroBatcher(
                    servable.predict_records,
                    max_batch=self.max_batch,
                    max_wait_s=self.max_wait_s,
                    max_queue=self.max_queue,
                    name=f"{model}@{key[0][:8]}",
                )
                self._batchers[key] = batcher
            return batcher

    def _validate(self, records: Sequence[Mapping], servable) -> None:
        for i, record in enumerate(records):
            missing = [f for f in _REQUIRED_FIELDS if f not in record]
            if missing:
                raise ServeError(f"request {i} lacks fields {missing}")
            try:
                nodes = int(record["nodes"])
                walltime = float(record["req_walltime_s"])
            except (TypeError, ValueError):
                raise ServeError(
                    f"request {i}: nodes and req_walltime_s must be numeric"
                ) from None
            if nodes < 1:
                raise ServeError(f"request {i}: nodes must be >= 1")
            if walltime <= 0:
                raise ServeError(f"request {i}: req_walltime_s must be positive")
        known = servable.known_users
        if known is not None:
            unknown = sorted(
                {str(r["user"]) for r in records} - known
            )
            if unknown:
                raise ServeError(
                    f"unknown user(s) {unknown[:5]} for model "
                    f"{servable.model_name!r}; the online model accepts any user"
                )

    # -- request surface -------------------------------------------------

    def predict(
        self,
        records: Sequence[Mapping],
        model: str = "BDT",
        scenario: "ScenarioSpec | Mapping | None" = None,
        timeout: float | None = 30.0,
    ) -> np.ndarray:
        """Micro-batched predictions for request-order ``records``.

        Each record is submitted individually, so concurrent callers'
        single-job requests coalesce into shared vectorized calls.
        ``scenario`` overrides the service default for this request only
        (a mapping overlays just the fields it names).
        """
        return self.predict_detailed(
            records, model=model, scenario=scenario, timeout=timeout
        )["predictions"]

    def predict_detailed(
        self,
        records: Sequence[Mapping],
        model: str = "BDT",
        scenario: "ScenarioSpec | Mapping | None" = None,
        timeout: float | None = 30.0,
    ) -> dict[str, Any]:
        """:meth:`predict` plus degraded-mode accounting.

        Returns ``{"predictions": ndarray, "degraded": bool,
        "served_by": model name}``. When the registry cannot produce the
        requested model (training keeps failing under faults), the
        request is answered by the registry's mean-power baseline and
        flagged ``degraded: true`` instead of erroring — caller mistakes
        (unknown model/user, malformed fields, an overloaded or closed
        batcher) still raise exactly as before.
        """
        _REQUESTS.inc()
        t0 = time.perf_counter()
        with trace_span(
            "serve.predict", model=model, n_records=len(records)
        ) as span:
            try:
                result = self._predict_checked(
                    records, model, scenario, timeout, t0
                )
            except Exception:
                _OUTCOMES.inc(outcome="failed")
                raise
            outcome = "degraded" if result["degraded"] else "ok"
            _OUTCOMES.inc(outcome=outcome)
            _LATENCY.observe(time.perf_counter() - t0)
            if span is not None:
                span.set(outcome=outcome)
        return result

    def predict_bulk(
        self,
        records: Sequence[Mapping],
        model: str = "BDT",
        scenario: "ScenarioSpec | Mapping | None" = None,
    ) -> dict[str, Any]:
        """One vectorized predict for a caller-assembled batch.

        The high-volume path behind ``POST /predict/bulk``: the request
        already *is* a batch, so it skips the micro-batcher entirely —
        no queue, no futures, no straggler wait — and calls the
        servable's vectorized predict directly on the calling thread.
        Outputs are bit-identical to :meth:`predict` for the same rows
        (both paths end in the same ``predict_records``); degraded-mode
        fallback and the request/outcome metric invariant behave exactly
        like the single-record path.
        """
        _REQUESTS.inc()
        _BULK.inc()
        _BULK_SIZE.observe(len(records))
        t0 = time.perf_counter()
        with trace_span(
            "serve.predict_bulk", model=model, n_records=len(records)
        ) as span:
            try:
                result = self._predict_checked(
                    records, model, scenario, None, t0, bulk=True
                )
            except Exception:
                _OUTCOMES.inc(outcome="failed")
                raise
            outcome = "degraded" if result["degraded"] else "ok"
            _OUTCOMES.inc(outcome=outcome)
            _LATENCY.observe(time.perf_counter() - t0)
            if span is not None:
                span.set(outcome=outcome)
        return result

    def _predict_checked(
        self,
        records: Sequence[Mapping],
        model: str,
        scenario: "ScenarioSpec | Mapping | None",
        timeout: float | None,
        t0: float,
        bulk: bool = False,
    ) -> dict[str, Any]:
        if not records:
            raise ServeError("predict needs at least one record")
        spec = self.resolve_scenario(scenario)
        self.registry.check_model_name(model)
        try:
            servable = self.registry.get(spec, model)
        except ServiceClosed:
            raise
        except ReproError:
            return self._predict_degraded(spec, records, t0)
        self._validate(records, servable)
        if bulk:
            with self._lock:
                if self._closed:
                    raise ServiceClosed("service is closed")
            # Vectorized predicts are pure reads over the fitted model,
            # so concurrent bulk calls need no serialization.
            values = servable.predict_records(records)
        else:
            batcher = self._batcher(spec, model)
            values = batcher.predict_many(records, timeout=timeout)
        with self._lock:
            self._degraded_active = False
        self.latency.record(time.perf_counter() - t0)
        return {
            "predictions": np.asarray(values, dtype=float),
            "degraded": False,
            "served_by": servable.model_name,
        }

    def _predict_degraded(
        self, spec: ScenarioSpec, records: Sequence[Mapping], t0: float
    ) -> dict[str, Any]:
        """Answer from the mean-power baseline; flag it in the response."""
        servable = self.registry.fallback(spec)
        self._validate(records, servable)  # field checks still apply
        values = servable.predict_records(records)
        with self._lock:
            self.n_degraded += 1
            self._degraded_active = True
        self.latency.record(time.perf_counter() - t0)
        return {
            "predictions": np.asarray(values, dtype=float),
            "degraded": True,
            "served_by": servable.model_name,
        }

    def predict_one(
        self,
        user: str,
        nodes: int,
        req_walltime_s: float,
        model: str = "BDT",
        scenario: "ScenarioSpec | Mapping | None" = None,
    ) -> float:
        """Single-job convenience around :meth:`predict`."""
        return float(
            self.predict(
                [{"user": user, "nodes": nodes, "req_walltime_s": req_walltime_s}],
                model=model,
                scenario=scenario,
            )[0]
        )

    def resolve_scenario(self, scenario) -> ScenarioSpec:
        """The effective spec for a request's optional scenario overlay."""
        if scenario is None:
            return self.scenario
        if isinstance(scenario, Mapping):
            # Overlay: the request names only the fields it changes.
            base = self.scenario.to_dict()
            overlay = dict(scenario)
            if "horizon_s" in overlay:
                base.pop("horizon_days", None)
            return ScenarioSpec.from_dict({**base, **overlay})
        return as_scenario(scenario)

    def warm(self, models: Sequence[str] = ("BDT",)) -> dict[str, str]:
        """Train/load the given models for the default scenario up front.

        Returns ``{model: "ok" | error message}``. A model whose
        training fails (e.g. under an armed ``registry.train`` fault)
        must not keep the service from starting — its requests will be
        served degraded until the registry recovers — so failures are
        reported, not raised. Unknown model names still raise, and a
        closed service still refuses.
        """
        outcome: dict[str, str] = {}
        for model in models:
            self.registry.check_model_name(model)
            try:
                self._batcher(self.scenario, model)
            except ServiceClosed:
                raise
            except ReproError as exc:
                outcome[model] = str(exc)
            else:
                outcome[model] = "ok"
        return outcome

    # -- inspection / lifecycle ------------------------------------------

    @property
    def uptime_s(self) -> float:
        """Seconds since the service object was created."""
        return time.monotonic() - self._started

    @property
    def degraded(self) -> bool:
        """True while the most recent request was baseline-served."""
        with self._lock:
            return self._degraded_active

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` view: liveness plus degraded-mode state."""
        with self._lock:
            degraded = self._degraded_active
            n_degraded = self.n_degraded
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "n_degraded": n_degraded,
            "uptime_s": round(self.uptime_s, 3),
        }

    def stats(self) -> dict[str, Any]:
        """Structured service state: scenario, registry, batchers, latency."""
        with self._lock:
            batchers = {
                f"{model}@{digest[:12]}": b.stats.snapshot()
                for (digest, model), b in self._batchers.items()
            }
        return {
            "scenario": self.scenario.to_dict(),
            "dataset_digest": self.scenario.dataset_digest,
            "uptime_s": round(self.uptime_s, 3),
            "degraded": self.degraded,
            "n_degraded": self.n_degraded,
            "latency": self.latency.snapshot(),
            "registry": self.registry.stats(),
            "models": self.registry.loaded(),
            "batchers": batchers,
            "batching": {
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_s * 1e3,
                "max_queue": self.max_queue,
            },
        }

    def close(self) -> None:
        """Shut every batcher down; further predicts raise ServeError."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batchers = list(self._batchers.values())
        for batcher in batchers:
            batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
