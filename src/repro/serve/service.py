"""The embeddable prediction service: registry + micro-batchers + stats.

:class:`PredictionService` is the piece both the HTTP front-end and
in-process callers (tests, the bench harness, notebooks) drive. It owns

* a :class:`~repro.serve.registry.ModelRegistry` (shared, or private),
* one :class:`~repro.serve.batching.MicroBatcher` per served
  (dataset digest, model, version) triple, created lazily,
* optionally a :class:`~repro.serve.lifecycle.ModelLifecycle` — when
  attached, requests resolve the **active** lineage version through the
  journal, live traffic is **shadow-mirrored** to a registered candidate
  off the hot path, and :meth:`feedback` accepts observed outcomes
  (docs/LIFECYCLE.md), and
* :class:`LatencyStats` — structured per-request latency accounting
  (count, exact mean, and bucket-derived p50/p99 — see
  :class:`repro.obs.metrics.Histogram`).

Every public predict entry point funnels through
:meth:`PredictionService.predict_request` — one
:class:`~repro.serve.api.PredictRequest` in, one
:class:`~repro.serve.api.PredictResponse` out; ``predict`` /
``predict_detailed`` / ``predict_bulk`` are thin coercion shims kept for
existing call sites.

Requests are validated *before* they enter a batch: an unknown user (for
the estimator models, whose category encoders are frozen at fit time)
fails that request alone instead of poisoning the vectorized call its
batch-mates share.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ReproError, ServeError, ServiceClosed
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, REGISTRY, Histogram
from repro.obs.tracing import trace_span
from repro.serve.api import PredictRequest, PredictResponse, as_predict_request
from repro.serve.batching import MicroBatcher
from repro.serve.registry import ModelRegistry
from repro.spec import ScenarioSpec, as_scenario

__all__ = ["LatencyStats", "PredictionService"]

_REQUIRED_FIELDS = ("user", "nodes", "req_walltime_s")

# Serving observability (docs/OBSERVABILITY.md). The conservation
# invariant the chaos auditor checks: every request counted in
# repro_requests_total lands in exactly one outcome series of
# repro_predict_outcomes_total (ok / degraded / failed).
_REQUESTS = REGISTRY.counter(
    "repro_requests_total",
    "Prediction requests submitted to PredictionService.predict*.",
)
_OUTCOMES = REGISTRY.counter(
    "repro_predict_outcomes_total",
    "Prediction request outcomes: ok, degraded (baseline-served), failed.",
    labelnames=("outcome",),
)
_LATENCY = REGISTRY.histogram(
    "repro_request_latency_seconds",
    "End-to-end latency of answered prediction requests.",
    buckets=DEFAULT_LATENCY_BUCKETS,
)
_BULK = REGISTRY.counter(
    "repro_bulk_calls_total",
    "Bulk prediction calls (one vectorized predict per call, no batcher).",
)
_BULK_SIZE = REGISTRY.histogram(
    "repro_bulk_batch_size",
    "Records per bulk prediction call.",
    buckets=(1, 4, 16, 64, 256, 1024, 4096),
)


class LatencyStats:
    """Histogram-backed latency accounting (thread-safe).

    Backed by a private fixed-bucket
    :class:`~repro.obs.metrics.Histogram`: the count and mean are exact
    (lifetime sum/count), p50/p99 are bucket-interpolated estimates —
    the same numbers a Prometheus ``histogram_quantile`` over the
    ``/metrics`` exposition yields. :meth:`snapshot` keeps the record
    shape the ``/healthz`` endpoint and the bench harness report.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self._hist = Histogram(
            "latency_seconds", "per-service request latency", buckets=buckets
        )

    @property
    def count(self) -> int:
        """Lifetime number of recorded requests."""
        return self._hist.count()

    @property
    def total_s(self) -> float:
        """Lifetime sum of recorded request latencies (seconds)."""
        return self._hist.sum()

    def record(self, seconds: float) -> None:
        """Fold one request's wall time in."""
        self._hist.observe(seconds)

    def snapshot(self) -> dict[str, Any]:
        """count / exact mean / bucket-derived p50 and p99 (ms)."""
        count = self._hist.count()
        if count == 0:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0}
        return {
            "count": count,
            "mean_ms": round(self._hist.mean() * 1e3, 3),
            "p50_ms": round(self._hist.quantile(0.50) * 1e3, 3),
            "p99_ms": round(self._hist.quantile(0.99) * 1e3, 3),
        }


class PredictionService:
    """Micro-batched power prediction for one default scenario.

    Parameters
    ----------
    scenario:
        The default :class:`~repro.spec.ScenarioSpec` requests are
        answered against (anything :func:`repro.spec.as_scenario`
        accepts). Individual requests may override it.
    registry:
        Share a :class:`ModelRegistry` across services, or let the
        service build its own against ``cache_dir``.
    max_batch / max_wait_s / max_queue:
        Batching knobs, passed to every per-model
        :class:`~repro.serve.batching.MicroBatcher`.
    lifecycle:
        An optional :class:`~repro.serve.lifecycle.ModelLifecycle` for
        the same scenario (and sharing this service's registry). When
        set, requests without an explicit ``version`` serve the
        journal's active version, live responses are mirrored to the
        shadow candidate, and :meth:`feedback` ingests outcomes.
    """

    def __init__(
        self,
        scenario: "ScenarioSpec | Mapping | str" = "emmy",
        registry: ModelRegistry | None = None,
        cache_dir=None,
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        max_queue: int = 4096,
        lifecycle=None,
    ) -> None:
        self.scenario = as_scenario(scenario)
        self.registry = registry or ModelRegistry(cache_dir=cache_dir)
        self.lifecycle = lifecycle
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self.latency = LatencyStats()
        self._batchers: dict[tuple[str, str, int], MicroBatcher] = {}
        self._shadow_pending: set[tuple[str, str, int]] = set()
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._closed = False
        self.n_degraded = 0  # lifetime count of fallback-served requests
        self._degraded_active = False  # was the most recent request degraded?

    # -- plumbing --------------------------------------------------------

    def _batcher(
        self, spec: ScenarioSpec, model: str, version: int = 1
    ) -> MicroBatcher:
        """The lazily created batcher for one (scenario, model, version)."""
        # Outside our lock: may train (v1) or load a snapshot artifact.
        servable = self.registry.get(spec, model, version=version)
        key = (spec.dataset_digest, model, version)
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            batcher = self._batchers.get(key)
            if batcher is None:
                suffix = f".v{version}" if version != 1 else ""
                batcher = MicroBatcher(
                    servable.predict_records,
                    max_batch=self.max_batch,
                    max_wait_s=self.max_wait_s,
                    max_queue=self.max_queue,
                    name=f"{model}{suffix}@{key[0][:8]}",
                )
                self._batchers[key] = batcher
            return batcher

    def _resolve_version(self, spec: ScenarioSpec, model: str, explicit) -> int:
        """The lineage version a request serves from.

        An explicit request version wins; otherwise the lifecycle
        journal's active pointer (for the service's own scenario — an
        overlayed scenario has no lifecycle state and serves version 1).
        """
        if explicit is not None:
            return self.registry.check_version(explicit)
        if (
            self.lifecycle is not None
            and spec.dataset_digest == self.scenario.dataset_digest
        ):
            return self.lifecycle.active_version(model)
        return 1

    @staticmethod
    def _check_model_scenario(spec: ScenarioSpec, model: str) -> None:
        """Reject track models on systems that don't model their target.

        A caller mistake (a 400, not a degrade case): answering a GPU
        board-power request for emmy from the CPU mean-power baseline
        would be silently wrong, so it fails loudly instead.
        """
        if model not in ("GPU", "FAIL"):
            return
        from repro.cluster import get_spec

        system = get_spec(spec.system)
        if model == "GPU" and not system.has_gpus:
            raise ServeError(
                f"model 'GPU' needs a GPU system; {spec.system!r} has no "
                "GPUs (see docs/SCENARIOS.md)"
            )
        if model == "FAIL" and system.workload_profile == "hpc":
            raise ServeError(
                f"model 'FAIL' needs a failure-modeling system; "
                f"{spec.system!r} runs the HPC profile (see docs/SCENARIOS.md)"
            )

    @staticmethod
    def _required_fields(servable) -> tuple[str, ...]:
        """The record fields this servable's features need.

        Estimator servables expose their fitted
        :class:`~repro.ml.FeatureSpec` — the GPU track adds ``gpus``
        there, so its requests require it; baseline/online servables
        fall back to the classic three fields.
        """
        spec = getattr(servable, "feature_spec", None)
        if spec is None:
            return _REQUIRED_FIELDS
        from repro.ml import prediction_features

        return tuple(prediction_features(spec))

    def _validate(self, records: Sequence[Mapping], servable) -> None:
        required = self._required_fields(servable)
        spec = getattr(servable, "feature_spec", None)
        numeric = list(
            spec.numeric_columns if spec is not None else ("nodes", "req_walltime_s")
        )
        for i, record in enumerate(records):
            missing = [f for f in required if f not in record]
            if missing:
                raise ServeError(f"request {i} lacks fields {missing}")
            try:
                values = {f: float(record[f]) for f in numeric}
            except (TypeError, ValueError):
                raise ServeError(
                    f"request {i}: fields {numeric} must be numeric"
                ) from None
            if "nodes" in values and values["nodes"] < 1:
                raise ServeError(f"request {i}: nodes must be >= 1")
            if "req_walltime_s" in values and values["req_walltime_s"] <= 0:
                raise ServeError(f"request {i}: req_walltime_s must be positive")
            if "gpus" in values and values["gpus"] < 0:
                raise ServeError(f"request {i}: gpus must be >= 0")
        known = servable.known_users
        if known is not None:
            unknown = sorted(
                {str(r["user"]) for r in records} - known
            )
            if unknown:
                raise ServeError(
                    f"unknown user(s) {unknown[:5]} for model "
                    f"{servable.model_name!r}; the online model accepts any user"
                )

    # -- request surface -------------------------------------------------

    def predict_request(
        self, request: Any = None, /, **kwargs: Any
    ) -> PredictResponse:
        """The one predict entry point: request object in, response out.

        Accepts anything :func:`~repro.serve.api.as_predict_request`
        coerces (an existing :class:`~repro.serve.api.PredictRequest`, a
        mapping, or ``records=... model=...`` keywords). ``batched``
        mode submits each record to the coalescing micro-batcher;
        ``bulk`` answers the caller-assembled batch with one vectorized
        call on the calling thread — bit-identical outputs for the same
        rows. When the registry cannot produce the requested model
        (training keeps failing under faults), the request is answered
        by the mean-power baseline and flagged ``degraded`` instead of
        erroring — caller mistakes (unknown model/user, malformed
        fields, an overloaded or closed batcher) still raise.
        """
        request = as_predict_request(request, **kwargs)
        _REQUESTS.inc()
        bulk = request.mode == "bulk"
        if bulk:
            _BULK.inc()
            _BULK_SIZE.observe(len(request))
        t0 = time.perf_counter()
        span_name = "serve.predict_bulk" if bulk else "serve.predict"
        with trace_span(
            span_name, model=request.model, n_records=len(request)
        ) as span:
            try:
                result = self._predict_checked(request, t0)
            except Exception:
                _OUTCOMES.inc(outcome="failed")
                raise
            outcome = "degraded" if result.degraded else "ok"
            _OUTCOMES.inc(outcome=outcome)
            _LATENCY.observe(time.perf_counter() - t0)
            if span is not None:
                span.set(outcome=outcome)
        return result

    def predict(
        self,
        records: Sequence[Mapping],
        model: str = "BDT",
        scenario: "ScenarioSpec | Mapping | None" = None,
        timeout: float | None = 30.0,
    ) -> np.ndarray:
        """Micro-batched predictions for request-order ``records``.

        Coercion shim over :meth:`predict_request`: each record is
        submitted individually, so concurrent callers' single-job
        requests coalesce into shared vectorized calls. ``scenario``
        overrides the service default for this request only (a mapping
        overlays just the fields it names).
        """
        return self.predict_request(
            records, model=model, scenario=scenario, timeout=timeout
        ).predictions

    def predict_detailed(
        self,
        records: Sequence[Mapping],
        model: str = "BDT",
        scenario: "ScenarioSpec | Mapping | None" = None,
        timeout: float | None = 30.0,
    ) -> PredictResponse:
        """:meth:`predict` plus degraded-mode accounting (shim).

        Returns a :class:`~repro.serve.api.PredictResponse`, which also
        reads like the legacy ``{"predictions", "degraded",
        "served_by"}`` dict.
        """
        return self.predict_request(
            records, model=model, scenario=scenario, timeout=timeout
        )

    def predict_bulk(
        self,
        records: Sequence[Mapping],
        model: str = "BDT",
        scenario: "ScenarioSpec | Mapping | None" = None,
    ) -> PredictResponse:
        """One vectorized predict for a caller-assembled batch (shim).

        The high-volume path behind ``POST /predict/bulk``: the request
        already *is* a batch, so it skips the micro-batcher entirely —
        no queue, no futures, no straggler wait.
        """
        return self.predict_request(
            records, model=model, scenario=scenario, mode="bulk"
        )

    def _predict_checked(self, request: PredictRequest, t0: float) -> PredictResponse:
        records = request.records
        model = request.model
        if not records:
            raise ServeError("predict needs at least one record")
        spec = self.resolve_scenario(request.scenario)
        self.registry.check_model_name(model)
        self._check_model_scenario(spec, model)
        version = self._resolve_version(spec, model, request.version)
        try:
            servable = self.registry.get(spec, model, version=version)
        except ServiceClosed:
            raise
        except ReproError:
            if request.version is not None:
                # The caller pinned a version that cannot be served —
                # that's their mistake (400), not a degrade case.
                raise
            return self._predict_degraded(request, spec, t0)
        self._validate(records, servable)
        if request.mode == "bulk":
            with self._lock:
                if self._closed:
                    raise ServiceClosed("service is closed")
            # Vectorized predicts are pure reads over the fitted model,
            # so concurrent bulk calls need no serialization.
            values = servable.predict_records(records)
        else:
            batcher = self._batcher(spec, model, version)
            values = batcher.predict_many(records, timeout=request.timeout)
        with self._lock:
            self._degraded_active = False
        self.latency.record(time.perf_counter() - t0)
        values = np.asarray(values, dtype=float)
        self._maybe_mirror(spec, model, version, records, values)
        return PredictResponse(
            predictions=values,
            degraded=False,
            served_by=servable.model_name,
            model=model,
            version=version,
        )

    def _predict_degraded(
        self, request: PredictRequest, spec: ScenarioSpec, t0: float
    ) -> PredictResponse:
        """Answer from the mean-power baseline; flag it in the response."""
        servable = self.registry.fallback(spec)
        self._validate(request.records, servable)  # field checks still apply
        values = servable.predict_records(request.records)
        with self._lock:
            self.n_degraded += 1
            self._degraded_active = True
        self.latency.record(time.perf_counter() - t0)
        return PredictResponse(
            predictions=np.asarray(values, dtype=float),
            degraded=True,
            served_by=servable.model_name,
            model=request.model,
            version=1,
        )

    # -- shadow evaluation (docs/LIFECYCLE.md) ---------------------------

    def _maybe_mirror(
        self,
        spec: ScenarioSpec,
        model: str,
        version: int,
        records: Sequence[Mapping],
        values: np.ndarray,
    ) -> None:
        """Mirror a live response to the shadow candidate, off the hot path.

        Strictly fire-and-forget: records are enqueued on the
        *candidate's* micro-batcher (never the live one) and the paired
        live/candidate deltas are folded in by done-callbacks on the
        candidate batcher's worker thread. If the candidate's batcher
        does not exist yet, it is built by a background thread and this
        request's mirror is skipped — the live path never trains, loads,
        or waits for a shadow model. Failures only ever count drops.
        """
        lifecycle = self.lifecycle
        if lifecycle is None:
            return
        try:
            if spec.dataset_digest != self.scenario.dataset_digest:
                return
            candidate = lifecycle.candidate_version(model)
            if candidate is None or candidate == version:
                return
            key = (spec.dataset_digest, model, candidate)
            with self._lock:
                batcher = self._batchers.get(key)
                if batcher is None:
                    if self._closed or key in self._shadow_pending:
                        return
                    self._shadow_pending.add(key)
            if batcher is None:
                threading.Thread(
                    target=self._prepare_shadow,
                    args=(spec, model, candidate, key),
                    name=f"shadow-warm-{model}-v{candidate}",
                    daemon=True,
                ).start()
                return
            for record, live in zip(records, values):
                try:
                    future = batcher.submit(record)
                except ReproError:
                    lifecycle.count_shadow_drop(model)
                    continue
                future.add_done_callback(
                    functools.partial(lifecycle.record_shadow, model, float(live))
                )
        except Exception:  # noqa: BLE001 — shadowing must never break live
            pass

    def _prepare_shadow(self, spec, model, version, key) -> None:
        """Background build of a shadow candidate's batcher (loads artifact)."""
        try:
            self._batcher(spec, model, version)
        except Exception:  # noqa: BLE001 — a missing snapshot just drops
            if self.lifecycle is not None:
                self.lifecycle.count_shadow_drop(model)
        finally:
            with self._lock:
                self._shadow_pending.discard(key)

    def feedback(self, records: Sequence[Mapping]) -> dict[str, Any]:
        """Ingest observed job outcomes through the lifecycle layer.

        Raises :class:`~repro.errors.ServeError` when the service was
        built without a lifecycle (docs/LIFECYCLE.md).
        """
        if self.lifecycle is None:
            raise ServeError(
                "feedback needs a lifecycle-enabled service "
                "(pass lifecycle= or serve with --lifecycle)"
            )
        return self.lifecycle.feedback(records)

    def predict_one(
        self,
        user: str,
        nodes: int,
        req_walltime_s: float,
        model: str = "BDT",
        scenario: "ScenarioSpec | Mapping | None" = None,
    ) -> float:
        """Single-job convenience around :meth:`predict`."""
        return float(
            self.predict(
                [{"user": user, "nodes": nodes, "req_walltime_s": req_walltime_s}],
                model=model,
                scenario=scenario,
            )[0]
        )

    def resolve_scenario(self, scenario) -> ScenarioSpec:
        """The effective spec for a request's optional scenario overlay."""
        if scenario is None:
            return self.scenario
        if isinstance(scenario, Mapping):
            # Overlay: the request names only the fields it changes.
            base = self.scenario.to_dict()
            overlay = dict(scenario)
            if "horizon_s" in overlay:
                base.pop("horizon_days", None)
            return ScenarioSpec.from_dict({**base, **overlay})
        return as_scenario(scenario)

    def warm(self, models: Sequence[str] = ("BDT",)) -> dict[str, str]:
        """Train/load the given models for the default scenario up front.

        Returns ``{model: "ok" | error message}``. A model whose
        training fails (e.g. under an armed ``registry.train`` fault)
        must not keep the service from starting — its requests will be
        served degraded until the registry recovers — so failures are
        reported, not raised. Unknown model names still raise, and a
        closed service still refuses.
        """
        outcome: dict[str, str] = {}
        for model in models:
            self.registry.check_model_name(model)
            try:
                version = self._resolve_version(self.scenario, model, None)
                self._batcher(self.scenario, model, version)
            except ServiceClosed:
                raise
            except ReproError as exc:
                outcome[model] = str(exc)
            else:
                outcome[model] = "ok"
        return outcome

    # -- inspection / lifecycle ------------------------------------------

    @property
    def uptime_s(self) -> float:
        """Seconds since the service object was created."""
        return time.monotonic() - self._started

    @property
    def degraded(self) -> bool:
        """True while the most recent request was baseline-served."""
        with self._lock:
            return self._degraded_active

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` view: liveness plus degraded-mode state."""
        with self._lock:
            degraded = self._degraded_active
            n_degraded = self.n_degraded
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "n_degraded": n_degraded,
            "uptime_s": round(self.uptime_s, 3),
        }

    def stats(self) -> dict[str, Any]:
        """Structured service state: scenario, registry, batchers, latency."""
        with self._lock:
            batchers = {
                f"{model}{f'.v{version}' if version != 1 else ''}@{digest[:12]}":
                    b.stats.snapshot()
                for (digest, model, version), b in self._batchers.items()
            }
        return {
            "scenario": self.scenario.to_dict(),
            "dataset_digest": self.scenario.dataset_digest,
            "uptime_s": round(self.uptime_s, 3),
            "degraded": self.degraded,
            "n_degraded": self.n_degraded,
            "latency": self.latency.snapshot(),
            "registry": self.registry.stats(),
            "models": self.registry.loaded(),
            "batchers": batchers,
            "batching": {
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_s * 1e3,
                "max_queue": self.max_queue,
            },
            "lifecycle": (
                self.lifecycle.summary() if self.lifecycle is not None else None
            ),
        }

    def lineage_stats(self) -> dict[str, Any]:
        """The ``/v1/models`` payload: per-model lineage + shadow state.

        With a lifecycle attached this is journal-derived (active
        pointer, registered versions, candidate, shadow evidence, drift
        latch); without one it reduces to the warm registry view with
        everything at version 1.
        """
        if self.lifecycle is not None:
            models = self.lifecycle.lineage()
            lifecycle = self.lifecycle.summary()
        else:
            warm = {
                (row["dataset_digest"], row["model"]): row
                for row in self.registry.loaded()
            }
            models = [
                {
                    "model": model,
                    "active": 1,
                    "versions": [1],
                    "candidate": None,
                    "trained_at_key": self.registry.model_key(
                        self.scenario, model, 1
                    ),
                    "shadow": None,
                    "drift": False,
                    "warm": (self.scenario.dataset_digest, model) in warm,
                }
                for model in sorted(
                    {m for (_d, m, _v) in self._batchers}
                    | {row["model"] for row in self.registry.loaded()}
                )
            ]
            lifecycle = None
        return {
            "scenario": self.scenario.to_dict(),
            "dataset_digest": self.scenario.dataset_digest,
            "models": models,
            "lifecycle": lifecycle,
        }

    def close(self) -> None:
        """Shut every batcher down; further predicts raise ServeError."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batchers = list(self._batchers.values())
        for batcher in batchers:
            batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
