"""Chunked telemetry sampling for the streaming pipeline.

:class:`TelemetryStream` is :func:`repro.telemetry.dataset.sample_telemetry`
split along chunk boundaries: the two generator streams (aggregates and
traces) are created once and *continued* across chunks, and the global
trace-budget counter is carried over — so concatenating the per-chunk
samples reproduces the monolithic sample bit for bit. (``standard_normal``
generates element-wise from the PCG64 stream, so one draw of ``a + b``
normals equals a draw of ``a`` followed by a draw of ``b``.)

The stream's :meth:`state`/:meth:`restore_state` round-trips the raw
``bit_generator.state`` dicts, which is what lets an interrupted
streaming run resume from its last spilled chunk without replaying the
earlier ones (see :mod:`repro.pipeline.stream`).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cluster.system import Cluster
from repro.rng import RngFactory
from repro.scheduler.job import ScheduledJob
from repro.telemetry.dataset import TelemetrySample
from repro.telemetry.sampler import GpuSampler, PowerSampler
from repro.telemetry.trace import JobPowerTrace
from repro.units import MINUTE
from repro.workload.applications import KEY_APPS

__all__ = ["TelemetryStream"]


class TelemetryStream:
    """Samples telemetry for a scheduled-job stream, one chunk at a time."""

    def __init__(
        self, cluster: Cluster, horizon_s: int, seed: int = 0, max_traces: int = 2000
    ) -> None:
        self.cluster = cluster
        self.horizon_s = int(horizon_s)
        self.max_traces = max_traces
        rngs = RngFactory(seed).child(f"telemetry.{cluster.name}")
        self._sampler = PowerSampler(cluster, rngs.get("aggregate"))
        self._trace_sampler = PowerSampler(cluster, rngs.get("traces"))
        # The GPU stream mirrors sample_telemetry: its own child stream,
        # created only on GPU systems, continued across chunks.
        self._gpu_sampler = (
            GpuSampler(cluster, rngs.get("gpu")) if cluster.spec.has_gpus else None
        )
        self._window_lo = 0.30 * self.horizon_s
        self._window_hi = min(self.horizon_s, self._window_lo + self.horizon_s / 5.0)
        self._n_traces = 0
        self._n_gaps = 0

    @property
    def n_traces(self) -> int:
        """Instrumented traces sampled so far (the global budget counter)."""
        return self._n_traces

    @property
    def n_gaps(self) -> int:
        """Dropped-then-gap-filled samples so far, across all chunks."""
        return self._n_gaps

    def sample_chunk(self, scheduled: list[ScheduledJob]) -> TelemetrySample:
        """Sample the next chunk of the job stream (may be empty).

        Mirrors :func:`~repro.telemetry.dataset.sample_telemetry` exactly;
        an empty chunk consumes no generator draws, matching the fused
        batch path's behaviour on a zero-length slice.
        """
        sampler = self._sampler
        pernode_power, power_sum = sampler.sample_aggregate_batch(scheduled)
        gap_idx = np.nonzero(np.isnan(pernode_power))[0]
        for i in gap_idx:
            pernode_power[i], power_sum[i] = sampler.nominal_aggregate(scheduled[i])
        m = len(scheduled)
        runtimes = np.fromiter(
            (job.spec.runtime_s for job in scheduled), dtype=float, count=m
        )
        energy = power_sum * runtimes
        instrumented = np.zeros(m, dtype=bool)
        is_debug = np.fromiter(
            (job.spec.is_debug for job in scheduled), dtype=bool, count=m
        )

        traces: dict[int, JobPowerTrace] = {}
        trace_allocations: dict[int, np.ndarray] = {}
        key_apps = set(KEY_APPS)
        for i, job in enumerate(scheduled):
            spec = job.spec
            if (
                self._n_traces < self.max_traces
                and spec.app in key_apps
                and spec.nodes >= 2
                and spec.runtime_s >= 20 * MINUTE
                and self._window_lo <= job.start_s < self._window_hi
            ):
                matrix = self._trace_sampler.sample_matrix(job)
                traces[spec.job_id] = JobPowerTrace(
                    job_id=spec.job_id,
                    user_id=spec.user_id,
                    app=spec.app,
                    system=spec.system,
                    matrix=matrix,
                )
                trace_allocations[spec.job_id] = job.node_ids.copy()
                instrumented[i] = True
                self._n_traces += 1

        gpu_power = gpu_count = None
        if self._gpu_sampler is not None:
            gpu_power, gpu_count = self._gpu_sampler.sample_batch(scheduled)

        self._n_gaps += int(len(gap_idx))
        return TelemetrySample(
            pernode_power=pernode_power,
            power_sum=power_sum,
            energy=energy,
            instrumented=instrumented,
            is_debug=is_debug,
            traces=traces,
            trace_allocations=trace_allocations,
            n_gaps=int(len(gap_idx)),
            gpu_power=gpu_power,
            gpu_count=gpu_count,
        )

    # -- checkpointing ---------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Picklable checkpoint: every generator stream plus the counters."""
        state = {
            "aggregate": self._sampler._rng.bit_generator.state,
            "traces": self._trace_sampler._rng.bit_generator.state,
            "n_traces": self._n_traces,
            "n_gaps": self._n_gaps,
        }
        if self._gpu_sampler is not None:
            state["gpu"] = self._gpu_sampler._rng.bit_generator.state
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        """Continue exactly where :meth:`state` was captured.

        Checkpoints written before the GPU substrate lack the ``"gpu"``
        key; those runs are CPU-only, where the stream doesn't exist.
        """
        self._sampler._rng.bit_generator.state = state["aggregate"]
        self._trace_sampler._rng.bit_generator.state = state["traces"]
        if self._gpu_sampler is not None and "gpu" in state:
            self._gpu_sampler._rng.bit_generator.state = state["gpu"]
        self._n_traces = state["n_traces"]
        self._n_gaps = state["n_gaps"]
