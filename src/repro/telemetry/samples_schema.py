"""Time-resolved node-sample schema (the dataset's second table).

The paper's release contains not only job-level aggregates but
time-resolved node samples for the instrumented month. This module
round-trips that table: one row per (job, node, minute) with the
measured watts, plus reconstruction of :class:`JobPowerTrace` matrices
from the flat table — so a consumer of the published CSVs can rebuild
every temporal/spatial analysis without the simulator.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import SchemaError
from repro.frames import Table, read_csv, read_npz, write_csv, write_npz
from repro.telemetry.dataset import JobDataset
from repro.telemetry.trace import JobPowerTrace

__all__ = [
    "SAMPLE_COLUMNS",
    "samples_table",
    "validate_samples",
    "traces_from_samples",
    "save_samples",
    "load_samples",
]

SAMPLE_COLUMNS: dict[str, str] = {
    "job_id": "i",
    "node_id": "i",   # physical node id (cluster-wide)
    "node_rank": "i",  # rank of the node within the job (matrix row)
    "minute": "i",    # minute offset from job start
    "power_w": "f",
}


def samples_table(dataset: JobDataset) -> Table:
    """Flatten every instrumented trace into one (job, node, minute) table."""
    if not dataset.traces:
        raise SchemaError("dataset has no instrumented traces to flatten")
    job_ids, node_ids, ranks, minutes, power = [], [], [], [], []
    for job_id, trace in dataset.traces.items():
        n, m = trace.matrix.shape
        allocation = dataset.trace_allocations.get(job_id)
        physical = (
            np.asarray(allocation, dtype=np.int64)
            if allocation is not None
            else np.arange(n, dtype=np.int64)
        )
        job_ids.append(np.full(n * m, job_id, dtype=np.int64))
        node_ids.append(np.repeat(physical, m))
        ranks.append(np.repeat(np.arange(n, dtype=np.int64), m))
        minutes.append(np.tile(np.arange(m, dtype=np.int64), n))
        power.append(trace.matrix.ravel())
    return Table(
        {
            "job_id": np.concatenate(job_ids),
            "node_id": np.concatenate(node_ids),
            "node_rank": np.concatenate(ranks),
            "minute": np.concatenate(minutes),
            "power_w": np.concatenate(power),
        }
    )


def validate_samples(samples: Table) -> None:
    """Raise :class:`SchemaError` unless ``samples`` matches the schema."""
    missing = [c for c in SAMPLE_COLUMNS if c not in samples]
    if missing:
        raise SchemaError(f"sample table is missing columns {missing}")
    for name, kind in SAMPLE_COLUMNS.items():
        if samples[name].dtype.kind != kind:
            raise SchemaError(
                f"column {name!r} has dtype kind {samples[name].dtype.kind!r}, "
                f"expected {kind!r}"
            )
    if len(samples) and np.any(samples["power_w"] < 0):
        raise SchemaError("power_w must be non-negative")


def traces_from_samples(
    samples: Table, jobs: Table | None = None
) -> tuple[dict[int, JobPowerTrace], dict[int, np.ndarray]]:
    """Rebuild trace matrices (and allocations) from a flat sample table.

    ``jobs`` (optional, the job-level table) supplies user/app identity;
    without it those fields are filled with placeholders.
    """
    validate_samples(samples)
    identity: dict[int, tuple[str, str, str]] = {}
    if jobs is not None:
        for jid, user, app, system in zip(
            jobs["job_id"].tolist(), jobs["user"].tolist(),
            jobs["app"].tolist(), jobs["system"].tolist(),
        ):
            identity[int(jid)] = (user, app, system)

    traces: dict[int, JobPowerTrace] = {}
    allocations: dict[int, np.ndarray] = {}
    grouped = samples.group_by("job_id")
    keys = grouped.keys
    for job_idx, row_idx in zip(range(grouped.num_groups), grouped.indices()):
        job_id = int(keys["job_id"][job_idx])
        sub = samples.take(row_idx)
        n = int(sub["node_rank"].max()) + 1
        m = int(sub["minute"].max()) + 1
        if len(sub) != n * m:
            raise SchemaError(
                f"job {job_id}: expected {n * m} samples, got {len(sub)}"
            )
        matrix = np.empty((n, m))
        matrix[sub["node_rank"], sub["minute"]] = sub["power_w"]
        order = np.argsort(sub["node_rank"], kind="stable")
        physical = np.empty(n, dtype=np.int64)
        physical[sub["node_rank"]] = sub["node_id"]
        user, app, system = identity.get(job_id, ("unknown", "unknown", "unknown"))
        traces[job_id] = JobPowerTrace(
            job_id=job_id, user_id=user, app=app, system=system, matrix=matrix
        )
        allocations[job_id] = physical
    return traces, allocations


def save_samples(samples: Table, path: str | os.PathLike) -> None:
    """Write the sample table (CSV or NPZ, by suffix)."""
    validate_samples(samples)
    path = Path(path)
    if path.suffix == ".csv":
        write_csv(samples, path)
    elif path.suffix == ".npz":
        write_npz(samples, path)
    else:
        raise SchemaError(f"unsupported suffix {path.suffix!r} (use .csv or .npz)")


def load_samples(path: str | os.PathLike) -> Table:
    path = Path(path)
    samples = read_csv(path) if path.suffix == ".csv" else read_npz(path)
    validate_samples(samples)
    return samples
