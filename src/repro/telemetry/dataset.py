"""End-to-end dataset assembly: generate → schedule → sample → join.

:func:`generate_dataset` is the package's one-stop pipeline. It returns
a :class:`JobDataset` holding

* ``jobs`` — one row per job: accounting records joined with measured
  power aggregates (the paper's "overall averages across the runtime and
  nodes of a job"),
* ``traces`` — full node×minute matrices for an instrumented subset of
  key applications (the paper logged these for one month), and
* per-minute system timelines of active nodes and drawn power, feeding
  the Fig 1 / Fig 2 analyses.

The pipeline is factored into the four stages :mod:`repro.pipeline`
caches independently (see docs/PIPELINE.md):

1. **workload** — :func:`build_inputs` + :meth:`WorkloadGenerator.generate`
2. **schedule** — :func:`repro.scheduler.simulate`
3. **telemetry** — :func:`sample_telemetry` (RAPL sampling, instrumented
   traces)
4. **dataset** — :func:`join_dataset` (accounting join + system timelines)

:func:`assemble` remains the one-call combination of stages 3 + 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.specs import SystemSpec, get_spec
from repro.cluster.system import Cluster
from repro.cluster.variability import VariabilityModel
from repro.errors import TelemetryError
from repro.frames import Table
from repro.rng import RngFactory
from repro.scheduler import accounting_table, simulate
from repro.scheduler.job import ScheduledJob
from repro.telemetry.sampler import GpuSampler, PowerSampler
from repro.telemetry.trace import JobPowerTrace
from repro.units import MINUTE
from repro.workload.applications import KEY_APPS
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadParams,
    default_params,
)

__all__ = [
    "JobDataset",
    "TelemetrySample",
    "build_inputs",
    "sample_telemetry",
    "join_jobs",
    "join_dataset",
    "assemble",
    "generate_dataset",
]

# RAPL floor of an allocated-but-unloaded or unallocated node, as used by
# the node model (kept in sync with repro.cluster.node._IDLE_FRACTION).
_IDLE_FRACTION = 0.22


@dataclass
class JobDataset:
    """The joined dataset all analyses consume."""

    spec: SystemSpec
    jobs: Table
    traces: dict[int, JobPowerTrace]
    horizon_s: int
    active_nodes: np.ndarray  # per-minute allocated node count
    job_power_watts: np.ndarray  # per-minute power drawn by running jobs
    # Physical node ids of each instrumented job (job_id -> array); used
    # by the fleet-wide spatial diagnostics (repro.analysis.stragglers).
    trace_allocations: dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.active_nodes) != len(self.job_power_watts):
            raise TelemetryError("timeline arrays must have equal length")

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_minutes(self) -> int:
        return len(self.active_nodes)

    @property
    def idle_node_watts(self) -> float:
        return _IDLE_FRACTION * self.spec.node_tdp_watts

    def total_power_watts(self) -> np.ndarray:
        """Per-minute draw of *all* compute nodes (idle nodes still draw)."""
        inactive = np.maximum(self.spec.num_nodes - self.active_nodes, 0)
        return self.job_power_watts + inactive * self.idle_node_watts

    def trace_table(self) -> Table:
        """Per-instrumented-job dynamic metrics as a table."""
        traces = list(self.traces.values())
        return Table(
            {
                "job_id": np.asarray([t.job_id for t in traces], dtype=np.int64),
                "user": np.asarray([t.user_id for t in traces], dtype=str),
                "app": np.asarray([t.app for t in traces], dtype=str),
                "pernode_power_w": np.asarray([t.per_node_power() for t in traces]),
                "temporal_cov": np.asarray([t.temporal_cov() for t in traces]),
                "peak_overshoot": np.asarray([t.peak_overshoot() for t in traces]),
                "frac_time_above_10pct": np.asarray(
                    [t.fraction_time_above(0.10) for t in traces]
                ),
                "avg_spatial_spread_w": np.asarray(
                    [t.avg_spatial_spread() for t in traces]
                ),
                "spatial_spread_frac": np.asarray(
                    [t.spatial_spread_fraction() for t in traces]
                ),
                "frac_time_spread_above_avg": np.asarray(
                    [t.fraction_time_spread_above_average() for t in traces]
                ),
                "energy_imbalance_frac": np.asarray(
                    [t.energy_imbalance_fraction() for t in traces]
                ),
            }
        )


@dataclass
class TelemetrySample:
    """Per-job sampled power aggregates plus the instrumented traces.

    This is the output of the **telemetry** pipeline stage
    (:func:`sample_telemetry`): everything the monitoring system
    measured, before it is joined with the batch system's accounting
    records by :func:`join_dataset`. All arrays are indexed by position
    in the scheduled-job list they were sampled from.
    """

    pernode_power: np.ndarray  # mean watts per node over the runtime
    power_sum: np.ndarray  # summed node watts (the job's draw while running)
    energy: np.ndarray  # total joules over the runtime
    instrumented: np.ndarray  # bool: has a time-resolved trace
    is_debug: np.ndarray  # bool: debug / pre-post-processing job
    traces: dict[int, JobPowerTrace]
    trace_allocations: dict[int, np.ndarray]
    # Samples the monitor dropped (faults, outages) and the stage had to
    # gap-fill with the deterministic noise-free level. Older cached
    # pickles lack the field — read it as ``getattr(s, "n_gaps", 0)``.
    n_gaps: int = 0
    # GPU-side measurements (repro.telemetry.sampler.GpuSampler), only
    # on systems with accelerators; None elsewhere — and on older
    # cached pickles, which resolve these through the class defaults.
    gpu_power: np.ndarray | None = None  # summed board watts per job
    gpu_count: np.ndarray | None = None  # allocated boards per job

    def __post_init__(self) -> None:
        n = len(self.pernode_power)
        for name in ("power_sum", "energy", "instrumented", "is_debug"):
            if len(getattr(self, name)) != n:
                raise TelemetryError(f"telemetry array {name!r} has mismatched length")
        for name in ("gpu_power", "gpu_count"):
            value = getattr(self, name)
            if value is not None and len(value) != n:
                raise TelemetryError(f"telemetry array {name!r} has mismatched length")

    @property
    def num_jobs(self) -> int:
        return len(self.pernode_power)


def build_inputs(
    system: str,
    seed: int = 0,
    num_nodes: int | None = None,
    num_users: int | None = None,
    horizon_s: int | None = None,
    params_overrides: dict | None = None,
    variability_sigma: float | None = None,
) -> tuple[Cluster, WorkloadParams]:
    """Construct the (cluster, workload params) pair the pipeline shares.

    Every stage of the pipeline derives from these two objects plus the
    seed; factoring their construction out guarantees the staged runner
    (:mod:`repro.pipeline`) and the one-shot :func:`generate_dataset`
    build byte-identical datasets for the same configuration.
    """
    if variability_sigma is None:
        cluster = Cluster.from_name(system, seed=seed, num_nodes=num_nodes)
    else:
        cluster = Cluster(
            get_spec(system), seed=seed, num_nodes=num_nodes,
            variability=VariabilityModel(sigma=variability_sigma),
        )
    params = default_params(system, num_users=num_users, horizon_s=horizon_s)
    if params_overrides:
        params = replace(params, **params_overrides)
    return cluster, params


def generate_dataset(
    system: str = "emmy",
    seed: int = 0,
    num_nodes: int | None = None,
    num_users: int | None = None,
    horizon_s: int | None = None,
    max_traces: int = 2000,
    backfill_depth: int = 100,
    params_overrides: dict | None = None,
    variability_sigma: float | None = None,
) -> JobDataset:
    """Run the full pipeline for one system.

    Parameters
    ----------
    system:
        Any registered system name (:func:`repro.cluster.known_systems`):
        the paper's ``"emmy"``/``"meggie"`` or the heterogeneous
        ``"alex"``/``"woody"`` (docs/SCENARIOS.md).
    num_nodes, num_users, horizon_s:
        Scale-down overrides for tests/benches; defaults reproduce the
        full 5-month production configuration.
    max_traces:
        Size cap of the instrumented (time-resolved) subset.
    params_overrides:
        Extra :class:`~repro.workload.generator.WorkloadParams` fields to
        replace (ablation knobs like ``temporal_mode``/``spatial_scale``).
    variability_sigma:
        Override the manufacturing-variability sigma (0 disables it).

    .. note::
       :func:`repro.pipeline.build_dataset` is a drop-in replacement that
       caches each stage on disk, so repeated builds of the same
       configuration are near-instant.
    """
    cluster, params = build_inputs(
        system, seed=seed, num_nodes=num_nodes, num_users=num_users,
        horizon_s=horizon_s, params_overrides=params_overrides,
        variability_sigma=variability_sigma,
    )
    generator = WorkloadGenerator(params, cluster.num_nodes, seed=seed)
    specs = generator.generate()
    scheduled = simulate(specs, cluster.num_nodes, backfill_depth=backfill_depth)
    return assemble(cluster, scheduled, params.horizon_s, seed=seed, max_traces=max_traces)


def sample_telemetry(
    cluster: Cluster,
    scheduled: list[ScheduledJob],
    horizon_s: int,
    seed: int = 0,
    max_traces: int = 2000,
) -> TelemetrySample:
    """The monitoring system's view of a scheduled job stream.

    Samples RAPL aggregates for every job and full node×minute matrices
    for an instrumented subset of key-app, multi-node, non-trivial-length
    jobs inside a one-month window (the paper's time-resolved logging
    period). Deterministic for a fixed ``(cluster, scheduled, seed)``.
    """
    if not scheduled:
        raise TelemetryError("no scheduled jobs to sample")
    rngs = RngFactory(seed).child(f"telemetry.{cluster.name}")
    sampler = PowerSampler(cluster, rngs.get("aggregate"))
    trace_sampler = PowerSampler(cluster, rngs.get("traces"))
    # GPU boards are measured from their own stream, so the CPU streams
    # above replay the exact draws of a CPU-only build.
    gpu_sampler = (
        GpuSampler(cluster, rngs.get("gpu")) if cluster.spec.has_gpus else None
    )

    # Aggregates for every job come from the fused batch sweep — one RNG
    # draw and one clip pass over all node slots, bit-identical to the
    # per-job sample_aggregate loop it replaced.
    pernode_power, power_sum = sampler.sample_aggregate_batch(scheduled)
    # Tolerance for dropped samples (the telemetry.drop fault point, or a
    # real monitoring outage): gap-fill each NaN aggregate with the job's
    # deterministic noise-free level and account for it explicitly — the
    # gap count travels through the stage meta into the run manifest.
    gap_idx = np.nonzero(np.isnan(pernode_power))[0]
    for i in gap_idx:
        pernode_power[i], power_sum[i] = sampler.nominal_aggregate(scheduled[i])
    runtimes = np.fromiter(
        (job.spec.runtime_s for job in scheduled), dtype=float, count=len(scheduled)
    )
    energy = power_sum * runtimes
    instrumented = np.zeros(len(scheduled), dtype=bool)
    is_debug = np.fromiter(
        (job.spec.is_debug for job in scheduled), dtype=bool, count=len(scheduled)
    )

    window_lo = 0.30 * horizon_s
    window_hi = min(horizon_s, window_lo + horizon_s / 5.0)
    traces: dict[int, JobPowerTrace] = {}
    trace_allocations: dict[int, np.ndarray] = {}

    key_apps = set(KEY_APPS)
    for i, job in enumerate(scheduled):
        spec = job.spec
        if (
            len(traces) < max_traces
            and spec.app in key_apps
            and spec.nodes >= 2
            and spec.runtime_s >= 20 * MINUTE
            and window_lo <= job.start_s < window_hi
        ):
            matrix = trace_sampler.sample_matrix(job)
            traces[spec.job_id] = JobPowerTrace(
                job_id=spec.job_id,
                user_id=spec.user_id,
                app=spec.app,
                system=spec.system,
                matrix=matrix,
            )
            trace_allocations[spec.job_id] = job.node_ids.copy()
            instrumented[i] = True

    gpu_power = gpu_count = None
    if gpu_sampler is not None:
        gpu_power, gpu_count = gpu_sampler.sample_batch(scheduled)

    return TelemetrySample(
        pernode_power=pernode_power,
        power_sum=power_sum,
        energy=energy,
        instrumented=instrumented,
        is_debug=is_debug,
        traces=traces,
        trace_allocations=trace_allocations,
        n_gaps=int(len(gap_idx)),
        gpu_power=gpu_power,
        gpu_count=gpu_count,
    )


def join_jobs(scheduled: list[ScheduledJob], sample: TelemetrySample) -> Table:
    """Join accounting records with sampled power into the job-level table.

    The column-building half of :func:`join_dataset`, shared with the
    streaming pipeline, which joins each spilled chunk independently:
    every derived column is per-job, so a chunk's table equals the
    matching slice of the monolithic one.

    On heterogeneous systems the table carries the *optional* schema
    columns too (``repro.telemetry.schema.OPTIONAL_JOB_COLUMNS``): GPU
    allocation/power/energy when the sample measured boards, and
    exit-state columns when the system's workload models failures. The
    paper's CPU systems emit exactly the original column set, keeping
    their artifacts byte-identical.
    """
    jobs = accounting_table(scheduled)
    jobs = jobs.with_column("pernode_power_w", sample.pernode_power)
    jobs = jobs.with_column("energy_j", sample.energy)
    jobs = jobs.with_column(
        "node_hours",
        jobs["nodes"].astype(float) * jobs["runtime_s"].astype(float) / 3600.0,
    )
    jobs = jobs.with_column("is_debug", sample.is_debug)
    jobs = jobs.with_column("instrumented", sample.instrumented)
    gpu_power = getattr(sample, "gpu_power", None)
    if gpu_power is not None:
        jobs = jobs.with_column("gpus", sample.gpu_count.astype(np.int64))
        jobs = jobs.with_column("gpu_power_w", gpu_power)
        jobs = jobs.with_column(
            "gpu_energy_j", gpu_power * jobs["runtime_s"].astype(float)
        )
    if scheduled and _models_failures(scheduled[0].spec.system):
        exit_code = np.fromiter(
            (getattr(job.spec, "exit_code", 0) for job in scheduled),
            dtype=np.int64,
            count=len(scheduled),
        )
        jobs = jobs.with_column("exit_code", exit_code)
        jobs = jobs.with_column("failed", exit_code != 0)
    return jobs


def _models_failures(system: str) -> bool:
    """Whether a system's workload carries exit-state columns.

    Keyed on the registered spec's workload profile — the ML and mixed
    catalogs model failures (docs/SCENARIOS.md); unregistered ad-hoc
    system names behave like the paper's CPU systems.
    """
    try:
        return get_spec(system).workload_profile != "hpc"
    except Exception:  # noqa: BLE001 — unknown system ⇒ legacy columns
        return False


def join_dataset(
    cluster: Cluster,
    scheduled: list[ScheduledJob],
    horizon_s: int,
    sample: TelemetrySample,
) -> JobDataset:
    """Join accounting records with sampled power into a :class:`JobDataset`.

    The **dataset** pipeline stage: builds the per-minute system
    timelines from the schedule and the sampled per-job draw, then joins
    the batch system's accounting table with the power aggregates.
    Purely deterministic — all randomness lives in the earlier stages.
    """
    if not scheduled:
        raise TelemetryError("no scheduled jobs to join")
    if sample.num_jobs != len(scheduled):
        raise TelemetryError(
            f"telemetry covers {sample.num_jobs} jobs, schedule has {len(scheduled)}"
        )
    end_minute = max(j.end_s for j in scheduled) // MINUTE + 1
    n_minutes = max(end_minute, int(np.ceil(horizon_s / MINUTE)))
    m = len(scheduled)
    a_min = np.fromiter((j.start_s // MINUTE for j in scheduled), np.int64, count=m)
    b_min = np.maximum(
        a_min + 1,
        np.fromiter((j.end_s // MINUTE for j in scheduled), np.int64, count=m),
    )
    nodes_per_job = np.fromiter((j.spec.nodes for j in scheduled), np.int64, count=m)
    # Integer occupancy via a boundary/prefix-sum sweep (exact in any
    # order); the float power timeline keeps the per-job slice adds so
    # its accumulation order — and hence its bytes — are unchanged.
    bounds = np.zeros(n_minutes + 1, dtype=np.int64)
    np.add.at(bounds, a_min, nodes_per_job)
    np.subtract.at(bounds, b_min, nodes_per_job)
    active = np.cumsum(bounds[:-1])
    job_power = np.zeros(n_minutes, dtype=float)
    # tolist() up front: per-element numpy scalar indexing dominates the
    # slice adds themselves at million-job scale.
    for a, b, w in zip(a_min.tolist(), b_min.tolist(), sample.power_sum.tolist()):
        job_power[a:b] += w

    if np.any(active > cluster.num_nodes):
        raise TelemetryError("scheduler over-allocated nodes (timeline check)")

    jobs = join_jobs(scheduled, sample)

    return JobDataset(
        spec=cluster.spec,
        jobs=jobs,
        traces=sample.traces,
        horizon_s=int(horizon_s),
        active_nodes=active,
        job_power_watts=job_power,
        trace_allocations=sample.trace_allocations,
    )


def assemble(
    cluster: Cluster,
    scheduled: list[ScheduledJob],
    horizon_s: int,
    seed: int = 0,
    max_traces: int = 2000,
) -> JobDataset:
    """Join scheduling output with sampled power into a :class:`JobDataset`."""
    sample = sample_telemetry(
        cluster, scheduled, horizon_s, seed=seed, max_traces=max_traces
    )
    return join_dataset(cluster, scheduled, horizon_s, sample)
