"""Standard Workload Format (SWF) interoperability.

The paper motivates its release by pointing at the community's open
trace repositories (the Parallel Workloads Archive's SWF format chief
among them). This module connects the two worlds:

* :func:`save_swf` exports a dataset's accounting view as an SWF v2.2
  file (one whitespace-separated 18-field record per job plus a header),
  so standard scheduling simulators can replay our traces;
* :func:`load_swf` parses an SWF file into a job table; and
* :func:`jobspecs_from_swf` turns that table back into schedulable
  :class:`~repro.workload.generator.JobSpec` streams, attaching a power
  model (since SWF predates power fields) via a caller-supplied
  predictor or a flat default.

SWF field reference: https://www.cs.huji.ac.il/labs/parallel/workload/swf.html
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import SchemaError
from repro.frames import Table
from repro.telemetry.dataset import JobDataset
from repro.workload.generator import JobSpec
from repro.workload.phases import TemporalProfile
from repro.workload.spatial import SpatialModel

__all__ = ["save_swf", "load_swf", "jobspecs_from_swf", "SWF_FIELDS"]

# The 18 standard SWF fields, in order.
SWF_FIELDS: tuple[str, ...] = (
    "job_number", "submit_time", "wait_time", "run_time",
    "allocated_processors", "average_cpu_time", "used_memory",
    "requested_processors", "requested_time", "requested_memory",
    "status", "user_id", "group_id", "executable", "queue_number",
    "partition_number", "preceding_job", "think_time",
)

_MISSING = -1


def save_swf(dataset: JobDataset, path: str | os.PathLike) -> None:
    """Export the dataset's jobs as an SWF v2.2 trace.

    Node counts map to "processors" (node-exclusive systems report
    whole nodes); users and applications are numbered in first-seen
    order and documented in the header. Power has no SWF field — the
    job-level CSV schema carries it — but per-job mean power is recorded
    as a header-documented comment extension on each line would break
    strict parsers, so it is *not* embedded.
    """
    jobs = dataset.jobs.sort_by("submit_s")
    users = {u: i + 1 for i, u in enumerate(dict.fromkeys(jobs["user"].tolist()))}
    apps = {a: i + 1 for i, a in enumerate(dict.fromkeys(jobs["app"].tolist()))}
    lines = [
        "; SWF version: 2.2",
        f"; Computer: {dataset.spec.name} (simulated; "
        f"{dataset.spec.num_nodes} nodes x {dataset.spec.processor})",
        f"; MaxJobs: {len(jobs)}",
        f"; MaxNodes: {dataset.spec.num_nodes}",
        f"; MaxProcs: {dataset.spec.num_nodes}",
        "; Note: processors == whole nodes (job-exclusive node access)",
        "; UserID mapping: " + ", ".join(f"{v}={k}" for k, v in users.items()),
        "; Executable mapping: " + ", ".join(f"{v}={k}" for k, v in apps.items()),
    ]
    for i in range(len(jobs)):
        row = jobs.row(i)
        record = [
            row["job_id"] + 1,            # SWF job numbers are 1-based
            row["submit_s"],
            row["wait_s"],
            row["runtime_s"],
            row["nodes"],
            _MISSING,                      # average cpu time
            _MISSING,                      # used memory
            row["nodes"],                  # requested processors
            row["req_walltime_s"],
            _MISSING,                      # requested memory
            1,                             # status: completed
            users[row["user"]],
            _MISSING,                      # group
            apps[row["app"]],
            1,                             # queue
            1,                             # partition
            _MISSING,
            _MISSING,
        ]
        lines.append(" ".join(str(v) for v in record))
    Path(path).write_text("\n".join(lines) + "\n")


def load_swf(path: str | os.PathLike) -> Table:
    """Parse an SWF file into a table with the 18 standard fields."""
    rows: list[list[int]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(";"):
            continue
        parts = stripped.split()
        if len(parts) != len(SWF_FIELDS):
            raise SchemaError(
                f"{path}:{lineno}: expected {len(SWF_FIELDS)} fields, "
                f"got {len(parts)}"
            )
        try:
            rows.append([int(float(p)) for p in parts])
        except ValueError:
            raise SchemaError(f"{path}:{lineno}: non-numeric SWF field") from None
    if not rows:
        raise SchemaError(f"{path}: no job records")
    data = np.asarray(rows, dtype=np.int64)
    return Table({name: data[:, j] for j, name in enumerate(SWF_FIELDS)})


def jobspecs_from_swf(
    swf: Table,
    system: str = "emmy",
    power_fraction: Callable[[int, int, int], float] | float = 0.7,
) -> list[JobSpec]:
    """Build schedulable job specs from an SWF table.

    ``power_fraction`` supplies the power model SWF lacks: either a
    constant fraction of TDP, or a callable ``(user_id, procs,
    requested_time) -> fraction`` (e.g. wrapping a fitted
    :class:`~repro.ml.tree.DecisionTreeRegressor`).
    """
    missing = [f for f in SWF_FIELDS if f not in swf]
    if missing:
        raise SchemaError(f"SWF table lacks fields {missing}")
    fraction_fn = (
        power_fraction
        if callable(power_fraction)
        else (lambda *_: float(power_fraction))
    )
    specs: list[JobSpec] = []
    for i in range(len(swf)):
        row = swf.row(i)
        procs = max(1, int(row["allocated_processors"]) or int(row["requested_processors"]))
        runtime = max(180, int(row["run_time"]))
        requested = max(runtime, int(row["requested_time"]))
        frac = float(np.clip(fraction_fn(row["user_id"], procs, requested), 0.05, 1.0))
        specs.append(
            JobSpec(
                job_id=int(row["job_number"]) - 1,
                user_id=f"u{int(row['user_id']):04d}",
                app=f"exe{int(row['executable'])}" if row["executable"] > 0 else "unknown",
                system=system,
                class_id=int(row["executable"]) if row["executable"] > 0 else 0,
                nodes=procs,
                req_walltime_s=requested,
                runtime_s=runtime,
                submit_s=max(0, int(row["submit_time"])),
                power_fraction=frac,
                profile=TemporalProfile(kind="flat"),
                spatial=SpatialModel(static_sigma=0.03),
            )
        )
    specs.sort(key=lambda j: (j.submit_s, j.job_id))
    return specs
