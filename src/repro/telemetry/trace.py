"""Time-resolved per-job power traces and the paper's dynamic metrics.

Figures 6 and 8 of the paper *define* the metrics; Figures 7, 9 and 10
plot their distributions. :class:`JobPowerTrace` owns one instrumented
job's node×minute matrix and computes every one of those metrics:

* **temporal** (job power = node-mean series): coefficient of temporal
  variation, peak overshoot over the mean, fraction of runtime spent
  more than ``x`` above the mean;
* **spatial** (per-minute max−min across nodes): average spatial spread
  in watts and as a fraction of per-node power, fraction of runtime the
  spread exceeds its own average;
* **energy imbalance**: (max − min) node energy over the runtime as a
  fraction of the minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TelemetryError
from repro.units import MINUTE

__all__ = ["JobPowerTrace"]


@dataclass(frozen=True)
class JobPowerTrace:
    """One job's measured node×minute power matrix plus identity."""

    job_id: int
    user_id: str
    app: str
    system: str
    matrix: np.ndarray  # shape (nodes, minutes), watts

    def __post_init__(self) -> None:
        m = self.matrix
        if m.ndim != 2 or m.size == 0:
            raise TelemetryError(f"job {self.job_id}: matrix must be 2-D and non-empty")
        if np.any(~np.isfinite(m)) or np.any(m < 0):
            raise TelemetryError(f"job {self.job_id}: matrix must be finite and >= 0")

    @property
    def num_nodes(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_minutes(self) -> int:
        return self.matrix.shape[1]

    # -- aggregates ------------------------------------------------------------

    def per_node_power(self) -> float:
        """The paper's headline metric: mean over runtime and nodes (W)."""
        return float(self.matrix.mean())

    def job_power_series(self) -> np.ndarray:
        """Node-mean power per minute — the job's temporal signal."""
        return self.matrix.mean(axis=0)

    def node_energy_joules(self) -> np.ndarray:
        """Total energy per node over the runtime."""
        return self.matrix.sum(axis=1) * MINUTE

    def total_energy_joules(self) -> float:
        return float(self.matrix.sum() * MINUTE)

    # -- temporal metrics (Fig 6 → Fig 7) ---------------------------------------

    def temporal_cov(self) -> float:
        """σ_t/µ of the job power series (paper: ≈0.11 on average)."""
        series = self.job_power_series()
        mean = series.mean()
        if mean == 0:
            raise TelemetryError(f"job {self.job_id}: zero mean power")
        return float(series.std() / mean)

    def peak_overshoot(self) -> float:
        """(peak − mean)/mean of the job power series (Fig 7a)."""
        series = self.job_power_series()
        mean = series.mean()
        if mean == 0:
            raise TelemetryError(f"job {self.job_id}: zero mean power")
        return float((series.max() - mean) / mean)

    def fraction_time_above(self, rel_threshold: float = 0.10) -> float:
        """Fraction of runtime with power > (1+rel_threshold)×mean (Fig 7b)."""
        if rel_threshold < 0:
            raise TelemetryError("rel_threshold must be >= 0")
        series = self.job_power_series()
        mean = series.mean()
        return float(np.count_nonzero(series > (1.0 + rel_threshold) * mean) / series.size)

    # -- spatial metrics (Fig 8 → Figs 9, 10) ------------------------------------

    def spatial_spread_series(self) -> np.ndarray:
        """max−min node power per minute (W); zero for single-node jobs."""
        if self.num_nodes == 1:
            return np.zeros(self.num_minutes)
        return self.matrix.max(axis=0) - self.matrix.min(axis=0)

    def avg_spatial_spread(self) -> float:
        """Runtime average of the spatial spread (Fig 9a; paper mean ≈20 W)."""
        return float(self.spatial_spread_series().mean())

    def spatial_spread_fraction(self) -> float:
        """Average spread relative to per-node power (Fig 9b; ≈15%)."""
        power = self.per_node_power()
        if power == 0:
            raise TelemetryError(f"job {self.job_id}: zero mean power")
        return self.avg_spatial_spread() / power

    def fraction_time_spread_above_average(self) -> float:
        """Fraction of runtime the spread exceeds its own average (Fig 9c)."""
        series = self.spatial_spread_series()
        avg = series.mean()
        if avg == 0:
            return 0.0
        return float(np.count_nonzero(series > avg) / series.size)

    def energy_imbalance_fraction(self) -> float:
        """(max − min)/min node energy over the runtime (Fig 10)."""
        energy = self.node_energy_joules()
        emin = energy.min()
        if emin <= 0:
            raise TelemetryError(f"job {self.job_id}: non-positive node energy")
        return float((energy.max() - emin) / emin)
