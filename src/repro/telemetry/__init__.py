"""Monitoring and dataset assembly.

Mirrors the paper's data-collection methodology (Sec. 2.2): continuous
node-level monitoring samples RAPL once per minute (averaged, not
instantaneous); the monitoring stream is joined with the batch system's
accounting records to produce job-level aggregates for *all* jobs, and
full time-resolved node×minute power matrices for an instrumented subset
of key applications (the paper logged those for one month).
"""

from repro.telemetry.dataset import JobDataset, generate_dataset
from repro.telemetry.sampler import GpuSampler, PowerSampler
from repro.telemetry.samples_schema import (
    SAMPLE_COLUMNS,
    load_samples,
    samples_table,
    save_samples,
    traces_from_samples,
)
from repro.telemetry.schema import (
    JOB_COLUMNS,
    OPTIONAL_JOB_COLUMNS,
    load_jobs_csv,
    save_jobs_csv,
)
from repro.telemetry.swf import jobspecs_from_swf, load_swf, save_swf
from repro.telemetry.trace import JobPowerTrace

__all__ = [
    "PowerSampler",
    "GpuSampler",
    "JobPowerTrace",
    "JobDataset",
    "generate_dataset",
    "JOB_COLUMNS",
    "OPTIONAL_JOB_COLUMNS",
    "SAMPLE_COLUMNS",
    "samples_table",
    "save_samples",
    "load_samples",
    "traces_from_samples",
    "save_jobs_csv",
    "load_jobs_csv",
    "save_swf",
    "load_swf",
    "jobspecs_from_swf",
]
