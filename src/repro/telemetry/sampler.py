"""Per-job power sampling.

The physical model: a job's true node power at minute ``t`` on its
``n``-th allocated node is

``TDP × fraction × offset_n × factor_n × profile_t × dyn_{n,t}``

clipped into ``[idle, TDP]``, where ``fraction`` is the job's nominal
power fraction, ``offset_n`` the static workload-imbalance offset,
``factor_n`` the node's manufacturing-variability factor, ``profile_t``
the temporal phase profile (mean 1), and ``dyn`` small dynamic jitter.
The RAPL model then averages and perturbs what the monitor records.

Two paths exist:

* :meth:`PowerSampler.sample_matrix` — the full node×minute measured
  matrix (instrumented jobs);
* :meth:`PowerSampler.sample_aggregate` — per-node mean power without
  materializing the time axis (every job; exact because the temporal
  profile is mean-normalized).

:meth:`PowerSampler.sample_aggregate_batch` is the fused fast path over
a whole scheduled-job stream: one standard-normal draw and one clip/
multiply sweep over a concatenated node-slot buffer instead of a pair of
tiny RNG calls and half a dozen tiny array ops per job. It consumes the
generator stream in exactly the per-job order, so its outputs are
bit-identical to looping :meth:`~PowerSampler.sample_aggregate`
(``tests/telemetry/test_batch_equivalence.py`` enforces this).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.gpu import GpuPowerModel
from repro.cluster.rapl import RaplModel
from repro.cluster.system import Cluster
from repro.errors import TelemetryError
from repro.faults.injector import maybe_fire
from repro.scheduler.job import ScheduledJob
from repro.units import MINUTE

__all__ = ["PowerSampler", "GpuSampler"]

# Fraction of TDP a node draws when the job leaves it nearly idle.
_FLOOR_FRACTION = 0.20


class PowerSampler:
    """Samples measured node power for scheduled jobs on one cluster."""

    def __init__(self, cluster: Cluster, rng: np.random.Generator) -> None:
        self.cluster = cluster
        self.rapl = RaplModel(cluster.spec)
        self._rng = rng
        self._tdp = cluster.node_tdp_watts
        self._floor = _FLOOR_FRACTION * self._tdp

    def _static_node_levels(self, job: ScheduledJob) -> np.ndarray:
        """Nominal per-node draw before temporal modulation (watts)."""
        spec = job.spec
        factors = self.cluster.power_factors[job.node_ids]
        offsets = spec.spatial.node_offsets(spec.nodes, self._rng)
        return self._tdp * spec.power_fraction * offsets * factors

    def sample_aggregate(self, job: ScheduledJob) -> np.ndarray:
        """Measured mean power per node (shape ``(nodes,)``), time axis folded.

        The temporal profile has mean exactly 1 over the job's runtime,
        so the per-node time average equals the static level (up to the
        clip and measurement noise, both applied here).
        """
        levels = np.clip(self._static_node_levels(job), self._floor, self._tdp)
        noise = self._rng.normal(1.0, self.rapl.noise_sigma, size=levels.shape)
        return np.clip(levels * noise, 0.0, self._tdp)

    def sample_aggregate_batch(
        self, jobs: Sequence[ScheduledJob]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused :meth:`sample_aggregate` over a job stream.

        Returns ``(pernode_power, power_sum)`` — the per-job mean and sum
        of the measured node powers — as arrays of ``len(jobs)``.

        Bit-identical to the per-job loop: a single ``standard_normal``
        draw replays the exact generator stream (``normal(loc, s, n)``
        consumes ``n`` sequential standard normals and applies
        ``loc + s*z``; a zero ``static_sigma`` job draws no offsets, its
        slots index in-bounds noise draws scaled by ``0.0``), and the
        per-job reductions run over contiguous slices so the pairwise
        summation order matches a standalone per-job array.
        """
        m = len(jobs)
        pernode = np.empty(m)
        psum = np.empty(m)
        if m == 0:
            return pernode, psum
        counts = np.empty(m, dtype=np.intp)
        sigmas = np.empty(m)
        fracs = np.empty(m)
        for i, job in enumerate(jobs):
            spec = job.spec
            counts[i] = spec.nodes
            sigmas[i] = spec.spatial.static_sigma
            fracs[i] = spec.power_fraction
        starts = np.concatenate(([0], np.cumsum(counts)))
        total = int(starts[-1])
        all_ids = np.concatenate([job.node_ids for job in jobs])
        if all_ids.shape != (total,):
            raise TelemetryError("job node_ids disagree with requested node counts")

        # Draw layout per job: [offsets (nodes, iff sigma > 0)][noise (nodes)].
        has_offsets = sigmas > 0
        draws = counts * (1 + has_offsets)
        draw_starts = np.concatenate(([0], np.cumsum(draws)))
        z = self._rng.standard_normal(int(draw_starts[-1]))

        slot_job = np.repeat(np.arange(m), counts)
        slot_rank = np.arange(total) - starts[slot_job]
        offset_idx = draw_starts[slot_job] + slot_rank
        noise_idx = offset_idx + counts[slot_job] * has_offsets[slot_job]

        sigma_slot = sigmas[slot_job]
        offsets = np.clip(1.0 + sigma_slot * z[offset_idx], 0.5, 1.5)
        factors = self.cluster.power_factors[all_ids]
        levels = self._tdp * fracs[slot_job] * offsets * factors
        levels = np.clip(levels, self._floor, self._tdp)
        noise = 1.0 + self.rapl.noise_sigma * z[noise_idx]
        measured = np.clip(levels * noise, 0.0, self._tdp)

        pos = 0
        for i in range(m):
            n = int(counts[i])
            if maybe_fire("telemetry.drop"):
                # A dropped sample: the monitor recorded nothing for this
                # job. The RNG draws above already consumed the generator
                # stream for every job, so all *other* jobs' aggregates —
                # and any re-run once the fault clears — stay bit-identical.
                psum[i] = np.nan
                pernode[i] = np.nan
            else:
                s = measured[pos : pos + n].sum()
                psum[i] = s
                pernode[i] = s / n
            pos += n
        return pernode, psum

    def nominal_aggregate(self, job: ScheduledJob) -> tuple[float, float]:
        """Noise-free (pernode, sum) watts — the gap-fill for a dropped
        sample. Deterministic: the clipped static level with unit offsets
        and factors, no measurement noise."""
        spec = job.spec
        level = float(
            np.clip(self._tdp * spec.power_fraction, self._floor, self._tdp)
        )
        return level, level * spec.nodes

    def sample_matrix(self, job: ScheduledJob) -> np.ndarray:
        """Measured node×minute power matrix of one instrumented job."""
        spec = job.spec
        minutes = max(1, int(round(spec.runtime_s / MINUTE)))
        levels = self._static_node_levels(job)
        profile = spec.profile.generate(minutes, self._rng)
        dyn = spec.spatial.dynamic_noise(spec.nodes, minutes, self._rng)
        true_power = levels[:, None] * profile[None, :] * dyn
        true_power = np.clip(true_power, self._floor, self._tdp)
        measured = self.rapl.measure_total(true_power, self._rng, seconds_per_step=60.0)
        # The RAPL PKG+DRAM domains saturate at the package limit; clip
        # measurement noise so no sample exceeds the node TDP.
        measured = np.clip(measured, 0.0, self._tdp)
        if measured.shape != (spec.nodes, minutes):
            raise TelemetryError(
                f"job {spec.job_id}: unexpected matrix shape {measured.shape}"
            )
        return measured


class GpuSampler:
    """Samples measured GPU board power for scheduled jobs.

    The accelerator-side sibling of :class:`PowerSampler`, against its
    own generator stream (``telemetry.<system>.gpu``) so CPU-only
    byte identity is untouched. The draw layout is one standard normal
    per *allocated board*, in job order — a job allocated ``g`` boards
    consumes exactly ``g`` draws, and CPU jobs (``spec.gpus == 0``)
    consume none — so chunked sweeps concatenate bit-identically to the
    monolithic one, exactly like the aggregate fast path.

    A board is "allocated" when its node is: a job requesting ``gpus``
    per node gets ``min(gpus, installed)`` on each of its nodes, which
    on a mixed partition lets an ML job scheduled onto CPU-only nodes
    run GPU-starved (fewer boards than requested) — deterministically,
    since placement is.
    """

    def __init__(self, cluster: Cluster, rng: np.random.Generator) -> None:
        self.cluster = cluster
        self.model = GpuPowerModel(cluster.spec)
        self._rng = rng

    def sample_batch(
        self, jobs: Sequence[ScheduledJob]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused GPU sweep: ``(gpu_power_w, gpus)`` per job.

        ``gpu_power_w`` is the job's total measured board draw (watts,
        summed over its allocated boards, averaged over the runtime —
        the temporal profile is mean-normalized, as on the CPU side);
        ``gpus`` the allocated board count. Both are zero for CPU jobs.
        """
        m = len(jobs)
        power = np.zeros(m)
        count = np.zeros(m, dtype=np.int64)
        if m == 0:
            return power, count
        installed = self.cluster.gpu_counts
        gpu_factors = self.cluster.gpu_factors
        alloc_factors: list[np.ndarray] = []
        fractions: list[float] = []
        rows: list[int] = []
        for i, job in enumerate(jobs):
            spec = job.spec
            requested = getattr(spec, "gpus", 0)
            if requested <= 0:
                continue
            alloc = np.minimum(installed[job.node_ids], requested)
            n_boards = int(alloc.sum())
            count[i] = n_boards
            if n_boards == 0:
                continue
            alloc_factors.append(np.repeat(gpu_factors[job.node_ids], alloc))
            fractions.append(spec.gpu_fraction)
            rows.append(i)
        if not rows:
            return power, count
        boards = np.concatenate(alloc_factors)
        z = self._rng.standard_normal(len(boards))
        pos = 0
        for i, factors, fraction in zip(rows, alloc_factors, fractions):
            n = len(factors)
            draw = self.model.sample(fraction, factors, z[pos : pos + n])
            power[i] = draw.sum()
            pos += n
        return power, count
