"""Per-job power sampling.

The physical model: a job's true node power at minute ``t`` on its
``n``-th allocated node is

``TDP × fraction × offset_n × factor_n × profile_t × dyn_{n,t}``

clipped into ``[idle, TDP]``, where ``fraction`` is the job's nominal
power fraction, ``offset_n`` the static workload-imbalance offset,
``factor_n`` the node's manufacturing-variability factor, ``profile_t``
the temporal phase profile (mean 1), and ``dyn`` small dynamic jitter.
The RAPL model then averages and perturbs what the monitor records.

Two paths exist:

* :meth:`PowerSampler.sample_matrix` — the full node×minute measured
  matrix (instrumented jobs);
* :meth:`PowerSampler.sample_aggregate` — per-node mean power without
  materializing the time axis (every job; exact because the temporal
  profile is mean-normalized).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.rapl import RaplModel
from repro.cluster.system import Cluster
from repro.errors import TelemetryError
from repro.scheduler.job import ScheduledJob
from repro.units import MINUTE

__all__ = ["PowerSampler"]

# Fraction of TDP a node draws when the job leaves it nearly idle.
_FLOOR_FRACTION = 0.20


class PowerSampler:
    """Samples measured node power for scheduled jobs on one cluster."""

    def __init__(self, cluster: Cluster, rng: np.random.Generator) -> None:
        self.cluster = cluster
        self.rapl = RaplModel(cluster.spec)
        self._rng = rng
        self._tdp = cluster.node_tdp_watts
        self._floor = _FLOOR_FRACTION * self._tdp

    def _static_node_levels(self, job: ScheduledJob) -> np.ndarray:
        """Nominal per-node draw before temporal modulation (watts)."""
        spec = job.spec
        factors = self.cluster.power_factors[job.node_ids]
        offsets = spec.spatial.node_offsets(spec.nodes, self._rng)
        return self._tdp * spec.power_fraction * offsets * factors

    def sample_aggregate(self, job: ScheduledJob) -> np.ndarray:
        """Measured mean power per node (shape ``(nodes,)``), time axis folded.

        The temporal profile has mean exactly 1 over the job's runtime,
        so the per-node time average equals the static level (up to the
        clip and measurement noise, both applied here).
        """
        levels = np.clip(self._static_node_levels(job), self._floor, self._tdp)
        noise = self._rng.normal(1.0, self.rapl.noise_sigma, size=levels.shape)
        return np.clip(levels * noise, 0.0, self._tdp)

    def sample_matrix(self, job: ScheduledJob) -> np.ndarray:
        """Measured node×minute power matrix of one instrumented job."""
        spec = job.spec
        minutes = max(1, int(round(spec.runtime_s / MINUTE)))
        levels = self._static_node_levels(job)
        profile = spec.profile.generate(minutes, self._rng)
        dyn = spec.spatial.dynamic_noise(spec.nodes, minutes, self._rng)
        true_power = levels[:, None] * profile[None, :] * dyn
        true_power = np.clip(true_power, self._floor, self._tdp)
        measured = self.rapl.measure_total(true_power, self._rng, seconds_per_step=60.0)
        # The RAPL PKG+DRAM domains saturate at the package limit; clip
        # measurement noise so no sample exceeds the node TDP.
        measured = np.clip(measured, 0.0, self._tdp)
        if measured.shape != (spec.nodes, minutes):
            raise TelemetryError(
                f"job {spec.job_id}: unexpected matrix shape {measured.shape}"
            )
        return measured
