"""Persistence schema for the job-level dataset.

Column names mirror the paper's Zenodo release style so that the
analysis layer would run unchanged on the real traces after a column
rename. ``save_jobs_csv``/``load_jobs_csv`` validate the schema on both
ends and round-trip exactly.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import SchemaError
from repro.frames import Table, read_csv, read_npz, write_csv, write_npz

__all__ = ["JOB_COLUMNS", "OPTIONAL_JOB_COLUMNS", "job_columns", "validate_jobs",
           "save_jobs_csv", "load_jobs_csv", "save_jobs_npz", "load_jobs_npz"]

# Required columns of a job-level table and their dtype kinds
# ('i' integer, 'f' float, 'U' string, 'b' bool).
JOB_COLUMNS: dict[str, str] = {
    "job_id": "i",
    "user": "U",
    "app": "U",
    "system": "U",
    "class_id": "i",
    "nodes": "i",
    "submit_s": "i",
    "start_s": "i",
    "end_s": "i",
    "runtime_s": "i",
    "req_walltime_s": "i",
    "wait_s": "i",
    "pernode_power_w": "f",
    "energy_j": "f",
    "node_hours": "f",
    "is_debug": "b",
    "instrumented": "b",
}

# Optional columns (GPU telemetry, job exit states) present only for
# systems that model them. A table either has all columns of a feature
# group or none — partial groups fail validation — and the persisted
# column order is JOB_COLUMNS followed by the present optional columns
# in this dict's order, so the bytes don't depend on join order.
OPTIONAL_JOB_COLUMNS: dict[str, str] = {
    "gpus": "i",
    "gpu_power_w": "f",
    "gpu_energy_j": "f",
    "exit_code": "i",
    "failed": "b",
}

_OPTIONAL_GROUPS: tuple[tuple[str, ...], ...] = (
    ("gpus", "gpu_power_w", "gpu_energy_j"),
    ("exit_code", "failed"),
)


def job_columns(jobs: Table) -> list[str]:
    """Schema column order for ``jobs``: required, then present optionals."""
    return list(JOB_COLUMNS) + [c for c in OPTIONAL_JOB_COLUMNS if c in jobs]


def validate_jobs(jobs: Table) -> None:
    """Raise :class:`SchemaError` unless ``jobs`` matches the schema."""
    missing = [c for c in JOB_COLUMNS if c not in jobs]
    if missing:
        raise SchemaError(f"job table is missing columns {missing}")
    for group in _OPTIONAL_GROUPS:
        present = [c for c in group if c in jobs]
        if present and len(present) != len(group):
            absent = [c for c in group if c not in jobs]
            raise SchemaError(
                f"optional column group {group} is partial: missing {absent}"
            )
    schema = {**JOB_COLUMNS, **OPTIONAL_JOB_COLUMNS}
    for name, kind in schema.items():
        if name not in jobs:
            continue
        actual = jobs[name].dtype.kind
        ok = actual == kind or (kind == "i" and actual == "b") or (
            kind == "b" and actual in "bi"
        )
        if not ok:
            raise SchemaError(
                f"column {name!r} has dtype kind {actual!r}, expected {kind!r}"
            )
    if len(jobs) and len(np.unique(jobs["job_id"])) != len(jobs):
        raise SchemaError("job_id values must be unique")


def _booleans_to_int(jobs: Table) -> Table:
    """CSV has no bool dtype; store flags as 0/1 integers."""
    for name, kind in {**JOB_COLUMNS, **OPTIONAL_JOB_COLUMNS}.items():
        if kind == "b" and name in jobs:
            jobs = jobs.with_column(name, jobs[name].astype(np.int64))
    return jobs


def _ints_to_bool(jobs: Table) -> Table:
    for name, kind in {**JOB_COLUMNS, **OPTIONAL_JOB_COLUMNS}.items():
        if kind == "b" and name in jobs and jobs[name].dtype.kind != "b":
            jobs = jobs.with_column(name, jobs[name].astype(bool))
    return jobs


def save_jobs_csv(jobs: Table, path: str | os.PathLike) -> None:
    """Write a schema-validated job table to CSV."""
    validate_jobs(jobs)
    write_csv(_booleans_to_int(jobs.select(job_columns(jobs))), Path(path))


def load_jobs_csv(path: str | os.PathLike) -> Table:
    """Read and schema-validate a job table from CSV."""
    jobs = _ints_to_bool(read_csv(Path(path)))
    validate_jobs(jobs)
    return jobs


def save_jobs_npz(jobs: Table, path: str | os.PathLike) -> None:
    """Binary (exact-dtype) variant of :func:`save_jobs_csv`."""
    validate_jobs(jobs)
    write_npz(jobs.select(job_columns(jobs)), Path(path))


def load_jobs_npz(path: str | os.PathLike) -> Table:
    """Binary (exact-dtype) variant of :func:`load_jobs_csv`."""
    jobs = read_npz(Path(path))
    validate_jobs(jobs)
    return jobs
