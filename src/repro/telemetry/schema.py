"""Persistence schema for the job-level dataset.

Column names mirror the paper's Zenodo release style so that the
analysis layer would run unchanged on the real traces after a column
rename. ``save_jobs_csv``/``load_jobs_csv`` validate the schema on both
ends and round-trip exactly.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import SchemaError
from repro.frames import Table, read_csv, read_npz, write_csv, write_npz

__all__ = ["JOB_COLUMNS", "validate_jobs", "save_jobs_csv", "load_jobs_csv",
           "save_jobs_npz", "load_jobs_npz"]

# Required columns of a job-level table and their dtype kinds
# ('i' integer, 'f' float, 'U' string, 'b' bool).
JOB_COLUMNS: dict[str, str] = {
    "job_id": "i",
    "user": "U",
    "app": "U",
    "system": "U",
    "class_id": "i",
    "nodes": "i",
    "submit_s": "i",
    "start_s": "i",
    "end_s": "i",
    "runtime_s": "i",
    "req_walltime_s": "i",
    "wait_s": "i",
    "pernode_power_w": "f",
    "energy_j": "f",
    "node_hours": "f",
    "is_debug": "b",
    "instrumented": "b",
}


def validate_jobs(jobs: Table) -> None:
    """Raise :class:`SchemaError` unless ``jobs`` matches the schema."""
    missing = [c for c in JOB_COLUMNS if c not in jobs]
    if missing:
        raise SchemaError(f"job table is missing columns {missing}")
    for name, kind in JOB_COLUMNS.items():
        actual = jobs[name].dtype.kind
        ok = actual == kind or (kind == "i" and actual == "b") or (
            kind == "b" and actual in "bi"
        )
        if not ok:
            raise SchemaError(
                f"column {name!r} has dtype kind {actual!r}, expected {kind!r}"
            )
    if len(jobs) and len(np.unique(jobs["job_id"])) != len(jobs):
        raise SchemaError("job_id values must be unique")


def _booleans_to_int(jobs: Table) -> Table:
    """CSV has no bool dtype; store flags as 0/1 integers."""
    for name, kind in JOB_COLUMNS.items():
        if kind == "b":
            jobs = jobs.with_column(name, jobs[name].astype(np.int64))
    return jobs


def _ints_to_bool(jobs: Table) -> Table:
    for name, kind in JOB_COLUMNS.items():
        if kind == "b" and jobs[name].dtype.kind != "b":
            jobs = jobs.with_column(name, jobs[name].astype(bool))
    return jobs


def save_jobs_csv(jobs: Table, path: str | os.PathLike) -> None:
    """Write a schema-validated job table to CSV."""
    validate_jobs(jobs)
    write_csv(_booleans_to_int(jobs.select(list(JOB_COLUMNS))), Path(path))


def load_jobs_csv(path: str | os.PathLike) -> Table:
    """Read and schema-validate a job table from CSV."""
    jobs = _ints_to_bool(read_csv(Path(path)))
    validate_jobs(jobs)
    return jobs


def save_jobs_npz(jobs: Table, path: str | os.PathLike) -> None:
    """Binary (exact-dtype) variant of :func:`save_jobs_csv`."""
    validate_jobs(jobs)
    write_npz(jobs.select(list(JOB_COLUMNS)), Path(path))


def load_jobs_npz(path: str | os.PathLike) -> Table:
    """Binary (exact-dtype) variant of :func:`load_jobs_csv`."""
    jobs = read_npz(Path(path))
    validate_jobs(jobs)
    return jobs
