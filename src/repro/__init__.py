"""repro — reproduction of *"What does Power Consumption Behavior of HPC
Jobs Reveal?"* (Patel et al., IPDPS 2020).

The package has four layers:

1. **Substrates** — :mod:`repro.cluster` (machines, RAPL),
   :mod:`repro.workload` (generative job model), :mod:`repro.scheduler`
   (FCFS + EASY backfill), :mod:`repro.telemetry` (monitoring + dataset
   assembly), :mod:`repro.frames` (columnar tables), :mod:`repro.stats`,
   :mod:`repro.ml` (CART / KNN / FLDA from scratch).
2. **Analyses** — :mod:`repro.analysis`, one function per paper
   figure/table.
3. **Policies** — :mod:`repro.policy`, the paper's implications turned
   into simulators (power capping, over-provisioning, pricing).
4. **Pipeline** — :mod:`repro.pipeline`, a staged experiment runner
   with a content-addressed artifact cache and multiprocessing fan-out
   (``python -m repro pipeline run|run-all|status|clean``).
5. **Harness** — ``benchmarks/`` regenerate every figure/table;
   ``examples/`` show the public API.

Quickstart
----------
>>> from repro import generate_dataset, per_node_power_distribution
>>> ds = generate_dataset("emmy", seed=7, num_nodes=40, num_users=20,
...                       horizon_s=3 * 86400)
>>> dist = per_node_power_distribution(ds)
>>> 0.3 < dist.mean_tdp_fraction < 1.0
True
"""

from repro._version import __version__
from repro.analysis import (
    app_power_comparison,
    cluster_variability,
    concentration_analysis,
    feature_power_correlations,
    per_node_power_distribution,
    power_utilization,
    run_prediction,
    spatial_summary,
    split_analysis,
    system_utilization,
    temporal_summary,
    user_power_variability,
)
from repro.cluster import EMMY, MEGGIE, Cluster, SystemSpec, get_spec
from repro.frames import Table
from repro.pipeline import (
    ArtifactCache,
    RunManifest,
    ShardConfig,
    build_dataset,
    run_pipeline,
)
from repro.telemetry import JobDataset, generate_dataset
from repro.workload import WorkloadGenerator, default_params

__all__ = [
    "__version__",
    # substrates
    "SystemSpec",
    "EMMY",
    "MEGGIE",
    "get_spec",
    "Cluster",
    "Table",
    "WorkloadGenerator",
    "default_params",
    "JobDataset",
    "generate_dataset",
    # pipeline
    "ArtifactCache",
    "RunManifest",
    "ShardConfig",
    "build_dataset",
    "run_pipeline",
    # analyses
    "system_utilization",
    "power_utilization",
    "per_node_power_distribution",
    "app_power_comparison",
    "feature_power_correlations",
    "split_analysis",
    "temporal_summary",
    "spatial_summary",
    "concentration_analysis",
    "user_power_variability",
    "cluster_variability",
    "run_prediction",
]
