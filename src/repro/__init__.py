"""repro — reproduction of *"What does Power Consumption Behavior of HPC
Jobs Reveal?"* (Patel et al., IPDPS 2020).

The package has four layers:

1. **Substrates** — :mod:`repro.cluster` (machines, RAPL),
   :mod:`repro.workload` (generative job model), :mod:`repro.scheduler`
   (FCFS + EASY backfill), :mod:`repro.telemetry` (monitoring + dataset
   assembly), :mod:`repro.frames` (columnar tables), :mod:`repro.stats`,
   :mod:`repro.ml` (CART / KNN / FLDA from scratch).
2. **Analyses** — :mod:`repro.analysis`, one function per paper
   figure/table.
3. **Policies** — :mod:`repro.policy`, the paper's implications turned
   into simulators (power capping, over-provisioning, pricing).
4. **Pipeline** — :mod:`repro.pipeline`, a staged experiment runner
   with a content-addressed artifact cache and multiprocessing fan-out
   (``python -m repro pipeline run|run-all|status|clean``).
5. **Harness** — ``benchmarks/`` regenerate every figure/table;
   ``examples/`` show the public API.

6. **Serving** — :mod:`repro.serve`, the online prediction service
   (micro-batched model serving behind ``repro-power serve``; see
   docs/SERVICE.md).
7. **Incidents** — :mod:`repro.incidents`, the auto-graded chaos
   incident benchmark over the served system (scenario catalog,
   recorded bundles, baseline detectors, scorecard gates; see
   docs/INCIDENTS.md).

The canonical scenario description is :class:`repro.ScenarioSpec` — one
frozen object (system, seed, scale, horizon) shared by the CLI flags,
the pipeline's shard configs, the serving registry, and the facade
(:func:`repro.generate_dataset` / :func:`repro.evaluate` /
:func:`repro.create_server`). Legacy keyword call-sites keep working
through the :func:`repro.spec.as_scenario` shim.

Every public symbol resolves lazily (PEP 562): ``import repro`` is
near-free, and each name pays only for the layer it lives in on first
access. CLI bookkeeping commands therefore skip the ~2 s scipy import
entirely.

Quickstart
----------
>>> from repro import ScenarioSpec, generate_dataset, per_node_power_distribution
>>> spec = ScenarioSpec("emmy", seed=7, num_nodes=40, num_users=20,
...                     horizon_days=3)
>>> ds = generate_dataset(spec)
>>> dist = per_node_power_distribution(ds)
>>> 0.3 < dist.mean_tdp_fraction < 1.0
True

The legacy keyword style is equivalent:
``generate_dataset("emmy", seed=7, num_nodes=40, num_users=20,
horizon_s=3 * 86400)`` builds the same dataset.
"""

from repro._version import __version__

__all__ = [
    "__version__",
    # substrates
    "SystemSpec",
    "EMMY",
    "MEGGIE",
    "get_spec",
    "Cluster",
    "Table",
    "WorkloadGenerator",
    "default_params",
    "JobDataset",
    # scenario + facade
    "ScenarioSpec",
    "as_scenario",
    "generate_dataset",
    "evaluate",
    "create_server",
    # pipeline
    "ArtifactCache",
    "RunManifest",
    "ShardConfig",
    "build_dataset",
    "run_pipeline",
    # serving
    "ModelRegistry",
    "PredictionService",
    "PredictionServer",
    # fault injection (chaos testing; docs/FAULTS.md)
    "FaultPlan",
    "FaultInjector",
    # analyses
    "system_utilization",
    "power_utilization",
    "per_node_power_distribution",
    "app_power_comparison",
    "feature_power_correlations",
    "split_analysis",
    "temporal_summary",
    "spatial_summary",
    "concentration_analysis",
    "user_power_variability",
    "cluster_variability",
    "run_prediction",
]

# Lazy attribute map (PEP 562): name -> defining module. Importing repro
# stays light; each symbol pulls in its layer on first access.
_LAZY_ATTRS = {
    # substrates
    "SystemSpec": "repro.cluster",
    "EMMY": "repro.cluster",
    "MEGGIE": "repro.cluster",
    "get_spec": "repro.cluster",
    "Cluster": "repro.cluster",
    "Table": "repro.frames",
    "WorkloadGenerator": "repro.workload",
    "default_params": "repro.workload",
    "JobDataset": "repro.telemetry",
    # scenario + facade (generate_dataset accepts a ScenarioSpec *or*
    # the legacy keyword style; see repro.facade)
    "ScenarioSpec": "repro.spec",
    "as_scenario": "repro.spec",
    "generate_dataset": "repro.facade",
    "evaluate": "repro.facade",
    "create_server": "repro.facade",
    # pipeline
    "ArtifactCache": "repro.pipeline",
    "RunManifest": "repro.pipeline",
    "ShardConfig": "repro.pipeline",
    "build_dataset": "repro.pipeline",
    "run_pipeline": "repro.pipeline",
    # serving
    "ModelRegistry": "repro.serve",
    "PredictionService": "repro.serve",
    "PredictionServer": "repro.serve",
    # fault injection
    "FaultPlan": "repro.faults",
    "FaultInjector": "repro.faults",
    # analyses
    "system_utilization": "repro.analysis",
    "power_utilization": "repro.analysis",
    "per_node_power_distribution": "repro.analysis",
    "app_power_comparison": "repro.analysis",
    "feature_power_correlations": "repro.analysis",
    "split_analysis": "repro.analysis",
    "temporal_summary": "repro.analysis",
    "spatial_summary": "repro.analysis",
    "concentration_analysis": "repro.analysis",
    "user_power_variability": "repro.analysis",
    "cluster_variability": "repro.analysis",
    "run_prediction": "repro.analysis",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so later lookups skip this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_ATTRS))
