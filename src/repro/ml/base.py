"""Estimator protocol shared by the prediction models."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ModelError, NotFittedError

__all__ = ["Estimator", "check_Xy"]


def check_Xy(X, y=None) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate a feature matrix (and optional target) into float arrays."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ModelError("X must contain at least one sample")
    if np.any(~np.isfinite(X)):
        raise ModelError("X contains non-finite values")
    if y is None:
        return X, None
    y = np.asarray(y, dtype=float).ravel()
    if y.shape[0] != X.shape[0]:
        raise ModelError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if np.any(~np.isfinite(y)):
        raise ModelError("y contains non-finite values")
    return X, y


class Estimator(ABC):
    """fit/predict regressor interface.

    ``categorical`` marks which feature columns hold category codes
    (integers); models are free to exploit or ignore the distinction.
    """

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before predict()")

    @abstractmethod
    def fit(self, X, y, categorical: tuple[int, ...] = ()) -> "Estimator":
        """Learn from ``(X, y)``; returns self."""

    @abstractmethod
    def predict(self, X) -> np.ndarray:
        """Predict targets for ``X``."""
