"""CART regression tree — the paper's best model ("BDT").

Splits minimize the sum of squared errors. Numeric features use the
classic sorted-prefix scan; categorical features (the user id) use
Breiman's optimal trick for regression: order the categories by their
mean target within the node, then scan that ordering like a numeric
feature. This gives the "first by user, then nodes, then walltime"
hierarchical behavior the paper describes, without an O(2^k) subset
search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Estimator, check_Xy

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    prediction: float
    feature: int = -1  # -1 ⇒ leaf
    threshold: float = 0.0
    left_categories: frozenset | None = None  # set ⇒ categorical split
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


@dataclass(frozen=True)
class _Split:
    feature: int
    gain: float
    threshold: float = 0.0
    left_categories: frozenset | None = None


class DecisionTreeRegressor(Estimator):
    """Binary regression tree with native categorical splits.

    Parameters
    ----------
    max_depth:
        Depth cap; ``None`` grows until leaves are pure or too small.
    min_samples_split / min_samples_leaf:
        Standard CART size guards.
    min_gain:
        Minimum SSE reduction to accept a split (absolute).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_gain: float = 1e-12,
    ) -> None:
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ModelError("max_depth must be >= 1 or None")
        if min_samples_split < 2:
            raise ModelError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ModelError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self._root: _Node | None = None
        self._categorical: frozenset[int] = frozenset()
        self._n_features = 0

    # -- fitting -----------------------------------------------------------

    def fit(self, X, y, categorical: tuple[int, ...] = ()) -> "DecisionTreeRegressor":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        bad = [c for c in categorical if not 0 <= c < self._n_features]
        if bad:
            raise ModelError(f"categorical indices out of range: {bad}")
        self._categorical = frozenset(categorical)
        self._root = self._build(X, y, depth=0)
        self._fitted = True
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        mask = self._left_mask(X[:, split.feature], split)
        node.feature = split.feature
        node.threshold = split.threshold
        node.left_categories = split.left_categories
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    @staticmethod
    def _left_mask(col: np.ndarray, split: _Split) -> np.ndarray:
        if split.left_categories is not None:
            return np.isin(col, np.fromiter(split.left_categories, dtype=float))
        return col <= split.threshold

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> _Split | None:
        total_sse = float(((y - y.mean()) ** 2).sum())
        best: _Split | None = None
        for feature in range(self._n_features):
            col = X[:, feature]
            if feature in self._categorical:
                cand = self._scan_categorical(col, y, total_sse, feature)
            else:
                cand = self._scan_numeric(col, y, total_sse, feature)
            if cand is not None and (best is None or cand.gain > best.gain):
                best = cand
        if best is not None and best.gain < self.min_gain:
            return None
        return best

    def _scan_numeric(
        self, col: np.ndarray, y: np.ndarray, total_sse: float, feature: int
    ) -> _Split | None:
        order = np.argsort(col, kind="stable")
        xs, ys = col[order], y[order]
        gains, positions = _prefix_scan(xs, ys, total_sse, self.min_samples_leaf)
        if gains is None:
            return None
        k = int(np.argmax(gains))
        pos = positions[k]
        threshold = (xs[pos - 1] + xs[pos]) / 2.0
        return _Split(feature=feature, gain=float(gains[k]), threshold=threshold)

    def _scan_categorical(
        self, col: np.ndarray, y: np.ndarray, total_sse: float, feature: int
    ) -> _Split | None:
        codes = col.astype(np.int64)
        if np.any(codes < 0):
            raise ModelError("categorical codes must be non-negative")
        counts = np.bincount(codes)
        sums = np.bincount(codes, weights=y)
        present = np.flatnonzero(counts)
        if len(present) < 2:
            return None
        means = sums[present] / counts[present]
        ordered = present[np.argsort(means, kind="stable")]
        # Pseudo-numeric scan: replace codes by their rank in the mean
        # ordering, then reuse the prefix scan with category boundaries.
        rank_of = np.full(counts.size, -1, dtype=np.int64)
        rank_of[ordered] = np.arange(len(ordered))
        ranks = rank_of[codes].astype(float)
        order = np.argsort(ranks, kind="stable")
        xs, ys = ranks[order], y[order]
        gains, positions = _prefix_scan(xs, ys, total_sse, self.min_samples_leaf)
        if gains is None:
            return None
        k = int(np.argmax(gains))
        pos = positions[k]
        n_left_ranks = int(xs[pos - 1]) + 1
        left_cats = frozenset(float(c) for c in ordered[:n_left_ranks])
        return _Split(feature=feature, gain=float(gains[k]), left_categories=left_cats)

    # -- prediction ----------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X, _ = check_Xy(X)
        if X.shape[1] != self._n_features:
            raise ModelError(
                f"X has {X.shape[1]} features; tree was fitted with {self._n_features}"
            )
        out = np.empty(X.shape[0])
        self._apply(self._root, X, np.arange(X.shape[0]), out)
        return out

    def _apply(self, node: _Node, X: np.ndarray, idx: np.ndarray, out: np.ndarray) -> None:
        if node.is_leaf or len(idx) == 0:
            out[idx] = node.prediction
            return
        split = _Split(
            feature=node.feature,
            gain=0.0,
            threshold=node.threshold,
            left_categories=node.left_categories,
        )
        mask = self._left_mask(X[idx, node.feature], split)
        self._apply(node.left, X, idx[mask], out)
        self._apply(node.right, X, idx[~mask], out)

    # -- introspection ---------------------------------------------------------

    @property
    def root(self) -> _Node:
        """The fitted root node (read-only structural introspection).

        Consumers walk ``feature`` / ``threshold`` / ``left_categories``
        / ``left`` / ``right`` / ``prediction`` — the serving layer's
        :class:`~repro.serve.flat_bdt.FlatBDT` flattens exactly this
        structure into arrays.
        """
        self._require_fitted()
        assert self._root is not None
        return self._root

    def depth(self) -> int:
        """Actual depth of the fitted tree (leaf-only tree has depth 0)."""
        self._require_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def num_leaves(self) -> int:
        self._require_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)


def _prefix_scan(
    xs: np.ndarray, ys: np.ndarray, total_sse: float, min_leaf: int
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Best-gain scan over sorted (xs, ys).

    Returns (gains, positions) over valid boundary positions ``pos``
    (split between pos-1 and pos), or (None, None) when no valid
    boundary exists.
    """
    n = len(ys)
    if n < 2 * min_leaf:
        return None, None
    csum = np.cumsum(ys)
    csum2 = np.cumsum(ys * ys)
    total_sum, total_sum2 = csum[-1], csum2[-1]
    positions = np.arange(1, n)
    # Valid splits: respect leaf sizes and land on a value boundary.
    valid = (positions >= min_leaf) & (positions <= n - min_leaf)
    valid &= xs[positions] != xs[positions - 1]
    positions = positions[valid]
    if len(positions) == 0:
        return None, None
    nl = positions.astype(float)
    nr = n - nl
    sl, s2l = csum[positions - 1], csum2[positions - 1]
    sr, s2r = total_sum - sl, total_sum2 - s2l
    sse_left = s2l - sl * sl / nl
    sse_right = s2r - sr * sr / nr
    gains = total_sse - (sse_left + sse_right)
    return gains, positions
