"""Online (deployment-order) power prediction.

The paper motivates "light-weight and easy to maintain/update" models:
a production predictor sees jobs in submit order, must predict *before*
each job runs, and learns from it afterwards. This module provides

* :class:`OnlinePowerPredictor` — an incremental hierarchical-mean model
  (exact (user, nodes, walltime) → (user, nodes) → user → global running
  means) updated in O(1) per completed job, and
* :func:`evaluate_online` — a prequential (predict-then-update) sweep
  over a job table in submit order, the honest deployment evaluation the
  random-split protocol approximates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.frames import Table
from repro.ml.metrics import ErrorSummary, error_summary

__all__ = ["OnlinePowerPredictor", "OnlineResult", "evaluate_online"]

#: Separator joining tuple-key parts in the serialized state (never
#: appears in user names, which come from ``u<number>`` generators).
_KEY_SEP = "\x1f"


class _RunningMean:
    __slots__ = ("count", "mean")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count


class OnlinePowerPredictor:
    """Incremental hierarchical-mean predictor.

    ``min_count`` is the evidence threshold: a level is trusted only
    once it has seen that many jobs; otherwise the predictor backs off
    to the next-coarser level.
    """

    def __init__(self, min_count: int = 1) -> None:
        if min_count < 1:
            raise ValidationError("min_count must be >= 1")
        self.min_count = min_count
        self._exact: dict[tuple, _RunningMean] = {}
        self._user_nodes: dict[tuple, _RunningMean] = {}
        self._user: dict[str, _RunningMean] = {}
        self._global = _RunningMean()

    @property
    def jobs_seen(self) -> int:
        return self._global.count

    @staticmethod
    def _key(user: str, nodes: int, walltime_s: int) -> tuple:
        return (user, int(nodes), int(walltime_s))

    def predict(self, user: str, nodes: int, walltime_s: int) -> float:
        """Best available estimate before the job runs (NaN-free).

        Returns the global mean when nothing has been observed yet, and
        0.0 only for the very first job of the deployment.
        """
        for table, key in (
            (self._exact, self._key(user, nodes, walltime_s)),
            (self._user_nodes, (user, int(nodes))),
            (self._user, user),
        ):
            stat = table.get(key)
            if stat is not None and stat.count >= self.min_count:
                return stat.mean
        return self._global.mean

    def observe(self, user: str, nodes: int, walltime_s: int, power_w: float) -> None:
        """Fold one completed job into every level."""
        if power_w <= 0:
            raise ValidationError("observed power must be positive")
        self._exact.setdefault(self._key(user, nodes, walltime_s), _RunningMean()).update(power_w)
        self._user_nodes.setdefault((user, int(nodes)), _RunningMean()).update(power_w)
        self._user.setdefault(user, _RunningMean()).update(power_w)
        self._global.update(power_w)

    # -- state serialization (lifecycle snapshots, docs/LIFECYCLE.md) ----

    def state_dict(self) -> dict[str, Any]:
        """Plain-JSON form of the full predictor state.

        Floats serialize via ``repr`` (the JSON encoder's float path), so
        :meth:`from_state_dict` restores a *bit-identical* predictor —
        the property the lifecycle layer's promote/rollback round-trip
        test asserts. Level keys join their parts with an unprintable
        separator to stay JSON-able.
        """

        def dump(table: Mapping[Any, _RunningMean]) -> list[list[Any]]:
            out = []
            for key, stat in table.items():
                parts = key if isinstance(key, tuple) else (key,)
                joined = _KEY_SEP.join(str(p) for p in parts)
                out.append([joined, stat.count, stat.mean])
            out.sort(key=lambda row: row[0])
            return out

        return {
            "format": 1,
            "min_count": self.min_count,
            "global": [self._global.count, self._global.mean],
            "exact": dump(self._exact),
            "user_nodes": dump(self._user_nodes),
            "user": dump(self._user),
        }

    @classmethod
    def from_state_dict(cls, state: Mapping[str, Any]) -> "OnlinePowerPredictor":
        """Rebuild a predictor from :meth:`state_dict` (bit-identical)."""
        if state.get("format") != 1:
            raise ValidationError(
                f"unknown online-predictor state format {state.get('format')!r}"
            )
        predictor = cls(min_count=int(state["min_count"]))
        count, mean = state["global"]
        predictor._global.count = int(count)
        predictor._global.mean = float(mean)

        def load(rows, arity: int):
            table: dict = {}
            for joined, count, mean in rows:
                parts = joined.split(_KEY_SEP)
                if arity == 1:
                    key: Any = parts[0]
                else:
                    key = (parts[0], *(int(p) for p in parts[1:arity]))
                stat = _RunningMean()
                stat.count = int(count)
                stat.mean = float(mean)
                table[key] = stat
            return table

        predictor._exact = load(state["exact"], 3)
        predictor._user_nodes = load(state["user_nodes"], 2)
        predictor._user = load(state["user"], 1)
        return predictor

    def copy(self) -> "OnlinePowerPredictor":
        """Independent bit-identical clone (state-dict round trip)."""
        return OnlinePowerPredictor.from_state_dict(self.state_dict())

    def state_digest(self) -> str:
        """SHA-256 over the canonical state — equal iff states are equal.

        Two predictors fed the same records in the same order digest
        identically on any machine, which is how the lifecycle tests
        assert prequential determinism without comparing predictions.
        """
        payload = json.dumps(self.state_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class OnlineResult:
    """Prequential evaluation outcome."""

    summary: ErrorSummary  # errors after the warmup window
    warmup_jobs: int
    errors: np.ndarray  # all post-warmup absolute fractional errors
    # Learning curve: mean error per decile of the (post-warmup) stream.
    learning_curve: np.ndarray


def evaluate_online(
    jobs: Table,
    predictor: OnlinePowerPredictor | None = None,
    warmup_fraction: float = 0.1,
) -> OnlineResult:
    """Predict-then-update sweep over ``jobs`` in submit order."""
    if not 0 <= warmup_fraction < 1:
        raise ValidationError("warmup_fraction must be in [0, 1)")
    required = {"user", "nodes", "req_walltime_s", "submit_s", "pernode_power_w"}
    missing = required - set(jobs.column_names)
    if missing:
        raise ValidationError(f"job table lacks columns {sorted(missing)}")
    if len(jobs) < 10:
        raise ValidationError("online evaluation needs at least 10 jobs")

    predictor = predictor or OnlinePowerPredictor()
    ordered = jobs.sort_by("submit_s")
    users = ordered["user"]
    nodes = ordered["nodes"]
    walls = ordered["req_walltime_s"]
    actual = ordered["pernode_power_w"].astype(float)

    n = len(ordered)
    warmup = int(warmup_fraction * n)
    errors = np.empty(n - warmup)
    for i in range(n):
        predicted = predictor.predict(users[i], nodes[i], walls[i])
        if i >= warmup:
            if predicted <= 0:  # nothing observed yet: count as total miss
                errors[i - warmup] = 1.0
            else:
                errors[i - warmup] = abs(actual[i] - predicted) / actual[i]
        predictor.observe(users[i], nodes[i], walls[i], float(actual[i]))

    deciles = np.array_split(errors, 10)
    curve = np.asarray([chunk.mean() if len(chunk) else np.nan for chunk in deciles])
    return OnlineResult(
        summary=error_summary(errors),
        warmup_jobs=warmup,
        errors=errors,
        learning_curve=curve,
    )
