"""Online (deployment-order) power prediction.

The paper motivates "light-weight and easy to maintain/update" models:
a production predictor sees jobs in submit order, must predict *before*
each job runs, and learns from it afterwards. This module provides

* :class:`OnlinePowerPredictor` — an incremental hierarchical-mean model
  (exact (user, nodes, walltime) → (user, nodes) → user → global running
  means) updated in O(1) per completed job, and
* :func:`evaluate_online` — a prequential (predict-then-update) sweep
  over a job table in submit order, the honest deployment evaluation the
  random-split protocol approximates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.frames import Table
from repro.ml.metrics import ErrorSummary, error_summary

__all__ = ["OnlinePowerPredictor", "OnlineResult", "evaluate_online"]


class _RunningMean:
    __slots__ = ("count", "mean")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count


class OnlinePowerPredictor:
    """Incremental hierarchical-mean predictor.

    ``min_count`` is the evidence threshold: a level is trusted only
    once it has seen that many jobs; otherwise the predictor backs off
    to the next-coarser level.
    """

    def __init__(self, min_count: int = 1) -> None:
        if min_count < 1:
            raise ValidationError("min_count must be >= 1")
        self.min_count = min_count
        self._exact: dict[tuple, _RunningMean] = {}
        self._user_nodes: dict[tuple, _RunningMean] = {}
        self._user: dict[str, _RunningMean] = {}
        self._global = _RunningMean()

    @property
    def jobs_seen(self) -> int:
        return self._global.count

    @staticmethod
    def _key(user: str, nodes: int, walltime_s: int) -> tuple:
        return (user, int(nodes), int(walltime_s))

    def predict(self, user: str, nodes: int, walltime_s: int) -> float:
        """Best available estimate before the job runs (NaN-free).

        Returns the global mean when nothing has been observed yet, and
        0.0 only for the very first job of the deployment.
        """
        for table, key in (
            (self._exact, self._key(user, nodes, walltime_s)),
            (self._user_nodes, (user, int(nodes))),
            (self._user, user),
        ):
            stat = table.get(key)
            if stat is not None and stat.count >= self.min_count:
                return stat.mean
        return self._global.mean

    def observe(self, user: str, nodes: int, walltime_s: int, power_w: float) -> None:
        """Fold one completed job into every level."""
        if power_w <= 0:
            raise ValidationError("observed power must be positive")
        self._exact.setdefault(self._key(user, nodes, walltime_s), _RunningMean()).update(power_w)
        self._user_nodes.setdefault((user, int(nodes)), _RunningMean()).update(power_w)
        self._user.setdefault(user, _RunningMean()).update(power_w)
        self._global.update(power_w)


@dataclass(frozen=True)
class OnlineResult:
    """Prequential evaluation outcome."""

    summary: ErrorSummary  # errors after the warmup window
    warmup_jobs: int
    errors: np.ndarray  # all post-warmup absolute fractional errors
    # Learning curve: mean error per decile of the (post-warmup) stream.
    learning_curve: np.ndarray


def evaluate_online(
    jobs: Table,
    predictor: OnlinePowerPredictor | None = None,
    warmup_fraction: float = 0.1,
) -> OnlineResult:
    """Predict-then-update sweep over ``jobs`` in submit order."""
    if not 0 <= warmup_fraction < 1:
        raise ValidationError("warmup_fraction must be in [0, 1)")
    required = {"user", "nodes", "req_walltime_s", "submit_s", "pernode_power_w"}
    missing = required - set(jobs.column_names)
    if missing:
        raise ValidationError(f"job table lacks columns {sorted(missing)}")
    if len(jobs) < 10:
        raise ValidationError("online evaluation needs at least 10 jobs")

    predictor = predictor or OnlinePowerPredictor()
    ordered = jobs.sort_by("submit_s")
    users = ordered["user"]
    nodes = ordered["nodes"]
    walls = ordered["req_walltime_s"]
    actual = ordered["pernode_power_w"].astype(float)

    n = len(ordered)
    warmup = int(warmup_fraction * n)
    errors = np.empty(n - warmup)
    for i in range(n):
        predicted = predictor.predict(users[i], nodes[i], walls[i])
        if i >= warmup:
            if predicted <= 0:  # nothing observed yet: count as total miss
                errors[i - warmup] = 1.0
            else:
                errors[i - warmup] = abs(actual[i] - predicted) / actual[i]
        predictor.observe(users[i], nodes[i], walls[i], float(actual[i]))

    deciles = np.array_split(errors, 10)
    curve = np.asarray([chunk.mean() if len(chunk) else np.nan for chunk in deciles])
    return OnlineResult(
        summary=error_summary(errors),
        warmup_jobs=warmup,
        errors=errors,
        learning_curve=curve,
    )
