"""Rule-based prediction baselines.

Section 5 of the paper: "We did not find analytical, ad-hoc or
rule-based approaches to work well for prediction." These are those
approaches, implemented so the claim can be tested (ablation bench A3):

* :class:`GlobalMeanBaseline` — predict the training-set mean power.
* :class:`GroupMeanBaseline` — predict the mean of one feature group
  (e.g. per-user mean), falling back to the global mean.
* :class:`HierarchicalRuleBaseline` — the strongest rule: exact-match
  lookup on (user, nodes, walltime), backing off to (user, nodes), then
  (user), then global. This is what a site operator would build without
  ML; the tree wins because its splits *generalize* across neighboring
  configurations instead of memorizing exact tuples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Estimator, check_Xy

__all__ = ["GlobalMeanBaseline", "GroupMeanBaseline", "HierarchicalRuleBaseline"]


class GlobalMeanBaseline(Estimator):
    """Predicts the training mean for every job."""

    def __init__(self) -> None:
        super().__init__()
        self._mean: float = 0.0

    def fit(self, X, y, categorical: tuple[int, ...] = ()) -> "GlobalMeanBaseline":
        _, y = check_Xy(X, y)
        self._mean = float(y.mean())
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X, _ = check_Xy(X)
        return np.full(X.shape[0], self._mean)


def _keys(X: np.ndarray, columns: tuple[int, ...]) -> list[tuple]:
    return [tuple(row) for row in np.round(X[:, list(columns)], 9)]


class GroupMeanBaseline(Estimator):
    """Predicts the mean of one feature group (default: column 0, the user)."""

    def __init__(self, group_columns: tuple[int, ...] = (0,)) -> None:
        super().__init__()
        if not group_columns:
            raise ModelError("group_columns must not be empty")
        self.group_columns = tuple(group_columns)
        self._means: dict[tuple, float] = {}
        self._global: float = 0.0

    def fit(self, X, y, categorical: tuple[int, ...] = ()) -> "GroupMeanBaseline":
        X, y = check_Xy(X, y)
        bad = [c for c in self.group_columns if not 0 <= c < X.shape[1]]
        if bad:
            raise ModelError(f"group columns out of range: {bad}")
        self._global = float(y.mean())
        sums: dict[tuple, list[float]] = {}
        for key, target in zip(_keys(X, self.group_columns), y):
            sums.setdefault(key, []).append(float(target))
        self._means = {k: float(np.mean(v)) for k, v in sums.items()}
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X, _ = check_Xy(X)
        return np.asarray(
            [self._means.get(k, self._global) for k in _keys(X, self.group_columns)]
        )


class HierarchicalRuleBaseline(Estimator):
    """Exact-match lookup with back-off over feature prefixes.

    ``levels`` lists the column tuples to try in order; the first level
    with a training match wins, else the global mean.
    """

    def __init__(
        self, levels: tuple[tuple[int, ...], ...] = ((0, 1, 2), (0, 1), (0,))
    ) -> None:
        super().__init__()
        if not levels:
            raise ModelError("levels must not be empty")
        self.levels = tuple(tuple(level) for level in levels)
        self._tables: list[dict[tuple, float]] = []
        self._global: float = 0.0

    def fit(self, X, y, categorical: tuple[int, ...] = ()) -> "HierarchicalRuleBaseline":
        X, y = check_Xy(X, y)
        for level in self.levels:
            bad = [c for c in level if not 0 <= c < X.shape[1]]
            if bad:
                raise ModelError(f"level columns out of range: {bad}")
        self._global = float(y.mean())
        self._tables = []
        for level in self.levels:
            sums: dict[tuple, list[float]] = {}
            for key, target in zip(_keys(X, level), y):
                sums.setdefault(key, []).append(float(target))
            self._tables.append({k: float(np.mean(v)) for k, v in sums.items()})
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X, _ = check_Xy(X)
        out = np.full(X.shape[0], self._global)
        resolved = np.zeros(X.shape[0], dtype=bool)
        for level, table in zip(self.levels, self._tables):
            keys = _keys(X, level)
            for i, key in enumerate(keys):
                if not resolved[i] and key in table:
                    out[i] = table[key]
                    resolved[i] = True
        return out
