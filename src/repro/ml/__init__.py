"""From-scratch ML substrate for pre-execution power prediction (Sec. 5).

scikit-learn is not a dependency; the three models the paper evaluates
are implemented here on NumPy:

* :class:`~repro.ml.tree.DecisionTreeRegressor` — the paper's "Binary
  Decision Tree" (CART, variance-reduction splits, native categorical
  support via the Breiman mean-target ordering),
* :class:`~repro.ml.knn.KNNRegressor` — distance-weighted k-NN with
  standardized numeric features and Hamming distance on categoricals,
* :class:`~repro.ml.flda.FLDARegressor` — Fisher's linear discriminant
  over quantile-binned power classes, predicting the bin mean.

:mod:`~repro.ml.split` implements the paper's evaluation protocol
(random 80/20, ten repetitions, validation users ⊆ training users).
"""

from repro.ml.base import Estimator
from repro.ml.baselines import (
    GlobalMeanBaseline,
    GroupMeanBaseline,
    HierarchicalRuleBaseline,
)
from repro.ml.encoding import FeatureSpec, encode_features
from repro.ml.flda import FLDARegressor
from repro.ml.knn import KNNRegressor
from repro.ml.metrics import (
    absolute_percentage_error,
    brier_error,
    classification_summary,
    error_summary,
    per_group_error,
)
from repro.ml.online import OnlinePowerPredictor, OnlineResult, evaluate_online
from repro.ml.pipeline import (
    FittedPredictor,
    PredictionResult,
    evaluate_models,
    fit_predictor,
    prediction_features,
)
from repro.ml.split import train_validation_split, repeated_splits
from repro.ml.tracks import (
    FAILURE_TRACK,
    GPU_POWER_TRACK,
    POWER_TRACK,
    Track,
    get_track,
    known_tracks,
)
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "Estimator",
    "GlobalMeanBaseline",
    "GroupMeanBaseline",
    "HierarchicalRuleBaseline",
    "OnlinePowerPredictor",
    "OnlineResult",
    "evaluate_online",
    "FeatureSpec",
    "encode_features",
    "DecisionTreeRegressor",
    "KNNRegressor",
    "FLDARegressor",
    "train_validation_split",
    "repeated_splits",
    "absolute_percentage_error",
    "brier_error",
    "classification_summary",
    "error_summary",
    "per_group_error",
    "Track",
    "POWER_TRACK",
    "GPU_POWER_TRACK",
    "FAILURE_TRACK",
    "known_tracks",
    "get_track",
    "PredictionResult",
    "FittedPredictor",
    "fit_predictor",
    "evaluate_models",
    "prediction_features",
]
