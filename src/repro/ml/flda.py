"""Fisher's Linear Discriminant Analysis for power prediction.

The paper evaluates FLDA as a *classification* approach to power
prediction: per-node power is discretized into classes, a linear
discriminant assigns each validation job to a class, and the class's
mean power is the prediction. The linear decision boundaries are exactly
why the paper finds it weak on Emmy ("a linear classification
approach … performs worse when the dataset is diverse and cannot be
simply divided along linear lines").

Implementation: quantile-bin the target into ``n_bins`` classes, one-hot
the categorical features, and classify with regularized LDA (shared
within-class covariance, Gaussian class conditionals, equal treatment
of priors via the standard discriminant score).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Estimator, check_Xy

__all__ = ["FLDARegressor"]


class FLDARegressor(Estimator):
    """LDA over quantile-binned targets; predicts the assigned bin's mean.

    Parameters
    ----------
    n_bins:
        Number of power classes (quantile bins over the training target).
    ridge:
        Tikhonov term added to the pooled covariance for invertibility
        (one-hot user blocks make it rank-deficient otherwise).
    """

    def __init__(self, n_bins: int = 10, ridge: float = 1e-3) -> None:
        super().__init__()
        if n_bins < 2:
            raise ModelError("n_bins must be >= 2")
        if ridge <= 0:
            raise ModelError("ridge must be positive")
        self.n_bins = n_bins
        self.ridge = ridge
        self._cat: tuple[int, ...] = ()
        self._cat_cards: list[int] = []
        self._num_idx: np.ndarray = np.empty(0, dtype=np.int64)
        self._num_mean: np.ndarray | None = None
        self._num_scale: np.ndarray | None = None
        self._coef: np.ndarray | None = None  # (n_classes, d)
        self._intercept: np.ndarray | None = None
        self._class_means: np.ndarray | None = None

    # -- encoding ----------------------------------------------------------

    def _expand(self, X: np.ndarray) -> np.ndarray:
        """One-hot categoricals + standardized numerics."""
        blocks: list[np.ndarray] = []
        for j, card in zip(self._cat, self._cat_cards):
            codes = X[:, j].astype(np.int64)
            if np.any((codes < 0) | (codes >= card)):
                raise ModelError(
                    f"categorical feature {j} has codes outside [0, {card})"
                )
            onehot = np.zeros((X.shape[0], card))
            onehot[np.arange(X.shape[0]), codes] = 1.0
            blocks.append(onehot)
        if len(self._num_idx):
            blocks.append((X[:, self._num_idx] - self._num_mean) / self._num_scale)
        return np.hstack(blocks)

    # -- fitting -------------------------------------------------------------

    def fit(self, X, y, categorical: tuple[int, ...] = ()) -> "FLDARegressor":
        X, y = check_Xy(X, y)
        bad = [c for c in categorical if not 0 <= c < X.shape[1]]
        if bad:
            raise ModelError(f"categorical indices out of range: {bad}")
        self._cat = tuple(sorted(categorical))
        self._cat_cards = [int(X[:, j].max()) + 1 for j in self._cat]
        self._num_idx = np.asarray(
            [i for i in range(X.shape[1]) if i not in categorical], dtype=np.int64
        )
        if len(self._num_idx):
            self._num_mean = X[:, self._num_idx].mean(axis=0)
            scale = X[:, self._num_idx].std(axis=0)
            scale[scale == 0] = 1.0
            self._num_scale = scale

        # Quantile-bin the target into classes (merge empty/duplicate edges).
        edges = np.unique(np.quantile(y, np.linspace(0, 1, self.n_bins + 1)[1:-1]))
        labels = np.searchsorted(edges, y, side="left")
        classes, labels = np.unique(labels, return_inverse=True)
        n_classes = len(classes)
        if n_classes < 2:
            raise ModelError("target collapses to a single class; cannot fit FLDA")

        Z = self._expand(X)
        d = Z.shape[1]
        means = np.empty((n_classes, d))
        priors = np.empty(n_classes)
        cov = np.zeros((d, d))
        for c in range(n_classes):
            mask = labels == c
            members = Z[mask]
            means[c] = members.mean(axis=0)
            priors[c] = mask.mean()
            centered = members - means[c]
            cov += centered.T @ centered
        cov /= max(1, Z.shape[0] - n_classes)
        cov += self.ridge * np.eye(d)

        # Linear discriminant: δ_c(z) = z·Σ⁻¹µ_c − ½µ_cᵀΣ⁻¹µ_c + log π_c.
        solve = np.linalg.solve(cov, means.T).T  # (n_classes, d)
        self._coef = solve
        self._intercept = -0.5 * np.einsum("cd,cd->c", means, solve) + np.log(priors)

        self._class_means = np.asarray(
            [y[labels == c].mean() for c in range(n_classes)]
        )
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X, _ = check_Xy(X)
        Z = self._expand(X)
        scores = Z @ self._coef.T + self._intercept
        return self._class_means[np.argmax(scores, axis=1)]

    def predict_class(self, X) -> np.ndarray:
        """Assigned power-class index per row (diagnostics)."""
        self._require_fitted()
        X, _ = check_Xy(X)
        Z = self._expand(X)
        return np.argmax(Z @ self._coef.T + self._intercept, axis=1)
