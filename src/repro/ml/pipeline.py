"""End-to-end prediction pipeline over a job table.

Wraps feature encoding, the repeated-split protocol, and per-job /
per-user error collection for any :class:`~repro.ml.base.Estimator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.frames import Table
from repro.ml.encoding import FeatureSpec, encode_features
from repro.ml.metrics import ErrorSummary, absolute_percentage_error, error_summary
from repro.ml.split import repeated_splits

__all__ = ["PredictionResult", "evaluate_models", "prediction_features"]

TARGET_COLUMN = "pernode_power_w"


def prediction_features(spec: FeatureSpec = FeatureSpec()) -> list[str]:
    """The pre-execution feature columns the pipeline reads."""
    return list(spec.categorical_columns) + list(spec.numeric_columns)


@dataclass
class PredictionResult:
    """Pooled evaluation outcome of one model across all repeats."""

    model_name: str
    errors: np.ndarray  # pooled per-prediction absolute fractional errors
    users: np.ndarray  # user of each pooled prediction
    summary: ErrorSummary = field(init=False)

    def __post_init__(self) -> None:
        if self.errors.shape != self.users.shape:
            raise ValidationError("errors and users must align")
        self.summary = error_summary(self.errors)

    def per_user_mean_error(self) -> tuple[np.ndarray, np.ndarray]:
        """(user_ids, mean_error) — the Fig 15 distribution."""
        from repro.ml.metrics import per_group_error

        return per_group_error(self.users, self.errors)


def evaluate_models(
    jobs: Table,
    models: Mapping[str, Callable[[], object]],
    n_repeats: int = 10,
    train_fraction: float = 0.8,
    seed: int = 0,
    feature_spec: FeatureSpec = FeatureSpec(),
) -> dict[str, PredictionResult]:
    """Run the paper's protocol for several models on one job table.

    ``models`` maps display name → zero-arg factory returning a fresh
    estimator (a fresh model is fitted per repeat).
    """
    if TARGET_COLUMN not in jobs:
        raise ValidationError(f"job table lacks the target column {TARGET_COLUMN!r}")
    for col in prediction_features(feature_spec):
        if col not in jobs:
            raise ValidationError(f"job table lacks feature column {col!r}")

    y_all = jobs[TARGET_COLUMN].astype(float)
    users_all = jobs["user"]
    cat_idx = feature_spec.categorical_indices

    results: dict[str, PredictionResult] = {}
    splits = list(
        repeated_splits(users_all, n_repeats=n_repeats, train_fraction=train_fraction, seed=seed)
    )
    for name, factory in models.items():
        pooled_errors: list[np.ndarray] = []
        pooled_users: list[np.ndarray] = []
        for train_idx, val_idx in splits:
            train_tbl = jobs.take(train_idx)
            val_tbl = jobs.take(val_idx)
            X_train, encoders = encode_features(train_tbl, feature_spec)
            X_val, _ = encode_features(val_tbl, feature_spec, encoders=encoders)
            model = factory()
            model.fit(X_train, y_all[train_idx], categorical=cat_idx)
            predictions = model.predict(X_val)
            pooled_errors.append(
                absolute_percentage_error(y_all[val_idx], predictions)
            )
            pooled_users.append(users_all[val_idx])
        results[name] = PredictionResult(
            model_name=name,
            errors=np.concatenate(pooled_errors),
            users=np.concatenate(pooled_users),
        )
    return results
