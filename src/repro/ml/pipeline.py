"""End-to-end prediction pipeline over a job table.

Wraps feature encoding, the repeated-split protocol, and per-job /
per-user error collection for any :class:`~repro.ml.base.Estimator`.

:func:`fit_predictor` is the single train path shared by the offline
protocol (:func:`evaluate_models`) and the online serving layer
(:mod:`repro.serve`): both encode features, fit, and predict through the
same :class:`FittedPredictor`, so a served prediction is bit-identical
to the offline evaluation's prediction for the same training rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.frames import Table
from repro.ml.encoding import CategoryEncoder, FeatureSpec, encode_features
from repro.ml.metrics import ErrorSummary, absolute_percentage_error, error_summary
from repro.ml.split import repeated_splits

__all__ = [
    "PredictionResult",
    "FittedPredictor",
    "fit_predictor",
    "evaluate_models",
    "prediction_features",
]

TARGET_COLUMN = "pernode_power_w"


def prediction_features(spec: FeatureSpec | None = None) -> list[str]:
    """The pre-execution feature columns the pipeline reads."""
    spec = spec if spec is not None else FeatureSpec()
    return list(spec.categorical_columns) + list(spec.numeric_columns)


def _check_feature_columns(
    jobs: Table, spec: FeatureSpec, target: str | None
) -> None:
    if target is not None and target not in jobs:
        raise ValidationError(f"job table lacks the target column {target!r}")
    for col in prediction_features(spec):
        if col not in jobs:
            raise ValidationError(f"job table lacks feature column {col!r}")


@dataclass
class PredictionResult:
    """Pooled evaluation outcome of one model across all repeats."""

    model_name: str
    errors: np.ndarray  # pooled per-prediction absolute fractional errors
    users: np.ndarray  # user of each pooled prediction
    summary: ErrorSummary = field(init=False)

    def __post_init__(self) -> None:
        if self.errors.shape != self.users.shape:
            raise ValidationError("errors and users must align")
        self.summary = error_summary(self.errors)

    def per_user_mean_error(self) -> tuple[np.ndarray, np.ndarray]:
        """(user_ids, mean_error) — the Fig 15 distribution."""
        from repro.ml.metrics import per_group_error

        return per_group_error(self.users, self.errors)


@dataclass
class FittedPredictor:
    """One trained estimator plus the encoders it was fitted with.

    The unit both the offline protocol and the serving layer share: it
    owns the exact encode → predict path, so the same input rows produce
    bit-identical predictions no matter which layer asks.
    """

    model_name: str
    model: object
    feature_spec: FeatureSpec
    encoders: dict[str, CategoryEncoder]
    n_train: int
    # Class-attribute default so predictors pickled before the column
    # became configurable still unpickle to the power target.
    target_column: str = TARGET_COLUMN

    @property
    def known_users(self) -> frozenset[str]:
        """Users the encoders saw at fit time (predictable users)."""
        encoder = self.encoders.get("user")
        if encoder is None:
            return frozenset()
        return frozenset(encoder.categories.tolist())

    def encode_table(self, jobs: Table) -> np.ndarray:
        """The feature matrix for every row of ``jobs`` (fit-time encoders).

        The single encode path all prediction surfaces share: offline
        evaluation, the micro-batched serving path, and the array-backed
        :class:`~repro.serve.flat_bdt.FlatBDTServable` all call it, so
        their features are identical by construction.
        """
        _check_feature_columns(jobs, self.feature_spec, target=None)
        X, _ = encode_features(jobs, self.feature_spec, encoders=self.encoders)
        return X

    def encode_records(self, records: Sequence[Mapping]) -> np.ndarray:
        """:meth:`encode_table` for request-style rows (dicts of values)."""
        columns = prediction_features(self.feature_spec)
        missing = [c for c in columns if any(c not in r for r in records)]
        if missing:
            raise ValidationError(f"records lack feature fields {missing}")
        table = Table({c: [r[c] for r in records] for c in columns})
        return self.encode_table(table)

    def predict_table(self, jobs: Table) -> np.ndarray:
        """Vectorized predictions for every row of ``jobs``."""
        return np.asarray(self.model.predict(self.encode_table(jobs)), dtype=float)

    def predict_records(self, records: Sequence[Mapping]) -> np.ndarray:
        """Predictions for request-style rows (dicts of feature values).

        The serving path: a micro-batch of ``{"user": ..., "nodes": ...,
        "req_walltime_s": ...}`` dicts becomes one vectorized
        :meth:`predict_table` call.
        """
        return np.asarray(
            self.model.predict(self.encode_records(records)), dtype=float
        )


def fit_predictor(
    jobs: Table,
    factory: Callable[[], object],
    model_name: str = "model",
    feature_spec: FeatureSpec | None = None,
    target_column: str = TARGET_COLUMN,
) -> FittedPredictor:
    """Encode ``jobs`` and fit one fresh estimator on every row.

    The single train path: :func:`evaluate_models` calls it per split,
    the serve model registry calls it on a full job table.
    ``target_column`` selects what the estimator regresses — per-node
    power by default; the GPU and failure tracks point it elsewhere.
    """
    spec = feature_spec if feature_spec is not None else FeatureSpec()
    _check_feature_columns(jobs, spec, target=target_column)
    if len(jobs) == 0:
        raise ValidationError("cannot fit a predictor on an empty job table")
    X, encoders = encode_features(jobs, spec)
    y = jobs[target_column].astype(float)
    model = factory()
    model.fit(X, y, categorical=spec.categorical_indices)
    return FittedPredictor(
        model_name=model_name,
        model=model,
        feature_spec=spec,
        encoders=encoders,
        n_train=len(jobs),
        target_column=target_column,
    )


def evaluate_models(
    jobs: Table,
    models: Mapping[str, Callable[[], object]],
    n_repeats: int = 10,
    train_fraction: float = 0.8,
    seed: int = 0,
    feature_spec: FeatureSpec | None = None,
    target_column: str = TARGET_COLUMN,
    error_fn: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> dict[str, PredictionResult]:
    """Run the paper's protocol for several models on one job table.

    ``models`` maps display name → zero-arg factory returning a fresh
    estimator (a fresh model is fitted per repeat). ``error_fn`` maps
    ``(actual, predicted)`` to per-prediction errors; the default is the
    paper's absolute percentage error, which requires a strictly
    positive target — classification-style tracks pass e.g. a Brier
    (squared-probability) error instead.
    """
    spec = feature_spec if feature_spec is not None else FeatureSpec()
    _check_feature_columns(jobs, spec, target=target_column)
    per_prediction_error = error_fn or absolute_percentage_error

    y_all = jobs[target_column].astype(float)
    users_all = jobs["user"]

    results: dict[str, PredictionResult] = {}
    splits = list(
        repeated_splits(users_all, n_repeats=n_repeats, train_fraction=train_fraction, seed=seed)
    )
    for name, factory in models.items():
        pooled_errors: list[np.ndarray] = []
        pooled_users: list[np.ndarray] = []
        for train_idx, val_idx in splits:
            predictor = fit_predictor(
                jobs.take(train_idx), factory, model_name=name,
                feature_spec=spec, target_column=target_column,
            )
            predictions = predictor.predict_table(jobs.take(val_idx))
            pooled_errors.append(
                per_prediction_error(y_all[val_idx], predictions)
            )
            pooled_users.append(users_all[val_idx])
        results[name] = PredictionResult(
            model_name=name,
            errors=np.concatenate(pooled_errors),
            users=np.concatenate(pooled_users),
        )
    return results
