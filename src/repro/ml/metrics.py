"""Prediction-error metrics (Figs 14–15).

The paper's metric: "the absolute prediction error is the absolute value
of the difference between the actual per-node power consumption and the
predicted per-node power consumption as percent of the actual per-node
power consumption."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.stats.distributions import ECDF

__all__ = ["absolute_percentage_error", "brier_error", "classification_summary",
           "error_summary", "per_group_error", "ErrorSummary",
           "ClassificationSummary"]


def absolute_percentage_error(actual, predicted) -> np.ndarray:
    """|actual − predicted| / actual, elementwise (as a fraction)."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ValidationError(
            f"shape mismatch: actual {actual.shape} vs predicted {predicted.shape}"
        )
    if np.any(actual <= 0):
        raise ValidationError("actual values must be positive for percentage error")
    return np.abs(actual - predicted) / actual


def brier_error(actual, predicted) -> np.ndarray:
    """Per-prediction squared probability error for a 0/1 target.

    The classification-track counterpart of
    :func:`absolute_percentage_error`: ``actual`` holds 0/1 outcomes,
    ``predicted`` probabilities (clipped into [0, 1] — regressors can
    overshoot slightly). Lives in [0, 1]; 0.25 is the score of always
    answering 0.5.
    """
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ValidationError(
            f"shape mismatch: actual {actual.shape} vs predicted {predicted.shape}"
        )
    if np.any((actual != 0.0) & (actual != 1.0)):
        raise ValidationError("actual values must be 0/1 for Brier error")
    return (np.clip(predicted, 0.0, 1.0) - actual) ** 2


@dataclass(frozen=True)
class ErrorSummary:
    """Distributional summary of absolute percentage errors."""

    mean: float
    median: float
    frac_below_5pct: float
    frac_below_10pct: float
    n: int

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "median": self.median,
            "frac_below_5pct": self.frac_below_5pct,
            "frac_below_10pct": self.frac_below_10pct,
            "n": self.n,
        }


def error_summary(errors) -> ErrorSummary:
    """Summarize an error sample the way Fig 14's text does."""
    e = np.asarray(errors, dtype=float).ravel()
    if e.size == 0:
        raise ValidationError("error_summary requires a non-empty sample")
    ecdf = ECDF(e)
    return ErrorSummary(
        mean=float(e.mean()),
        median=float(np.median(e)),
        frac_below_5pct=float(ecdf(0.05)),
        frac_below_10pct=float(ecdf(0.10)),
        n=int(e.size),
    )


@dataclass(frozen=True)
class ClassificationSummary:
    """Threshold-free and thresholded quality of probability predictions."""

    brier: float
    accuracy: float
    base_rate: float
    n: int

    def as_dict(self) -> dict[str, float]:
        return {
            "brier": self.brier,
            "accuracy": self.accuracy,
            "base_rate": self.base_rate,
            "n": self.n,
        }


def classification_summary(actual, predicted) -> ClassificationSummary:
    """Summarize probability predictions of a 0/1 outcome.

    ``brier`` is the mean squared probability error, ``accuracy`` the
    hit rate at the 0.5 threshold, ``base_rate`` the outcome prevalence
    (the score to beat: always predicting the base rate gives Brier
    ``base_rate * (1 - base_rate)``).
    """
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    errors = brier_error(actual, predicted)
    if errors.size == 0:
        raise ValidationError("classification_summary requires a non-empty sample")
    hits = (np.clip(predicted, 0.0, 1.0) >= 0.5) == (actual >= 0.5)
    return ClassificationSummary(
        brier=float(errors.mean()),
        accuracy=float(hits.mean()),
        base_rate=float(actual.mean()),
        n=int(errors.size),
    )


def per_group_error(groups, errors) -> tuple[np.ndarray, np.ndarray]:
    """Mean absolute error per group (Fig 15's per-user view).

    Returns ``(group_ids, mean_errors)`` sorted by group id.
    """
    groups = np.asarray(groups)
    e = np.asarray(errors, dtype=float)
    if groups.shape != e.shape:
        raise ValidationError("groups and errors must align")
    ids, inverse = np.unique(groups, return_inverse=True)
    sums = np.bincount(inverse, weights=e)
    counts = np.bincount(inverse)
    return ids, sums / counts
