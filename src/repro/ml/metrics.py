"""Prediction-error metrics (Figs 14–15).

The paper's metric: "the absolute prediction error is the absolute value
of the difference between the actual per-node power consumption and the
predicted per-node power consumption as percent of the actual per-node
power consumption."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.stats.distributions import ECDF

__all__ = ["absolute_percentage_error", "error_summary", "per_group_error", "ErrorSummary"]


def absolute_percentage_error(actual, predicted) -> np.ndarray:
    """|actual − predicted| / actual, elementwise (as a fraction)."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ValidationError(
            f"shape mismatch: actual {actual.shape} vs predicted {predicted.shape}"
        )
    if np.any(actual <= 0):
        raise ValidationError("actual values must be positive for percentage error")
    return np.abs(actual - predicted) / actual


@dataclass(frozen=True)
class ErrorSummary:
    """Distributional summary of absolute percentage errors."""

    mean: float
    median: float
    frac_below_5pct: float
    frac_below_10pct: float
    n: int

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "median": self.median,
            "frac_below_5pct": self.frac_below_5pct,
            "frac_below_10pct": self.frac_below_10pct,
            "n": self.n,
        }


def error_summary(errors) -> ErrorSummary:
    """Summarize an error sample the way Fig 14's text does."""
    e = np.asarray(errors, dtype=float).ravel()
    if e.size == 0:
        raise ValidationError("error_summary requires a non-empty sample")
    ecdf = ECDF(e)
    return ErrorSummary(
        mean=float(e.mean()),
        median=float(np.median(e)),
        frac_below_5pct=float(ecdf(0.05)),
        frac_below_10pct=float(ecdf(0.10)),
        n=int(e.size),
    )


def per_group_error(groups, errors) -> tuple[np.ndarray, np.ndarray]:
    """Mean absolute error per group (Fig 15's per-user view).

    Returns ``(group_ids, mean_errors)`` sorted by group id.
    """
    groups = np.asarray(groups)
    e = np.asarray(errors, dtype=float)
    if groups.shape != e.shape:
        raise ValidationError("groups and errors must align")
    ids, inverse = np.unique(groups, return_inverse=True)
    sums = np.bincount(inverse, weights=e)
    counts = np.bincount(inverse)
    return ids, sums / counts
