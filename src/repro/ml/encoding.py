"""Feature encoding from job tables to model matrices."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.frames import Table

__all__ = ["FeatureSpec", "encode_features", "CategoryEncoder"]


class CategoryEncoder:
    """Maps string categories to dense integer codes (fit on training data).

    Unseen categories at transform time raise — the paper's protocol
    guarantees validation users appear in training, so an unseen user is
    a protocol violation, not a soft case.
    """

    def __init__(self) -> None:
        self._categories: np.ndarray | None = None

    def fit(self, values) -> "CategoryEncoder":
        self._categories = np.unique(np.asarray(values, dtype=str))
        return self

    @property
    def categories(self) -> np.ndarray:
        if self._categories is None:
            raise ModelError("encoder not fitted")
        return self._categories

    def transform(self, values) -> np.ndarray:
        cats = self.categories
        values = np.asarray(values, dtype=str)
        codes = np.searchsorted(cats, values)
        codes_clipped = np.clip(codes, 0, len(cats) - 1)
        bad = cats[codes_clipped] != values
        if np.any(bad):
            raise ModelError(
                f"unseen categories at transform time: {np.unique(values[bad])[:5].tolist()}"
            )
        return codes_clipped.astype(np.int64)

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)


@dataclass(frozen=True)
class FeatureSpec:
    """Which table columns feed the models.

    The paper's pre-execution features: user id (categorical), number of
    nodes, and requested walltime. ``log_transform`` applies log1p to the
    numeric columns — node counts and walltimes are log-normally spread.
    """

    categorical_columns: tuple[str, ...] = ("user",)
    numeric_columns: tuple[str, ...] = ("nodes", "req_walltime_s")
    log_transform: bool = True

    @property
    def categorical_indices(self) -> tuple[int, ...]:
        return tuple(range(len(self.categorical_columns)))


def encode_features(
    table: Table,
    spec: FeatureSpec | None = None,
    encoders: dict[str, CategoryEncoder] | None = None,
) -> tuple[np.ndarray, dict[str, CategoryEncoder]]:
    """Build the feature matrix ``X`` from a job table.

    Pass the returned ``encoders`` back in when encoding validation data
    so category codes stay consistent with training. ``spec=None`` means
    a fresh default :class:`FeatureSpec` (a ``None`` sentinel, not a
    shared default instance evaluated once at import).
    """
    spec = spec if spec is not None else FeatureSpec()
    fit_encoders = encoders is None
    encoders = encoders or {}
    columns: list[np.ndarray] = []
    for name in spec.categorical_columns:
        if fit_encoders:
            encoders[name] = CategoryEncoder().fit(table[name])
        columns.append(encoders[name].transform(table[name]).astype(float))
    for name in spec.numeric_columns:
        col = table[name].astype(float)
        if spec.log_transform:
            if np.any(col < 0):
                raise ModelError(f"column {name!r} has negative values; cannot log")
            col = np.log1p(col)
        columns.append(col)
    if not columns:
        raise ModelError("feature spec selects no columns")
    return np.column_stack(columns), encoders
