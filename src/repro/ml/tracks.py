"""Evaluation tracks: which column a model predicts, over which rows.

The paper's protocol predicts per-node CPU power for every job. The
heterogeneous systems (docs/SCENARIOS.md) add two more tracks:

* ``gpu_power`` — regress a GPU job's total board power
  (``gpu_power_w``) with the allocated board count as an extra numeric
  feature, over the jobs that actually hold boards;
* ``failures`` — regress the 0/1 ``failed`` flag, so predictions are
  failure probabilities, graded by Brier (squared-probability) error
  instead of percentage error.

A :class:`Track` bundles the target column, the feature spec, the row
filter, and the per-prediction error metric, so offline evaluation
(:mod:`repro.analysis.prediction`), the serving registry, and the CLI
agree on each track's definition by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ValidationError
from repro.frames import Table
from repro.ml.encoding import FeatureSpec
from repro.ml.metrics import absolute_percentage_error, brier_error
from repro.ml.pipeline import TARGET_COLUMN

__all__ = [
    "Track",
    "POWER_TRACK",
    "GPU_POWER_TRACK",
    "FAILURE_TRACK",
    "known_tracks",
    "get_track",
]


@dataclass(frozen=True)
class Track:
    """One prediction target plus everything needed to evaluate it."""

    name: str
    target_column: str
    numeric_features: tuple[str, ...]
    error_kind: str  # "ape" (percentage error) or "brier" (probability)
    filter_column: str | None = None  # keep rows where this column is > 0
    min_rows: int = 50

    def __post_init__(self) -> None:
        if self.error_kind not in ("ape", "brier"):
            raise ValidationError(f"unknown error kind {self.error_kind!r}")

    def feature_spec(self) -> FeatureSpec:
        """A fresh spec per call — never a shared default instance."""
        return FeatureSpec(numeric_columns=self.numeric_features)

    @property
    def required_columns(self) -> tuple[str, ...]:
        cols = [self.target_column, *self.numeric_features]
        if self.filter_column is not None:
            cols.append(self.filter_column)
        return tuple(dict.fromkeys(cols))

    @property
    def error_fn(self) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        return {"ape": absolute_percentage_error, "brier": brier_error}[
            self.error_kind
        ]

    def select(self, jobs: Table) -> Table:
        """The track's evaluation rows, or raise if the table lacks them.

        A CPU-only dataset has no GPU or exit-state columns; asking it
        for those tracks is a scenario mismatch, reported as such.
        """
        missing = [c for c in self.required_columns if c not in jobs]
        if missing:
            raise ValidationError(
                f"track {self.name!r} needs columns {missing}; this dataset's "
                "system does not model them (see docs/SCENARIOS.md)"
            )
        if self.filter_column is None:
            return jobs
        return jobs.take(np.nonzero(jobs[self.filter_column] > 0)[0])


POWER_TRACK = Track(
    name="power",
    target_column=TARGET_COLUMN,
    numeric_features=("nodes", "req_walltime_s"),
    error_kind="ape",
)

GPU_POWER_TRACK = Track(
    name="gpu_power",
    target_column="gpu_power_w",
    numeric_features=("nodes", "req_walltime_s", "gpus"),
    error_kind="ape",
    filter_column="gpus",
)

FAILURE_TRACK = Track(
    name="failures",
    target_column="failed",
    numeric_features=("nodes", "req_walltime_s"),
    error_kind="brier",
)

_TRACKS = {t.name: t for t in (POWER_TRACK, GPU_POWER_TRACK, FAILURE_TRACK)}


def known_tracks() -> list[str]:
    """Registered track names, sorted."""
    return sorted(_TRACKS)


def get_track(name: str) -> Track:
    """Look up a track by name (case-insensitive)."""
    try:
        return _TRACKS[name.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown track {name!r}; known: {known_tracks()}"
        ) from None
