"""Evaluation-protocol splits (Sec. 5 of the paper).

The paper: "training data consists of 80% of randomly selected jobs and
validation data consists of the remaining 20% … we repeat this process
ten times … we ensure that the training data contains jobs from all the
users which are present in the validation data."

:func:`train_validation_split` implements one such split; any
validation job whose user would otherwise be unseen in training is moved
to the training side (users with a single job always train).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ValidationError

__all__ = ["train_validation_split", "repeated_splits"]


def train_validation_split(
    groups,
    train_fraction: float = 0.8,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random split with the seen-group constraint.

    Parameters
    ----------
    groups:
        Per-row group labels (the user column).
    train_fraction:
        Target training share before the constraint repair.

    Returns
    -------
    (train_idx, validation_idx):
        Disjoint, exhaustive integer index arrays; every group present
        in validation is guaranteed present in training.
    """
    groups = np.asarray(groups)
    n = len(groups)
    if n < 2:
        raise ValidationError("need at least 2 rows to split")
    if not 0 < train_fraction < 1:
        raise ValidationError("train_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    perm = rng.permutation(n)
    n_train = max(1, int(round(train_fraction * n)))
    in_train = np.zeros(n, dtype=bool)
    in_train[perm[:n_train]] = True

    # Repair: for each group entirely in validation, move one (random)
    # member to training.
    val_groups = np.unique(groups[~in_train])
    train_groups = set(np.unique(groups[in_train]).tolist())
    for g in val_groups:
        if g in train_groups:
            continue
        members = np.flatnonzero((groups == g) & ~in_train)
        mover = members[int(rng.integers(0, len(members)))]
        in_train[mover] = True

    train_idx = np.flatnonzero(in_train)
    val_idx = np.flatnonzero(~in_train)
    if len(val_idx) == 0:
        raise ValidationError(
            "validation side is empty after the seen-group repair; "
            "dataset too small for this train_fraction"
        )
    return train_idx, val_idx


def repeated_splits(
    groups,
    n_repeats: int = 10,
    train_fraction: float = 0.8,
    seed: int = 0,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """The paper's ten random train/validation splits."""
    if n_repeats < 1:
        raise ValidationError("n_repeats must be >= 1")
    root = np.random.SeedSequence(seed)
    for child in root.spawn(n_repeats):
        yield train_validation_split(
            groups, train_fraction=train_fraction, rng=np.random.default_rng(child)
        )
