"""Distance-weighted k-nearest-neighbor regression.

Numeric features are standardized to unit variance; categorical features
contribute a Hamming term (0 when equal, ``categorical_weight``
otherwise). Matching the paper's diagnosis, KNN under-performs the tree
because jobs at "small distance" (similar nodes and walltime) can still
have very different power when they come from different users/apps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Estimator, check_Xy

__all__ = ["KNNRegressor"]


class KNNRegressor(Estimator):
    """Brute-force k-NN with inverse-distance weighting.

    Parameters
    ----------
    k:
        Neighbor count.
    categorical_weight:
        Distance contribution of a categorical mismatch (in units of
        standardized numeric distance).
    chunk_size:
        Validation rows processed per distance-matrix block, bounding
        memory to ``chunk_size × n_train`` floats.
    """

    def __init__(
        self,
        k: int = 5,
        categorical_weight: float = 2.0,
        chunk_size: int = 512,
        use_categorical: bool = True,
        weighting: str = "inverse",
    ) -> None:
        super().__init__()
        if k < 1:
            raise ModelError("k must be >= 1")
        if categorical_weight < 0:
            raise ModelError("categorical_weight must be >= 0")
        if chunk_size < 1:
            raise ModelError("chunk_size must be >= 1")
        if weighting not in ("inverse", "uniform"):
            raise ModelError("weighting must be 'inverse' or 'uniform'")
        self.k = k
        self.categorical_weight = categorical_weight
        self.chunk_size = chunk_size
        # use_categorical=False treats category codes as plain numbers in
        # the standardized euclidean distance — the naive construction the
        # paper's KNN baseline corresponds to (user 57 is "close" to 58).
        self.use_categorical = use_categorical
        self.weighting = weighting
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._numeric: np.ndarray = np.empty(0, dtype=np.int64)
        self._cat: np.ndarray = np.empty(0, dtype=np.int64)
        self._scale: np.ndarray | None = None

    def fit(self, X, y, categorical: tuple[int, ...] = ()) -> "KNNRegressor":
        X, y = check_Xy(X, y)
        if not self.use_categorical:
            categorical = ()
        bad = [c for c in categorical if not 0 <= c < X.shape[1]]
        if bad:
            raise ModelError(f"categorical indices out of range: {bad}")
        self._cat = np.asarray(sorted(categorical), dtype=np.int64)
        self._numeric = np.asarray(
            [i for i in range(X.shape[1]) if i not in categorical], dtype=np.int64
        )
        scale = X[:, self._numeric].std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = X
        self._y = y
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X, _ = check_Xy(X)
        if X.shape[1] != self._X.shape[1]:
            raise ModelError(
                f"X has {X.shape[1]} features; model was fitted with {self._X.shape[1]}"
            )
        k = min(self.k, len(self._y))
        train_num = self._X[:, self._numeric] / self._scale
        train_cat = self._X[:, self._cat]
        out = np.empty(X.shape[0])
        for lo in range(0, X.shape[0], self.chunk_size):
            hi = min(lo + self.chunk_size, X.shape[0])
            q_num = X[lo:hi, self._numeric] / self._scale
            # Squared euclidean over standardized numerics.
            d2 = (
                (q_num * q_num).sum(axis=1)[:, None]
                + (train_num * train_num).sum(axis=1)[None, :]
                - 2.0 * q_num @ train_num.T
            )
            if len(self._cat):
                q_cat = X[lo:hi, self._cat]
                mism = (q_cat[:, None, :] != train_cat[None, :, :]).sum(axis=2)
                d2 = d2 + (self.categorical_weight**2) * mism
            d2 = np.maximum(d2, 0.0)
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            rows = np.arange(hi - lo)[:, None]
            if self.weighting == "uniform":
                out[lo:hi] = self._y[nn].mean(axis=1)
            else:
                ndist = np.sqrt(d2[rows, nn])
                weights = 1.0 / (ndist + 1e-9)
                out[lo:hi] = (self._y[nn] * weights).sum(axis=1) / weights.sum(axis=1)
        return out
