"""Stable top-level facade: one ScenarioSpec in, one result out.

The three entry points most users need, each accepting either the
canonical :class:`~repro.spec.ScenarioSpec` or the legacy keyword style
(normalized by the :func:`~repro.spec.as_scenario` shim):

* :func:`generate_dataset` — build one scenario's
  :class:`~repro.telemetry.JobDataset`;
* :func:`evaluate` — the paper's offline prediction protocol
  (Figs 14–15) on that dataset;
* :func:`create_server` — a ready micro-batched HTTP prediction server
  for the scenario (docs/SERVICE.md).

All heavy imports happen inside the functions, so the facade costs
nothing until called (the PEP 562 surface in :mod:`repro` stays light
and ``pipeline status`` stays at ~0.06 s).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.spec import as_scenario

__all__ = ["generate_dataset", "evaluate", "create_server"]

_SpecLike = "ScenarioSpec | Mapping[str, Any] | str | None"


def generate_dataset(
    scenario: _SpecLike = None,
    *,
    cached: bool = False,
    cache_dir=None,
    **kwargs: Any,
):
    """Build one scenario's :class:`~repro.telemetry.JobDataset`.

    ``generate_dataset(spec)`` and the legacy
    ``generate_dataset("emmy", seed=7, horizon_s=86400, ...)`` style both
    work; pipeline-only knobs (``backfill_depth``, ``params_overrides``,
    ``variability_sigma``) pass straight through. ``cached=True`` routes
    the build through the pipeline's on-disk artifact cache
    (:func:`repro.pipeline.build_dataset`) — byte-identical output, warm
    reruns load in milliseconds.
    """
    scenario_kwargs, passthrough = _split_kwargs(kwargs)
    spec = as_scenario(scenario, **scenario_kwargs)
    if cached:
        from repro.pipeline import build_dataset

        return build_dataset(
            **spec.dataset_kwargs(), cache_dir=cache_dir, **passthrough
        )
    from repro.telemetry import generate_dataset as _generate

    return _generate(**spec.dataset_kwargs(), **passthrough)


def evaluate(
    scenario: _SpecLike = None,
    *,
    track: str = "power",
    models: Mapping[str, Callable[[], object]] | None = None,
    n_repeats: int = 10,
    cache_dir=None,
    **kwargs: Any,
):
    """Run the paper's prediction protocol for one scenario.

    Builds the scenario's dataset through the artifact cache, then runs
    the requested evaluation track (``repro.ml.known_tracks()``):

    * ``"power"`` (default) — :func:`repro.analysis.run_prediction`,
      the paper's per-node CPU power protocol (BDT/KNN/FLDA);
    * ``"gpu_power"`` — GPU-job board-power regression (GPU systems);
    * ``"failures"`` — failure-probability classification, graded by
      Brier error (ML/mixed systems).

    Returns ``{model name: PredictionResult}``.
    """
    scenario_kwargs, passthrough = _split_kwargs(kwargs)
    spec = as_scenario(scenario, **scenario_kwargs)
    from repro.analysis import (
        run_failure_classification,
        run_gpu_prediction,
        run_prediction,
    )
    from repro.ml import get_track

    runner = {
        "power": run_prediction,
        "gpu_power": run_gpu_prediction,
        "failures": run_failure_classification,
    }[get_track(track).name]
    from repro.pipeline import build_dataset

    dataset = build_dataset(
        **spec.dataset_kwargs(), cache_dir=cache_dir, **passthrough
    )
    return runner(dataset, models=models, n_repeats=n_repeats, seed=spec.seed)


def create_server(
    scenario: _SpecLike = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir=None,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    warm: tuple[str, ...] = (),
    lifecycle: bool = False,
    lifecycle_dir=None,
    **kwargs: Any,
):
    """A ready micro-batched prediction server for one scenario.

    Thin re-export of :func:`repro.serve.create_server`; returns a
    :class:`~repro.serve.PredictionServer` (``serve_forever`` /
    ``serve_in_background`` / ``close``). See docs/SERVICE.md.
    ``lifecycle=True`` attaches the drift-aware model lifecycle —
    ``/v1/feedback``, shadow evaluation, and journaled
    promote/rollback (docs/LIFECYCLE.md).
    """
    scenario_kwargs, passthrough = _split_kwargs(kwargs)
    if passthrough:
        raise TypeError(
            f"create_server got unexpected keyword arguments {sorted(passthrough)}"
        )
    from repro.serve import create_server as _create

    return _create(
        as_scenario(scenario, **scenario_kwargs),
        host=host,
        port=port,
        cache_dir=cache_dir,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        warm=warm,
        lifecycle=lifecycle,
        lifecycle_dir=lifecycle_dir,
    )


# Legacy keyword arguments that describe the scenario itself (everything
# else passes through to the underlying builder).
_SCENARIO_KEYS = frozenset(
    ("system", "seed", "num_nodes", "num_users", "horizon_days", "horizon_s", "max_traces")
)


def _split_kwargs(kwargs: dict[str, Any]) -> tuple[dict[str, Any], dict[str, Any]]:
    scenario_kwargs = {k: v for k, v in kwargs.items() if k in _SCENARIO_KEYS}
    passthrough = {k: v for k, v in kwargs.items() if k not in _SCENARIO_KEYS}
    return scenario_kwargs, passthrough
