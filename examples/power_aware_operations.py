#!/usr/bin/env python
"""Power-aware operations: prediction-driven capping and over-provisioning.

Walks the operator workflow the paper's Section 6 recommends:

1. train the BDT power predictor on historical jobs,
2. set each incoming job's static power cap at predicted + 15%,
3. replay instrumented traces under the caps to check for throttling,
4. size an over-provisioned machine inside the original power budget.

Usage::

    python examples/power_aware_operations.py
"""

import numpy as np

import repro
from repro.ml import DecisionTreeRegressor, FeatureSpec, encode_features
from repro.policy import StaticCapPolicy, evaluate_capping, evaluate_overprovisioning


def main() -> None:
    dataset = repro.generate_dataset(
        "emmy", seed=11, num_nodes=140, num_users=60,
        horizon_s=30 * 86400, max_traces=400,
    )
    jobs = dataset.jobs
    print(f"history: {dataset.num_jobs} jobs, "
          f"{len(dataset.traces)} instrumented traces")

    # -- 1. train the predictor on the first 80% of jobs (by submit time)
    cut = int(0.8 * len(jobs))
    order = np.argsort(jobs["submit_s"], kind="stable")
    train, incoming = jobs.take(order[:cut]), jobs.take(order[cut:])
    # Pre-execution prediction must only see users with history.
    seen = set(train["user"].tolist())
    incoming = incoming.filter(
        np.asarray([u in seen for u in incoming["user"].tolist()])
    )

    spec = FeatureSpec()
    X_train, encoders = encode_features(train, spec)
    model = DecisionTreeRegressor(min_samples_leaf=3).fit(
        X_train, train["pernode_power_w"], categorical=spec.categorical_indices
    )
    X_new, _ = encode_features(incoming, spec, encoders=encoders)
    predicted = model.predict(X_new)
    errors = np.abs(predicted - incoming["pernode_power_w"]) / incoming["pernode_power_w"]
    print(f"\npredictor: {np.mean(errors < 0.10):.0%} of incoming jobs "
          f"predicted within 10% (median error {np.median(errors):.1%})")

    # -- 2./3. static caps at predicted + 15%, replayed on real traces
    policy = StaticCapPolicy(headroom=0.15)
    caps = policy.cap_for(predicted)
    tdp = dataset.spec.node_tdp_watts
    print(f"caps: mean {caps.mean():.0f} W vs TDP {tdp:.0f} W "
          f"({1 - caps.mean() / tdp:.0%} provisioned power reclaimed)")

    for err in (0.0, 0.05):
        outcome = evaluate_capping(dataset, policy, prediction_error=err)
        print(f"replay (prediction error {err:.0%}): "
              f"{outcome.frac_jobs_unthrottled:.0%} of jobs never throttled; "
              f"{outcome.throttled_node_minute_fraction:.1%} of node-minutes "
              f"capped; {outcome.mean_energy_clipped_fraction:.2%} of energy "
              f"clipped")

    # -- 4. over-provisioning: spend the stranded power on more nodes
    sizing = evaluate_overprovisioning(dataset, sizing_quantile=0.99)
    print(f"\nover-provisioning inside the {sizing.budget_watts / 1e3:.0f} kW "
          f"budget: {sizing.original_nodes} -> {sizing.supported_nodes} nodes "
          f"(+{sizing.throughput_gain:.0%} capacity), budget exceeded "
          f"{sizing.budget_exceedance_fraction:.1%} of the time")


if __name__ == "__main__":
    main()
