#!/usr/bin/env python
"""Cross-system characterization: why power profiles don't port.

Reproduces the Section 4 cross-system story on scaled replicas of Emmy
(IvyBridge) and Meggie (Broadwell): the same applications draw less
power on the newer architecture, by *different* amounts — so their power
ranking flips, and per-system characterization is unavoidable.

Usage::

    python examples/cross_system_study.py
"""

import repro
from repro.analysis import app_power_comparison, per_node_power_distribution
from repro.analysis.report import format_table


def main() -> None:
    datasets = {
        name: repro.generate_dataset(
            name, seed=7, num_nodes=120, num_users=50,
            horizon_s=21 * 86400, max_traces=0,
        )
        for name in ("emmy", "meggie")
    }

    print("== population view (Fig 3) ==")
    for name, ds in datasets.items():
        dist = per_node_power_distribution(ds)
        print(f"{name:7s} {dist.n_jobs:6d} jobs   "
              f"{dist.mean_watts:5.0f} W mean ({dist.mean_tdp_fraction:.0%} TDP)   "
              f"sigma {dist.std_watts:.0f} W")

    comp = app_power_comparison(datasets)
    print("\n== per-application view (Fig 4) ==")
    print(format_table(comp.as_table()))

    print("\npower ranking on emmy  :", " > ".join(comp.ranking("emmy")))
    print("power ranking on meggie:", " > ".join(comp.ranking("meggie")))
    if comp.rankings_differ():
        print("\n=> the ranking flips across systems: an application's place "
              "in the power ordering on one machine does not carry over to "
              "the other (in the full-scale benches the paper's MD-0 vs "
              "FASTEST flip appears). Power characterizations cannot be "
              "ported between architectures as-is.")
    print(f"largest per-app cross-system drop: {comp.max_relative_drop():.0%}")


if __name__ == "__main__":
    main()
