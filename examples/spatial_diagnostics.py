#!/usr/bin/env python
"""Spatial & temporal diagnostics: phases, stragglers, node fingerprints.

The tools Section 4 of the paper calls for: given instrumented traces,

1. segment each job's power series into phases (change-point detection),
2. flag straggler nodes inside multi-node jobs, and
3. estimate each *physical* node's manufacturing power factor from many
   jobs' residuals — then check the estimate against the simulation's
   ground truth (something only a simulated substrate permits).

Also renders every paper figure to SVG as a by-product.

Usage::

    python examples/spatial_diagnostics.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.analysis import analyze_phases, estimate_node_factors, straggler_nodes
from repro.cluster import Cluster
from repro.stats.correlation import pearson
from repro.viz import render_all_figures


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    dataset = repro.generate_dataset(
        "emmy", seed=21, num_nodes=48, num_users=24,
        horizon_s=16 * 86400, max_traces=500,
    )
    traces = list(dataset.traces.values())
    print(f"{dataset.num_jobs} jobs, {len(traces)} instrumented traces")

    # -- 1. phase structure across the instrumented population
    analyses = [analyze_phases(t) for t in traces]
    flat = sum(a.is_flat for a in analyses)
    phased = [a for a in analyses if not a.is_flat]
    print(f"\nphase detection: {flat}/{len(analyses)} jobs are single-phase")
    if phased:
        ranges = [a.phase_power_range() for a in phased]
        print(f"phased jobs: median {int(np.median([a.num_phases for a in phased]))} "
              f"phases, median phase-to-phase power range "
              f"{np.median(ranges):.0%} of the job mean")

    # -- 2. stragglers inside multi-node jobs
    reports = [straggler_nodes(t) for t in traces if t.num_nodes >= 4]
    with_outliers = [r for r in reports if r.num_outliers]
    print(f"\nstragglers: {len(with_outliers)}/{len(reports)} larger jobs have "
          f">10% deviant nodes "
          f"(worst single-node deviation "
          f"{max(r.worst_deviation for r in reports):.0%})")

    # -- 3. fleet view: recover per-node power factors and validate
    estimate = estimate_node_factors(dataset, min_observations=3)
    cluster = Cluster.from_name("emmy", seed=21, num_nodes=48)
    truth = cluster.power_factors[estimate.node_ids]
    corr = pearson(truth, estimate.factors)
    print(f"\nnode-factor estimation from {len(estimate.node_ids)} observed nodes: "
          f"correlation with ground-truth manufacturing factors "
          f"r={corr.statistic:.2f} (p={corr.pvalue:.1e})")
    worst = estimate.node_ids[int(np.argmax(estimate.factors))]
    print(f"hottest node by fingerprint: node {worst} "
          f"(estimated {estimate.factors.max():.3f}x, "
          f"true {cluster.power_factors[worst]:.3f}x)")

    # -- 4. the paper's figures, straight to SVG
    paths = render_all_figures({"emmy": dataset}, out_dir, n_repeats=2)
    print(f"\nrendered {len(paths)} figures to {out_dir}")


if __name__ == "__main__":
    main()
