#!/usr/bin/env python
"""Quickstart: generate a scaled-down Emmy trace and tour every analysis.

Runs in a few seconds the first time; repeat runs with the same seed
load the trace from the :mod:`repro.pipeline` artifact cache in
milliseconds. For the paper-scale reproduction of each figure and
table, see the ``benchmarks/`` harness or
``python -m repro pipeline run-all``.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

import repro


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42

    # A 1/8-scale Emmy over two weeks; same generative model as the full
    # configuration, fewer nodes and users. build_dataset is the cached
    # drop-in for generate_dataset — byte-identical output, warm reruns
    # come straight from the on-disk artifact cache.
    dataset = repro.build_dataset(
        "emmy",
        seed=seed,
        num_nodes=70,
        num_users=40,
        horizon_s=14 * 86400,
        max_traces=300,
    )
    print(f"generated {dataset.num_jobs} jobs on {dataset.spec.name} "
          f"({dataset.spec.num_nodes} nodes, {len(dataset.traces)} instrumented)")

    # Section 3 — system-level utilization and stranded power.
    util = repro.system_utilization(dataset)
    power = repro.power_utilization(dataset)
    print(f"\nsystem utilization: {util.mean:.1%} "
          f"(power: {power.mean:.1%}, stranded: {power.stranded_fraction:.1%})")

    # Section 4 — job-level power characteristics.
    dist = repro.per_node_power_distribution(dataset)
    print(f"per-node power: {dist.mean_watts:.0f} W "
          f"= {dist.mean_tdp_fraction:.0%} of TDP "
          f"(sigma/mean {dist.std_over_mean:.0%})")

    corr = repro.feature_power_correlations(dataset)
    print(f"Spearman power vs length {corr['job_length'].statistic:+.2f}, "
          f"vs size {corr['job_size'].statistic:+.2f}")

    temporal = repro.temporal_summary(dataset)
    spatial = repro.spatial_summary(dataset)
    print(f"temporal: peak only {temporal.mean_peak_overshoot:.0%} above mean; "
          f"spatial: node spread {spatial.mean_spread_fraction:.0%} of power")

    # Section 5 — users and prediction.
    conc = repro.concentration_analysis(dataset)
    print(f"top 20% of users consume {conc.node_hours_share:.0%} node-hours "
          f"and {conc.energy_share:.0%} energy (overlap {conc.top_set_overlap:.0%})")

    results = repro.run_prediction(dataset, n_repeats=3, seed=seed)
    print("\npre-execution power prediction (user, nodes, walltime):")
    for name, result in results.items():
        s = result.summary
        print(f"  {name:5s} {s.frac_below_5pct:5.1%} of predictions <5% error, "
              f"{s.frac_below_10pct:5.1%} <10%")


if __name__ == "__main__":
    main()
