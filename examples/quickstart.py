#!/usr/bin/env python
"""Quickstart: one ScenarioSpec driven through the whole facade.

A :class:`repro.ScenarioSpec` describes the scenario once; the
top-level facade does the rest — ``generate_dataset(spec)`` builds the
trace, ``evaluate(spec)`` runs the paper's prediction protocol, and
``create_server(spec)`` stands up the micro-batched prediction service
(docs/SERVICE.md). Runs in a few seconds the first time; repeat runs
with the same seed load from the :mod:`repro.pipeline` artifact cache
in milliseconds. For the paper-scale reproduction of each figure and
table, see the ``benchmarks/`` harness or
``python -m repro pipeline run-all``.

Usage::

    python examples/quickstart.py [seed]
"""

import json
import sys
import urllib.request

import repro


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42

    # A 1/8-scale Emmy over two weeks; same generative model as the full
    # configuration, fewer nodes and users. The spec is the single
    # scenario description every layer below shares.
    spec = repro.ScenarioSpec(
        "emmy",
        seed=seed,
        num_nodes=70,
        num_users=40,
        horizon_days=14,
        max_traces=300,
    )

    # cached=True routes the build through the on-disk artifact cache —
    # byte-identical to the direct build, warm reruns are near-instant.
    dataset = repro.generate_dataset(spec, cached=True)
    print(f"generated {dataset.num_jobs} jobs on {dataset.spec.name} "
          f"({dataset.spec.num_nodes} nodes, {len(dataset.traces)} instrumented)")

    # Section 3 — system-level utilization and stranded power.
    util = repro.system_utilization(dataset)
    power = repro.power_utilization(dataset)
    print(f"\nsystem utilization: {util.mean:.1%} "
          f"(power: {power.mean:.1%}, stranded: {power.stranded_fraction:.1%})")

    # Section 4 — job-level power characteristics.
    dist = repro.per_node_power_distribution(dataset)
    print(f"per-node power: {dist.mean_watts:.0f} W "
          f"= {dist.mean_tdp_fraction:.0%} of TDP "
          f"(sigma/mean {dist.std_over_mean:.0%})")

    corr = repro.feature_power_correlations(dataset)
    print(f"Spearman power vs length {corr['job_length'].statistic:+.2f}, "
          f"vs size {corr['job_size'].statistic:+.2f}")

    temporal = repro.temporal_summary(dataset)
    spatial = repro.spatial_summary(dataset)
    print(f"temporal: peak only {temporal.mean_peak_overshoot:.0%} above mean; "
          f"spatial: node spread {spatial.mean_spread_fraction:.0%} of power")

    # Section 5 — users and prediction, via the facade.
    conc = repro.concentration_analysis(dataset)
    print(f"top 20% of users consume {conc.node_hours_share:.0%} node-hours "
          f"and {conc.energy_share:.0%} energy (overlap {conc.top_set_overlap:.0%})")

    results = repro.evaluate(spec, n_repeats=3)
    print("\npre-execution power prediction (user, nodes, walltime):")
    for name, result in results.items():
        s = result.summary
        print(f"  {name:5s} {s.frac_below_5pct:5.1%} of predictions <5% error, "
              f"{s.frac_below_10pct:5.1%} <10%")

    # Section 7 — the deployment story: predictions at job-submit time
    # from a live micro-batched HTTP service (see docs/SERVICE.md).
    server = repro.create_server(spec, warm=("BDT",))
    server.serve_in_background()
    job = {
        "user": str(dataset.jobs["user"][0]),
        "nodes": int(dataset.jobs["nodes"][0]),
        "req_walltime_s": int(dataset.jobs["req_walltime_s"][0]),
    }
    request = urllib.request.Request(
        f"http://{server.address}/predict",
        data=json.dumps({"model": "BDT", "job": job}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        answer = json.load(response)
    print(f"\nserved prediction for {job['user']} on {job['nodes']} nodes: "
          f"{answer['predictions'][0]:.1f} W/node "
          f"({answer['latency_ms']:.1f} ms over HTTP)")
    server.close()


if __name__ == "__main__":
    main()
