#!/usr/bin/env python
"""Model your own cluster: a custom SystemSpec end to end.

The substrates are not hard-wired to Emmy/Meggie. This example defines a
fictional 96-node EPYC-style partition, gives its applications power
levels, generates a month of jobs, schedules and samples them, and runs
the characterization — the workflow for anyone adapting the library to
their site.

Usage::

    python examples/custom_cluster.py
"""

import dataclasses

import numpy as np

import repro
from repro.cluster import Cluster, SystemSpec
from repro.scheduler import simulate
from repro.telemetry.dataset import assemble
from repro.workload import CATALOG, WorkloadGenerator, default_params

CUSTOM = SystemSpec(
    name="ruby",
    num_nodes=96,
    node_tdp_watts=360.0,
    processor="2x fictional EPYC-class 64c",
    microarchitecture="Zen-ish",
    process_node_nm=7,
    sockets_per_node=2,
    cores_per_socket=64,
    memory_gb=256,
    memory_type="DDR4-3200",
    interconnect="HDR InfiniBand",
    topology="fat-tree",
    batch_system="slurm",
    smt_enabled=True,
    turbo_enabled=True,
    linpack_tflops=300.0,
    linpack_power_kw=33.0,
    inflow_temperature_c=(24.0, 26.0),
    dram_power_fraction=0.22,
)


def main() -> None:
    # Give every catalog application a power level on the new machine.
    # (A denser node runs the same codes at a higher fraction of TDP.)
    for app in CATALOG:
        app.power_fraction["ruby"] = min(
            0.95, app.power_fraction["emmy"] * 1.05
        )

    cluster = Cluster(CUSTOM, seed=1)
    print(f"cluster: {cluster!r}, provisioned {CUSTOM.total_tdp_watts / 1e3:.0f} kW")

    # Reuse Emmy's workload shape but point it at the new system.
    params = dataclasses.replace(
        default_params("emmy", num_users=30, horizon_s=30 * 86400),
        system="ruby",
        nodes_median=3.0,
        max_nodes=24,
    )
    generator = WorkloadGenerator(params, cluster.num_nodes, seed=1)
    jobs = generator.generate()
    scheduled = simulate(jobs, cluster.num_nodes)
    dataset = assemble(cluster, scheduled, params.horizon_s, seed=1, max_traces=200)

    util = repro.system_utilization(dataset)
    power = repro.power_utilization(dataset)
    dist = repro.per_node_power_distribution(dataset)
    print(f"jobs: {dataset.num_jobs}, utilization {util.mean:.0%}, "
          f"power {power.mean:.0%} of budget")
    print(f"per-node power {dist.mean_watts:.0f} W "
          f"({dist.mean_tdp_fraction:.0%} of the {CUSTOM.node_tdp_watts:.0f} W TDP)")
    print(f"stranded power on the custom machine: {power.stranded_fraction:.0%} "
          f"({power.stranded_fraction * CUSTOM.total_tdp_watts / 1e3:.0f} kW)")

    results = repro.run_prediction(dataset, n_repeats=3, seed=1)
    print("prediction transfers to the new machine:",
          ", ".join(f"{k} {v.summary.frac_below_10pct:.0%}<10%" for k, v in results.items()))


if __name__ == "__main__":
    main()
