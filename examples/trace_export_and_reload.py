#!/usr/bin/env python
"""Export a trace in the open-data schema, reload it, analyze it cold.

Demonstrates the artifact workflow around the paper's Zenodo release:
the generator writes a job-level CSV in the documented schema; a
downstream consumer loads it with no access to the generator and runs
the same analyses. (This is exactly how the analysis layer would run on
the real Emmy/Meggie traces after a column rename.)

Usage::

    python examples/trace_export_and_reload.py [output_dir]
"""

import dataclasses
import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.telemetry.dataset import JobDataset
from repro.telemetry.schema import load_jobs_csv, save_jobs_csv
from repro.units import MINUTE


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out_dir.mkdir(parents=True, exist_ok=True)

    # Producer side: run the pipeline and publish the job-level table.
    dataset = repro.generate_dataset(
        "meggie", seed=3, num_nodes=90, num_users=35,
        horizon_s=14 * 86400, max_traces=0,
    )
    csv_path = out_dir / "meggie_jobs.csv"
    save_jobs_csv(dataset.jobs, csv_path)
    print(f"published {dataset.num_jobs} jobs to {csv_path} "
          f"({csv_path.stat().st_size / 1024:.0f} KiB)")

    # Consumer side: reload the CSV and rebuild a JobDataset (timelines
    # are reconstructed from the accounting columns alone).
    jobs = load_jobs_csv(csv_path)
    n_minutes = int(np.ceil(jobs["end_s"].max() / MINUTE)) + 1
    active = np.zeros(n_minutes, dtype=np.int64)
    job_power = np.zeros(n_minutes)
    for start, end, nodes, power in zip(
        jobs["start_s"] // MINUTE, jobs["end_s"] // MINUTE,
        jobs["nodes"], jobs["pernode_power_w"],
    ):
        active[start : max(start + 1, end)] += nodes
        job_power[start : max(start + 1, end)] += nodes * power
    reloaded = JobDataset(
        spec=dataset.spec,
        jobs=jobs,
        traces={},
        horizon_s=dataset.horizon_s,
        active_nodes=active,
        job_power_watts=job_power,
    )

    # The cold analyses agree with the producer's.
    for name, ds in (("producer", dataset), ("consumer", reloaded)):
        util = repro.system_utilization(ds)
        dist = repro.per_node_power_distribution(ds)
        conc = repro.concentration_analysis(ds)
        print(f"{name}: util {util.mean:.1%}, per-node power "
              f"{dist.mean_watts:.0f} W, top-20% share {conc.energy_share:.0%}")

    results = repro.run_prediction(reloaded, n_repeats=3, seed=0)
    best = results["BDT"].summary
    print(f"prediction from the exported CSV alone: "
          f"{best.frac_below_10pct:.0%} of BDT predictions within 10%")


if __name__ == "__main__":
    main()
