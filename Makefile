# Developer entry points. PYTHONPATH=src keeps every target working in
# environments without an editable install.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint coverage bench bench-check bench-smoke serve-bench serve-bench-check serve-smoke lifecycle-smoke bench-stream bench-stream-check stream-smoke gpu-smoke gpu-baseline chaos-soak chaos-smoke incidents-smoke incidents-bench incidents-bench-check incidents-sweep docs-check pipeline clean-cache all

all: lint test docs-check

test:                ## tier-1 suite (unit + property + integration)
	$(PYTHON) -m pytest -x -q

lint:                ## ruff when installed, stdlib fallback linter otherwise
	$(PYTHON) tools/lint.py

coverage:            ## tier-1 suite under pytest-cov, gated at the pyproject floor
	$(PYTHON) tools/coverage_gate.py

bench:               ## measure the hot path, rewrite BENCH_dataset.json
	$(PYTHON) tools/perf_check.py --update

bench-check:         ## CI gate: fail on >25% throughput regression
	$(PYTHON) tools/perf_check.py --check

bench-smoke:         ## one cheap benchmark end-to-end (cache-backed fixtures)
	$(PYTHON) -m pytest benchmarks/bench_table2_correlation.py -q

serve-bench:         ## measure the serving hot path, rewrite BENCH_serve.json
	$(PYTHON) tools/serve_bench.py --update

serve-bench-check:   ## CI gate: fail on >25% predictions/s regression
	$(PYTHON) tools/serve_bench.py --check

serve-smoke:         ## CI smoke: boot the forked pool, short open-loop
                     ## burst, verify bit-identity; histogram lands in
                     ## serve-smoke.json
	$(PYTHON) tools/serve_bench.py --num-nodes 24 --num-users 10 \
		--horizon-days 2 --max-traces 10 --workers 2 --connections 4 \
		--rate 50 --duration 3 --json serve-smoke.json

lifecycle-smoke:     ## CI gate: feedback -> drift -> shadow -> promote ->
                     ## rollback end to end over HTTP; journal kept on
                     ## failure (docs/LIFECYCLE.md)
	$(PYTHON) tools/lifecycle_smoke.py

bench-stream:        ## measure the 1.3M-job streaming build, rewrite BENCH_stream.json
	$(PYTHON) tools/stream_bench.py --update

bench-stream-check:  ## CI gate: regression vs baseline + absolute
                     ## floor (15k jobs/s) and RSS ceiling (2 GiB)
	$(PYTHON) tools/stream_bench.py --check

stream-smoke:        ## CI smoke: small --stream build vs monolithic,
                     ## dataset bytes must be identical; manifest lands
                     ## in stream-smoke-manifest.json
	$(PYTHON) tools/stream_smoke.py

gpu-smoke:           ## CI gate: GPU scenario byte-identity (stream vs
                     ## monolithic) + both heterogeneous tracks graded
                     ## against the committed SCORECARD_gpu.json
	$(PYTHON) tools/gpu_smoke.py --check

gpu-baseline:        ## rerun the gpu smoke and rewrite SCORECARD_gpu.json
	$(PYTHON) tools/gpu_smoke.py --update

chaos-soak:          ## fault-injection soak: 0 lost requests, all points fire
	$(PYTHON) tools/chaos_soak.py --duration 20

chaos-smoke:         ## CI gate: short seeded chaos run (same audit, ~30s)
	$(PYTHON) tools/chaos_soak.py --duration 6

incidents-smoke:     ## CI gate: 2-scenario graded incident run (control +
                     ## cache-corrupt) with a digest-determinism check;
                     ## bundles kept in .incidents-smoke (docs/INCIDENTS.md)
	$(PYTHON) tools/incidents_smoke.py

incidents-bench:     ## run the full incident catalog, rewrite SCORECARD_incidents.json
	$(PYTHON) tools/incidents_bench.py

incidents-bench-check: ## verify the committed scorecard still reproduces
	$(PYTHON) tools/incidents_bench.py --check

incidents-sweep:     ## the slow-marked incident catalog sweep (weekly CI;
                     ## tier-1 skips these via the pyproject -m filter)
	$(PYTHON) -m pytest -m slow -q

docs-check:          ## every public symbol has a docstring and an API.md entry
	$(PYTHON) tools/docs_check.py

pipeline:            ## build both paper-scale datasets through the cache
	$(PYTHON) -m repro pipeline run --both-systems --workers 2

clean-cache:         ## drop the benchmark artifact cache (bench scratch dir)
	$(PYTHON) -c "import sys; sys.path.insert(0, 'tools'); \
	from bench_paths import bench_cache_dir; print(bench_cache_dir())" \
	| xargs -I{} $(PYTHON) -m repro pipeline clean --all --cache-dir {}
