"""Tests for the user population, job classes, arrivals, and applications."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import DAY
from repro.workload import (
    ArrivalProcess,
    CATALOG,
    JobClass,
    UserPopulation,
    app_names,
    get_app,
)
from repro.workload.applications import KEY_APPS
from repro.workload.phases import TemporalProfile
from repro.workload.spatial import SpatialModel


class TestApplications:
    def test_catalog_shares_sum_to_one(self):
        assert sum(app.share for app in CATALOG) == pytest.approx(1.0)

    def test_all_apps_cover_both_systems(self):
        for app in CATALOG:
            assert {"emmy", "meggie"} <= set(app.power_fraction)

    def test_every_app_draws_less_on_meggie_in_watts(self):
        """Fig 4: absolute per-node power is lower on Meggie for key apps."""
        from repro.cluster import EMMY, MEGGIE

        for name in KEY_APPS:
            app = get_app(name)
            emmy_w = app.fraction_on("emmy") * EMMY.node_tdp_watts
            meggie_w = app.fraction_on("meggie") * MEGGIE.node_tdp_watts
            assert meggie_w < emmy_w, name

    def test_ranking_flip_md0_vs_fastest(self):
        """Fig 4's headline: MD-0 > FASTEST on Emmy but not on Meggie."""
        md0, fastest = get_app("md0"), get_app("fastest")
        assert md0.fraction_on("emmy") > fastest.fraction_on("emmy")
        assert md0.fraction_on("meggie") < fastest.fraction_on("meggie")

    def test_lookup(self):
        assert get_app("gromacs").domain == "md"
        with pytest.raises(WorkloadError):
            get_app("hpl")
        assert "misc" in app_names()


class TestUserPopulation:
    def test_sizes_and_ids(self, rng):
        pop = UserPopulation(50, rng)
        assert len(pop) == 50
        ids = [u.user_id for u in pop]
        assert len(set(ids)) == 50

    def test_scales_sorted_heaviest_first(self, rng):
        pop = UserPopulation(40, rng)
        scales = pop.scales
        assert np.all(np.diff(scales) <= 0)
        assert scales.max() <= 300.0

    def test_portfolios_non_empty(self, rng):
        for user in UserPopulation(30, rng):
            assert len(user.apps) >= 1
            assert user.num_classes >= 3

    def test_diverse_users_exist(self, rng):
        pop = UserPopulation(60, rng, diverse_fraction=1.0)
        assert all(len(u.apps) >= 3 for u in pop)
        assert all("misc" in u.apps for u in pop)

    def test_by_id(self, rng):
        pop = UserPopulation(10, rng)
        assert pop.by_id("u0003").user_id == "u0003"
        with pytest.raises(WorkloadError):
            pop.by_id("u9999")

    def test_too_small(self, rng):
        with pytest.raises(WorkloadError):
            UserPopulation(1, rng)


def make_class(**overrides) -> JobClass:
    defaults = dict(
        class_id=0,
        user_id="u0001",
        app="gromacs",
        system="emmy",
        nodes=4,
        req_walltime_s=3600,
        power_fraction=0.7,
        within_sigma=0.03,
        profile=TemporalProfile(kind="flat"),
        spatial=SpatialModel(static_sigma=0.03),
        n_instances=5,
    )
    defaults.update(overrides)
    return JobClass(**defaults)


class TestJobClass:
    def test_runtime_respects_walltime(self, rng):
        cls = make_class()
        for _ in range(100):
            runtime = cls.sample_runtime(rng)
            assert 180 <= runtime <= cls.req_walltime_s

    def test_limit_hits_occur(self, rng):
        cls = make_class(limit_hit_prob=0.5, req_walltime_s=7200)
        runtimes = [cls.sample_runtime(rng) for _ in range(300)]
        assert runtimes.count(7200) > 50

    def test_power_fraction_noise_small(self, rng):
        cls = make_class()
        fracs = np.asarray([cls.sample_power_fraction(rng) for _ in range(500)])
        assert abs(fracs.mean() - 0.7) < 0.02
        assert fracs.std() / fracs.mean() < 0.06

    def test_expected_runtime_between_bounds(self):
        cls = make_class()
        assert 0 < cls.expected_runtime_s <= cls.req_walltime_s

    def test_expected_work(self):
        cls = make_class(nodes=2, n_instances=3)
        assert cls.expected_work_node_seconds == pytest.approx(
            3 * 2 * cls.expected_runtime_s
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_class(nodes=0)
        with pytest.raises(WorkloadError):
            make_class(power_fraction=1.5)
        with pytest.raises(WorkloadError):
            make_class(req_walltime_s=30)


class TestArrivals:
    def test_warp_monotone_and_bounded(self, rng):
        proc = ArrivalProcess(horizon_s=30 * DAY)
        q = np.linspace(0, 1, 100)
        t = proc.warp(q)
        assert np.all(np.diff(t) >= 0)
        assert t[0] == 0.0 and t[-1] == pytest.approx(30 * DAY)

    def test_holiday_dip_reduces_density(self, rng):
        horizon = 100 * DAY
        proc = ArrivalProcess(
            horizon_s=horizon, holiday=(0.4 * horizon, 0.5 * horizon, 0.9)
        )
        t = proc.warp(np.linspace(0, 1, 20000))
        in_holiday = np.mean((t >= 0.4 * horizon) & (t < 0.5 * horizon))
        assert in_holiday < 0.05  # well below the 10% of an even spread

    def test_campaign_quantiles_clustered(self, rng):
        proc = ArrivalProcess(horizon_s=DAY)
        q = proc.campaign_quantiles(200, rng, spread=0.05)
        assert np.all((q >= 0) & (q <= 1))
        assert q.std() < 0.15

    def test_invalid_quantiles(self):
        proc = ArrivalProcess(horizon_s=DAY)
        with pytest.raises(WorkloadError):
            proc.warp([1.5])

    def test_invalid_horizon(self):
        with pytest.raises(WorkloadError):
            ArrivalProcess(horizon_s=0)
