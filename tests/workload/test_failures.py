"""FailureModel: determinism, stream discipline, and plan-level wiring.

The failure model's contract is byte-determinism across build paths: it
consumes exactly ``2n`` uniforms per ``apply`` regardless of outcomes,
runs once per workload at the plan level, and an all-zero model draws
nothing at all (the paper's CPU systems keep their golden artifacts).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.failures import (
    EXIT_APP_ERROR,
    EXIT_CODES,
    EXIT_NODE_FAULT,
    EXIT_OK,
    EXIT_OOM,
    FailureModel,
)
from repro.workload.generator import WorkloadGenerator, default_params


def _runtimes(rng, n):
    return rng.integers(60, 7 * 86400, size=n)


class TestValidation:
    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(WorkloadError):
            FailureModel(p_app_error=-0.1)
        with pytest.raises(WorkloadError):
            FailureModel(p_node_fault=1.0)
        with pytest.raises(WorkloadError):
            FailureModel(p_app_error=0.6, p_node_fault=0.5)
        with pytest.raises(WorkloadError):
            FailureModel(oom_share=1.5)

    def test_active_flag(self):
        assert not FailureModel().active
        assert FailureModel(p_app_error=0.1).active
        assert FailureModel(p_node_fault=0.01).active


class TestApply:
    def test_inactive_model_draws_nothing(self):
        """Zero rates must not touch the stream — CPU golden bytes."""
        rng = np.random.default_rng(5)
        runtimes = _runtimes(np.random.default_rng(0), 100)
        exit_code, out = FailureModel().apply(runtimes, rng)
        assert (exit_code == EXIT_OK).all()
        np.testing.assert_array_equal(out, runtimes)
        untouched = np.random.default_rng(5)
        assert rng.random() == untouched.random()

    def test_consumes_exactly_two_uniforms_per_job(self):
        """The stream layout is outcome-independent: 2n draws, always."""
        n = 257
        runtimes = _runtimes(np.random.default_rng(1), n)
        rng = np.random.default_rng(9)
        FailureModel(p_app_error=0.2, p_node_fault=0.05).apply(runtimes, rng)
        twin = np.random.default_rng(9)
        twin.random(n)
        twin.random(n)
        assert rng.random() == twin.random()

    def test_exit_codes_and_truncation(self):
        runtimes = _runtimes(np.random.default_rng(2), 5000)
        model = FailureModel(p_app_error=0.15, p_node_fault=0.03)
        exit_code, out = model.apply(runtimes, np.random.default_rng(3))
        assert set(np.unique(exit_code)) <= set(EXIT_CODES)
        for code in (EXIT_APP_ERROR, EXIT_OOM, EXIT_NODE_FAULT):
            assert (exit_code == code).any(), f"no draws of exit code {code}"
        failed = exit_code != EXIT_OK
        assert (out[failed] <= runtimes[failed]).all()
        assert (out[failed] >= 1).all()
        np.testing.assert_array_equal(out[~failed], runtimes[~failed])
        # Rates land near the configured probabilities at this n.
        assert abs(failed.mean() - 0.18) < 0.02

    def test_oom_kills_die_early(self):
        """OOMs strike during the memory ramp — well before app errors."""
        runtimes = np.full(20000, 100_000, dtype=np.int64)
        model = FailureModel(p_app_error=0.2, oom_share=0.35)
        exit_code, out = model.apply(runtimes, np.random.default_rng(4))
        frac = out / runtimes
        assert frac[exit_code == EXIT_OOM].mean() < frac[
            exit_code == EXIT_APP_ERROR
        ].mean()

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_exit_states(self, seed, n):
        runtimes = _runtimes(np.random.default_rng(seed), n)
        model = FailureModel(p_app_error=0.1, p_node_fault=0.02)
        a = model.apply(runtimes, np.random.default_rng(seed))
        b = model.apply(runtimes, np.random.default_rng(seed))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestPlanLevelWiring:
    def test_chunked_instances_match_monolithic(self):
        """Exit states are drawn once, at the plan level: materializing
        the plan in chunks yields bit-identical JobSpecs."""
        params = default_params("alex", num_users=16, horizon_s=6 * 86400)
        gen = WorkloadGenerator(params, 82, seed=11)
        whole = gen.generate()
        plan = WorkloadGenerator(params, 82, seed=11).generate_plan()
        chunked = []
        step = 37
        for lo in range(0, plan.n_jobs, step):
            chunked.extend(plan.materialize(lo, min(lo + step, plan.n_jobs)))
        assert [j.exit_code for j in whole] == [j.exit_code for j in chunked]
        assert [j.runtime_s for j in whole] == [j.runtime_s for j in chunked]
        assert any(j.exit_code != EXIT_OK for j in whole)

    def test_hpc_systems_draw_no_failures(self):
        params = default_params("emmy", num_users=8, horizon_s=3 * 86400)
        jobs = WorkloadGenerator(params, 64, seed=7).generate()
        assert all(j.exit_code == EXIT_OK for j in jobs)
        assert all(not j.failed for j in jobs)
