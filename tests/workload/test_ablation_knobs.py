"""Tests for the generative-mechanism ablation knobs."""

import numpy as np
import pytest

import repro
from repro.errors import WorkloadError
from repro.workload.phases import make_profile
from repro.workload.spatial import make_spatial_model

SCALE = dict(num_nodes=32, num_users=10, horizon_s=4 * 86400, max_traces=30)


class TestProfileModes:
    def test_flat_mode_only_flat(self, rng):
        kinds = {make_profile(0.8, rng, mode="flat").kind for _ in range(100)}
        assert kinds == {"flat"}

    def test_burst_only_mode(self, rng):
        kinds = {make_profile(0.2, rng, mode="burst-only").kind for _ in range(100)}
        assert kinds == {"burst"}

    def test_unknown_mode(self, rng):
        with pytest.raises(WorkloadError, match="unknown profile mode"):
            make_profile(0.5, rng, mode="sawtooth")


class TestSpatialScale:
    def test_zero_scale_removes_imbalance(self, rng):
        model = make_spatial_model(0.8, rng, scale=0.0)
        assert model.static_sigma == 0.0
        assert model.dynamic_sigma == 0.0
        assert model.event_prob == 0.0

    def test_scale_monotone(self, rng):
        small = np.mean([make_spatial_model(0.5, rng, scale=0.5).static_sigma
                         for _ in range(100)])
        big = np.mean([make_spatial_model(0.5, rng, scale=1.5).static_sigma
                       for _ in range(100)])
        assert big > small

    def test_negative_scale_rejected(self, rng):
        with pytest.raises(WorkloadError):
            make_spatial_model(0.5, rng, scale=-1.0)


class TestPipelineKnobs:
    def test_flat_mode_collapses_temporal_variance(self):
        default = repro.generate_dataset("emmy", seed=6, **SCALE)
        flat = repro.generate_dataset(
            "emmy", seed=6, **SCALE, params_overrides={"temporal_mode": "flat"}
        )
        t_default = repro.temporal_summary(default)
        t_flat = repro.temporal_summary(flat)
        assert t_flat.mean_temporal_cov < t_default.mean_temporal_cov

    def test_zero_variability_and_imbalance(self):
        ds = repro.generate_dataset(
            "emmy", seed=6, **SCALE,
            params_overrides={"spatial_scale": 0.0}, variability_sigma=0.0,
        )
        s = repro.spatial_summary(ds)
        # Only RAPL measurement noise remains.
        assert s.mean_spread_fraction < 0.06
        assert s.frac_jobs_energy_imbalance_over_15pct == 0.0

    def test_overrides_dont_change_schema(self):
        from repro.telemetry.schema import validate_jobs

        ds = repro.generate_dataset(
            "emmy", seed=6, **SCALE, params_overrides={"temporal_mode": "flat"}
        )
        validate_jobs(ds.jobs)
