"""Tests for the workload generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import DAY
from repro.workload import WorkloadGenerator, default_params
from repro.workload.generator import WALLTIME_MENU_H, snap_walltime_h


@pytest.fixture(scope="module")
def emmy_jobs():
    params = default_params("emmy", num_users=25, horizon_s=8 * DAY)
    return WorkloadGenerator(params, cluster_nodes=64, seed=11).generate()


class TestDefaults:
    def test_both_systems_have_defaults(self):
        assert default_params("emmy").system == "emmy"
        assert default_params("MEGGIE").system == "meggie"

    def test_unknown_system(self):
        with pytest.raises(WorkloadError):
            default_params("frontier")

    def test_overrides(self):
        p = default_params("emmy", num_users=10, horizon_s=2 * DAY)
        assert p.num_users == 10 and p.horizon_s == 2 * DAY

    def test_emmy_stronger_length_coupling(self):
        """Table 2: Emmy couples power to length, Meggie to size.

        Meggie's coupling is explicit (a_size); Emmy's length coupling is
        partly structural — its debug/side jobs are short (low
        debug_wall_hi_h), which ties low power to short runtimes.
        """
        emmy, meggie = default_params("emmy"), default_params("meggie")
        assert meggie.a_size > emmy.a_size
        assert emmy.debug_wall_hi_h < meggie.debug_wall_hi_h

    def test_validation(self):
        from dataclasses import replace

        with pytest.raises(WorkloadError):
            replace(default_params("emmy"), num_users=1)
        with pytest.raises(WorkloadError):
            replace(default_params("emmy"), target_offered_load=0.0)


class TestSnap:
    def test_snaps_to_menu(self):
        assert snap_walltime_h(3.7) in WALLTIME_MENU_H
        assert snap_walltime_h(23.0) == 24.0
        assert snap_walltime_h(0.1) == 0.25


class TestGeneration:
    def test_jobs_sorted_and_ids_dense(self, emmy_jobs):
        submits = [j.submit_s for j in emmy_jobs]
        assert submits == sorted(submits)
        assert [j.job_id for j in emmy_jobs] == list(range(len(emmy_jobs)))

    def test_geometry_valid(self, emmy_jobs):
        for j in emmy_jobs:
            assert 1 <= j.nodes <= 64 // 4
            assert 180 <= j.runtime_s <= j.req_walltime_s
            assert 0 <= j.submit_s
            assert 0.2 <= j.power_fraction <= 0.99

    def test_offered_load_near_target(self, emmy_jobs):
        params = default_params("emmy", num_users=25, horizon_s=8 * DAY)
        work = sum(j.node_seconds for j in emmy_jobs)
        offered = work / (64 * params.horizon_s)
        # Runtime realizations add variance around the expectation-based
        # calibration; the band is deliberately loose.
        assert 0.6 * params.target_offered_load < offered < 1.4 * params.target_offered_load

    def test_classes_repeat(self, emmy_jobs):
        from collections import Counter

        counts = Counter(j.class_id for j in emmy_jobs)
        assert max(counts.values()) >= 5  # production classes repeat

    def test_instances_share_configuration(self, emmy_jobs):
        by_class = {}
        for j in emmy_jobs:
            by_class.setdefault(j.class_id, []).append(j)
        for instances in by_class.values():
            assert len({(j.nodes, j.req_walltime_s, j.user_id, j.app) for j in instances}) == 1

    def test_determinism(self):
        params = default_params("emmy", num_users=10, horizon_s=3 * DAY)
        a = WorkloadGenerator(params, 32, seed=5).generate()
        b = WorkloadGenerator(params, 32, seed=5).generate()
        assert len(a) == len(b)
        assert all(
            x.submit_s == y.submit_s and x.power_fraction == y.power_fraction
            for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self):
        params = default_params("emmy", num_users=10, horizon_s=3 * DAY)
        a = WorkloadGenerator(params, 32, seed=5).generate()
        b = WorkloadGenerator(params, 32, seed=6).generate()
        assert [j.submit_s for j in a] != [j.submit_s for j in b]

    def test_debug_jobs_small_and_low_power(self, emmy_jobs):
        debug = [j for j in emmy_jobs if j.is_debug]
        production = [j for j in emmy_jobs if not j.is_debug]
        if debug and production:
            assert np.mean([j.nodes for j in debug]) <= np.mean(
                [j.nodes for j in production]
            )
            assert np.mean([j.power_fraction for j in debug]) < np.mean(
                [j.power_fraction for j in production]
            )

    def test_walltimes_on_menu(self, emmy_jobs):
        for j in emmy_jobs:
            assert j.req_walltime_s / 3600 in WALLTIME_MENU_H

    def test_bad_cluster_nodes(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(default_params("emmy"), 0)
